#!/usr/bin/env python3
"""One fault scenario, two runtimes: the unified fault-injection layer.

A single declarative :class:`repro.faults.FaultSchedule` — crash 20% of
the cluster (recovering later), partition the network and heal it,
then a loss burst — is interpreted twice:

1. against the **discrete-event simulator** (`SimFaultInjector`,
   rounds = simulator ticks), checked with the Table 1 spec checker;
2. against the **asyncio runtime** (`AsyncFaultInjector`,
   rounds = wall-clock milliseconds), where a `NodeSupervisor` also
   self-heals an *extra*, unscheduled crash with exponential backoff,
   checked with the survivor checker.

Finally the Lemma 7 feedback loop (`ObservedConditions` →
`adapt_config`) recomputes K/TTL from the conditions the run actually
experienced.

Run with::

    python examples/fault_drill.py
"""

from __future__ import annotations

import asyncio

from repro.core import EpToConfig
from repro.faults import (
    AsyncFaultInjector,
    FaultSchedule,
    NodeSupervisor,
    ObservedConditions,
    SimFaultInjector,
    adapt_config,
    check_survivors,
)
from repro.metrics import check_run
from repro.sim import ClusterConfig, SimCluster, SimNetwork, Simulator
from repro.runtime import AsyncCluster

NODES = 10
DRILL = FaultSchedule.standard_drill()  # crash 20% / partition+heal / loss burst


def simulator_half() -> None:
    print("=== simulator half " + "=" * 42)
    print(f"schedule: {DRILL}")
    round_ticks = 10
    sim = Simulator(seed=11)
    network = SimNetwork(sim)
    cluster = SimCluster(
        sim,
        network,
        ClusterConfig(
            epto=EpToConfig(
                fanout=5, ttl=8, round_interval=round_ticks, clock="logical"
            )
        ),
    )
    cluster.add_nodes(NODES)
    injector = SimFaultInjector(sim, cluster, DRILL)
    injector.install()

    for node_id in cluster.alive_ids()[:3]:
        cluster.broadcast_from(node_id, f"pre-{node_id}")

    def late_wave() -> None:
        for node_id in sorted(injector.continuous_survivors())[:2]:
            cluster.broadcast_from(node_id, f"post-{node_id}")

    sim.schedule_at(24 * round_ticks, late_wave)
    sim.run(until=60 * round_ticks)

    for tick, message in injector.log:
        print(f"  t={tick:4d}  {message}")
    survivors = injector.continuous_survivors()
    report = check_run(cluster.collector, correct_nodes=survivors)
    print(f"survivors {sorted(survivors)}: {report.summary()}")
    assert report.safety_ok and report.agreement_ok, report.summary()


async def asyncio_half() -> EpToConfig:
    print("=== asyncio half " + "=" * 44)
    config = EpToConfig(fanout=4, ttl=6, round_interval=20, clock="logical")
    cluster = AsyncCluster(config, seed=13)
    cluster.add_nodes(NODES)
    cluster.start_all()

    for node_id in (0, 1, 2):
        cluster.nodes[node_id].broadcast(f"pre-{node_id}")

    injector = AsyncFaultInjector(cluster, DRILL, seed=13)
    await injector.run()  # same schedule, wall-clock rounds
    await asyncio.sleep(4 * config.round_interval / 1000.0)  # burst tail

    # An *unscheduled* crash: the supervisor (started only now, so it
    # does not race the injector's scheduled recovery) detects the
    # corpse and restarts it with backoff under the same identity.
    supervisor = NodeSupervisor(
        cluster, poll_interval=0.01, base_delay=0.02, healthy_after=60.0
    )
    supervisor.start()
    survivors = injector.continuous_survivors()
    victim = sorted(survivors)[-1]
    survivors.discard(victim)
    cluster.crash_node(victim)
    revived = await cluster.wait_until(
        lambda: not cluster.nodes[victim].crashed
        and cluster.nodes[victim].running,
        timeout=10.0,
    )
    assert revived, "supervisor failed to revive the crashed node"
    print(
        f"  node {victim} crashed unscheduled; supervisor revived it "
        f"(restarts={supervisor.stats.restarted}, "
        f"next backoff={supervisor.backoff_delay(victim):.2f}s)"
    )

    for node_id in sorted(survivors)[:2]:
        cluster.nodes[node_id].broadcast(f"post-{node_id}")
    done = await cluster.wait_until(
        lambda: all(len(cluster.deliveries[n]) >= 5 for n in survivors),
        timeout=15.0,
    )
    await supervisor.stop()
    await cluster.stop_all()
    assert done, "survivors did not deliver both waves in time"

    for seconds, message in injector.log:
        print(f"  t={seconds:5.2f}s  {message}")
    recovered = injector.crashed_ids | {victim}
    report = check_survivors(
        cluster.deliveries,
        survivors=survivors,
        recovered=recovered,
        restart_indices=cluster.restart_indices,
    )
    print(f"survivors {sorted(survivors)} + recovered {sorted(recovered)}: "
          f"{report.summary()}")
    assert report.ok, report.summary()

    # Lemma 7 feedback: what would K/TTL need to be for the loss we saw?
    observed = ObservedConditions.from_run(
        population=NODES,
        rounds=max(1, round(DRILL.horizon_rounds)),
        network_stats=cluster.network.stats,
        churn_stats=injector.stats,
    )
    adapted = adapt_config(config, observed)
    print(
        f"observed churn={observed.churn_rate:.3f} loss={observed.loss_rate:.3f}"
        f" -> adapted K={adapted.fanout} TTL={adapted.ttl}"
        f" (was K={config.fanout} TTL={config.ttl})"
    )
    return adapted


def main() -> None:
    simulator_half()
    adapted = asyncio.run(asyncio_half())
    assert adapted.fanout >= 4 and adapted.ttl >= 6
    print("fault drill complete: same scenario, both runtimes, order intact")


if __name__ == "__main__":
    main()
