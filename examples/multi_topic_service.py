#!/usr/bin/env python3
"""Multi-topic broadcast service quick-start (docs/SERVICE.md).

Four independent EpTO topics — four total orders — multiplexed over
**one real UDP socket per host**. Each host runs a single
`BroadcastService` with one round timer; every round, the balls of all
four topics to the same peer coalesce into one `TopicEnvelope` datagram
(and, with `sendmmsg`, the whole fan-out into one syscall). Clients see
an async pub/sub API: `await service.publish(topic, payload)` with
explicit backpressure, and bounded async-iterator subscriptions.

The script publishes interleaved traffic on every topic, tails one
subscription, and prints the per-topic total orders plus what the
sharing bought on the wire.

Run with::

    python examples/multi_topic_service.py
"""

from __future__ import annotations

import asyncio

from repro.core import EpToConfig
from repro.runtime.udp import UdpNetwork
from repro.service import ServiceCluster

N = 6
TOPICS = (10, 20, 30, 40)
PER_TOPIC = 5
SEED = 7


async def main() -> None:
    config = EpToConfig.for_system_size(N, round_interval=20)
    network = UdpNetwork(seed=SEED)
    cluster = ServiceCluster(config, network=network, expected_size=N, seed=SEED)
    for topic in TOPICS:
        cluster.open_topic(topic)
    cluster.add_hosts(N)
    await cluster.open_all()

    # A bounded subscription on one host's view of topic 10.
    feed = cluster.hosts[5].subscribe(TOPICS[0])
    cluster.start_all()

    sockets = len([True for _ in cluster.hosts])
    print(f"{N} hosts x {len(TOPICS)} topics over {sockets} UDP sockets\n")

    for i in range(PER_TOPIC):
        for topic in TOPICS:
            await cluster.publish(topic, (i + topic) % N, f"topic{topic}-msg{i}")

    for topic in TOPICS:
        converged = await cluster.wait_for_topic(topic, PER_TOPIC, timeout=20)
        report = cluster.check_topic(topic)
        order = [event.payload for event in cluster.hosts[0].deliveries(topic)]
        print(f"topic {topic}: converged={converged} check={report.summary()}")
        print(f"  total order at host 0: {order}")

    print("\nsubscription tail (topic 10, host 5):")
    tailed = []
    async for event in feed:
        tailed.append(event.payload)
        if len(tailed) == PER_TOPIC:
            break
    feed.close()
    print(f"  {tailed}")

    frames = sum(s.demux.stats.frames_sent for s in cluster.hosts.values())
    envelopes = sum(s.demux.stats.envelopes_sent for s in cluster.hosts.values())
    stats = network.stats
    print(
        f"\nwire: {frames} topic frames packed into {envelopes} datagrams "
        f"({frames / max(envelopes, 1):.2f} frames/datagram), "
        f"{stats.syscalls_send} send syscalls for {stats.sent} sends"
    )
    print(
        "One socket, one timer, one datagram per peer per round — "
        "instead of one of each per topic."
    )
    await cluster.close_all()


if __name__ == "__main__":
    asyncio.run(main())
