#!/usr/bin/env python3
"""Quickstart: totally ordered broadcast over a simulated cluster.

Builds a 16-process EpTO deployment on the discrete-event simulator,
broadcasts a handful of concurrent events from different processes, and
shows that every process delivers exactly the same sequence — the
Total Order property of paper Table 1 — despite the lossy, high-latency
network.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    ClusterConfig,
    EpToConfig,
    PlanetLabLatency,
    SimCluster,
    SimNetwork,
    Simulator,
    check_run,
)

N = 16


def main() -> None:
    # Engine + network: PlanetLab-like latencies and 2% message loss.
    sim = Simulator(seed=42)
    network = SimNetwork(sim, latency=PlanetLabLatency(), loss_rate=0.02)

    # Fanout and TTL straight from the paper's Theorem 2 / Lemma 3
    # bounds for a 16-process system.
    config = EpToConfig.for_system_size(N, loss_rate=0.02)
    print(f"n={N}  fanout K={config.fanout}  TTL={config.ttl}")

    cluster = SimCluster(sim, network, ClusterConfig(epto=config))
    cluster.add_nodes(N)

    # A few processes broadcast concurrently.
    for node_id, message in [(0, "alpha"), (5, "bravo"), (9, "charlie"), (3, "delta")]:
        cluster.broadcast_from(node_id, message)

    # Let the epidemic run to quiescence.
    sim.run(until=(config.ttl + 10) * config.round_interval)

    # Every process delivered the same sequence.
    sequences = {
        node_id: tuple(cluster.collector.sequence_of(node_id))
        for node_id in cluster.alive_ids()
    }
    distinct = {seq for seq in sequences.values()}
    print(f"deliveries: {cluster.collector.delivery_count} "
          f"({cluster.collector.broadcast_count} events x {N} processes)")
    print(f"distinct delivery sequences across processes: {len(distinct)}")

    report = check_run(cluster.collector)
    print(f"specification check: {report.summary()}")

    # Show one process's view of the total order.
    deliveries = [
        record for record in cluster.collector.deliveries() if record.node_id == 0
    ]
    broadcasts = {rec.event.id: rec.event for rec in cluster.collector.broadcasts()}
    print("\nprocess 0 delivered, in order:")
    for record in deliveries:
        event = broadcasts[record.event_id]
        print(f"  ts={event.ts:5d}  src={event.source_id:2d}  {event.payload!r}")

    assert len(distinct) == 1, "total order violated?!"
    assert report.safety_ok and report.agreement_ok


if __name__ == "__main__":
    main()
