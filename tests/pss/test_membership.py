"""Unit tests for the membership directory (repro.pss.base)."""

from __future__ import annotations

import random

import pytest

from repro.pss.base import MembershipDirectory


@pytest.fixture
def rng():
    return random.Random(13)


class TestDirectory:
    def test_add_and_contains(self):
        directory = MembershipDirectory()
        directory.add(1)
        directory.add(2)
        assert 1 in directory
        assert 3 not in directory
        assert len(directory) == 2

    def test_add_is_idempotent(self):
        directory = MembershipDirectory()
        directory.add(1)
        directory.add(1)
        assert len(directory) == 1

    def test_remove(self):
        directory = MembershipDirectory()
        for i in range(5):
            directory.add(i)
        directory.remove(2)
        assert 2 not in directory
        assert len(directory) == 4
        assert set(directory.alive_ids()) == {0, 1, 3, 4}

    def test_remove_unknown_is_noop(self):
        directory = MembershipDirectory()
        directory.add(1)
        directory.remove(9)
        assert len(directory) == 1

    def test_remove_last_element(self):
        directory = MembershipDirectory()
        directory.add(1)
        directory.remove(1)
        assert len(directory) == 0

    def test_swap_remove_keeps_index_consistent(self):
        directory = MembershipDirectory()
        for i in range(10):
            directory.add(i)
        directory.remove(0)  # head: swap with tail
        directory.remove(9)  # the swapped element
        assert set(directory.alive_ids()) == set(range(1, 9))
        # Every remaining element can still be removed cleanly.
        for i in range(1, 9):
            directory.remove(i)
        assert len(directory) == 0


class TestSampling:
    def test_sample_excludes_requested_id(self, rng):
        directory = MembershipDirectory()
        for i in range(10):
            directory.add(i)
        for _ in range(50):
            assert 3 not in directory.sample(rng, 5, exclude=3)

    def test_sample_returns_distinct_ids(self, rng):
        directory = MembershipDirectory()
        for i in range(20):
            directory.add(i)
        sample = directory.sample(rng, 10)
        assert len(sample) == len(set(sample)) == 10

    def test_sample_truncates_to_population(self, rng):
        directory = MembershipDirectory()
        for i in range(3):
            directory.add(i)
        assert len(directory.sample(rng, 10)) == 3
        assert len(directory.sample(rng, 10, exclude=0)) == 2

    def test_sample_from_empty(self, rng):
        directory = MembershipDirectory()
        assert directory.sample(rng, 5) == []

    def test_sampling_is_roughly_uniform(self, rng):
        directory = MembershipDirectory()
        for i in range(10):
            directory.add(i)
        counts = {i: 0 for i in range(10)}
        for _ in range(5000):
            for nid in directory.sample(rng, 3):
                counts[nid] += 1
        # Expected 1500 each; allow generous slack.
        assert all(1200 < c < 1800 for c in counts.values())

    def test_dense_request_uses_shuffle_path(self, rng):
        directory = MembershipDirectory()
        for i in range(6):
            directory.add(i)
        # k * 3 >= n forces the shuffle fallback.
        sample = directory.sample(rng, 5, exclude=0)
        assert len(sample) == 5
        assert 0 not in sample
