"""Unit and convergence tests for the Cyclon PSS (repro.pss.cyclon, [28])."""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

import pytest

from repro.core.errors import ConfigurationError
from repro.pss.cyclon import CyclonPss, CyclonRequest, CyclonResponse


class Fabric:
    """Instant in-memory message fabric wiring Cyclon nodes together."""

    def __init__(self) -> None:
        self.nodes: Dict[int, CyclonPss] = {}
        self.dropped: List[Tuple[int, int]] = []
        self.loss_targets: set[int] = set()

    def make_node(self, node_id: int, view_size=6, shuffle_size=3, seed=0):
        node = CyclonPss(
            node_id=node_id,
            view_size=view_size,
            shuffle_size=shuffle_size,
            send=lambda dst, msg, node_id=node_id: self.deliver(node_id, dst, msg),
            rng=random.Random(f"{seed}:{node_id}"),
        )
        self.nodes[node_id] = node
        return node

    def deliver(self, src: int, dst: int, message) -> None:
        node = self.nodes.get(dst)
        if node is None or dst in self.loss_targets:
            self.dropped.append((src, dst))
            return
        if isinstance(message, CyclonRequest):
            node.handle_request(src, message)
        elif isinstance(message, CyclonResponse):
            node.handle_response(src, message)


def build_ring(count=10, view_size=5, shuffle_size=3) -> Fabric:
    """Bootstrap nodes in a ring (each initially knows its successor)."""
    fabric = Fabric()
    for i in range(count):
        fabric.make_node(i, view_size=view_size, shuffle_size=shuffle_size)
    for i in range(count):
        fabric.nodes[i].bootstrap([(i + 1) % count])
    return fabric


class TestValidation:
    def test_rejects_bad_view_size(self):
        with pytest.raises(ConfigurationError):
            CyclonPss(0, view_size=0, shuffle_size=1, send=lambda *a: None,
                      rng=random.Random(0))

    def test_rejects_shuffle_above_view(self):
        with pytest.raises(ConfigurationError):
            CyclonPss(0, view_size=3, shuffle_size=4, send=lambda *a: None,
                      rng=random.Random(0))


class TestBootstrap:
    def test_bootstrap_fills_view(self):
        fabric = Fabric()
        node = fabric.make_node(0, view_size=4)
        node.bootstrap([1, 2, 3, 4, 5, 6])
        assert node.view_fill == 4  # capped at view size

    def test_bootstrap_skips_self(self):
        fabric = Fabric()
        node = fabric.make_node(0)
        node.bootstrap([0, 1])
        assert 0 not in node.view_snapshot()


class TestViewInvariants:
    def test_view_never_contains_self(self):
        fabric = build_ring(8)
        for _ in range(100):
            for node in fabric.nodes.values():
                node.shuffle()
        for node in fabric.nodes.values():
            assert node.node_id not in node.view_snapshot()

    def test_view_never_exceeds_capacity(self):
        fabric = build_ring(8, view_size=4, shuffle_size=2)
        for _ in range(100):
            for node in fabric.nodes.values():
                node.shuffle()
        for node in fabric.nodes.values():
            assert node.view_fill <= 4

    def test_no_duplicate_entries(self):
        fabric = build_ring(8)
        for _ in range(100):
            for node in fabric.nodes.values():
                node.shuffle()
        for node in fabric.nodes.values():
            view = node.view_snapshot()
            assert len(view) == len(set(view))


class TestShuffleSemantics:
    def test_oldest_peer_removed_on_shuffle(self):
        fabric = Fabric()
        node = fabric.make_node(0, view_size=3, shuffle_size=2)
        fabric.make_node(1)
        fabric.make_node(2)
        node.bootstrap([1, 2])
        # Make peer 1 the oldest artificially.
        node._view[1] = 10
        node.shuffle()
        # 1 was removed when the request was sent (it may return via
        # the response, but with a fresh age if so).
        assert node._pending == {} or 1 not in node._pending

    def test_shuffle_counts(self):
        fabric = build_ring(4)
        for node in fabric.nodes.values():
            node.shuffle()
        assert all(n.shuffles_started == 1 for n in fabric.nodes.values())
        assert sum(n.shuffles_answered for n in fabric.nodes.values()) == 4

    def test_empty_view_shuffle_is_noop(self):
        fabric = Fabric()
        node = fabric.make_node(0)
        node.shuffle()
        assert node.shuffles_started == 0

    def test_lost_request_still_ages_out_dead_peer(self):
        # The oldest peer is removed optimistically; if it is dead the
        # view self-heals instead of pinning the dead entry forever.
        fabric = Fabric()
        node = fabric.make_node(0, view_size=3, shuffle_size=2)
        fabric.make_node(2)
        node.bootstrap([2])
        node._view[99] = 50  # dead peer, very old
        node.shuffle()
        assert 99 not in node.view_snapshot()


class TestConvergence:
    def test_ring_converges_to_mixed_views(self):
        """Starting from a ring, shuffling should spread knowledge:
        eventually views reference peers far beyond the successor."""
        fabric = build_ring(16, view_size=5, shuffle_size=3)
        for _ in range(60):
            for node in fabric.nodes.values():
                node.shuffle()
        distinct_known = set()
        for node in fabric.nodes.values():
            distinct_known.update(node.view_snapshot())
        assert len(distinct_known) == 16  # everyone is known by someone
        # Views are no longer just successors.
        non_successor = sum(
            1
            for node in fabric.nodes.values()
            for peer in node.view_snapshot()
            if peer != (node.node_id + 1) % 16
        )
        assert non_successor > 16

    def test_sample_draws_from_view(self):
        fabric = build_ring(10)
        node = fabric.nodes[0]
        for _ in range(20):
            for n in fabric.nodes.values():
                n.shuffle()
        sample = node.sample(3)
        assert set(sample) <= set(node.view_snapshot())
        assert len(sample) == min(3, node.view_fill)

    def test_sample_more_than_view_returns_all(self):
        fabric = Fabric()
        node = fabric.make_node(0, view_size=4)
        node.bootstrap([1, 2])
        assert sorted(node.sample(10)) == [1, 2]

    def test_dead_nodes_eventually_purged(self):
        fabric = build_ring(10, view_size=4, shuffle_size=2)
        for _ in range(30):
            for node in fabric.nodes.values():
                node.shuffle()
        # Kill node 0: its entries should vanish from all views.
        dead = fabric.nodes.pop(0)
        for _ in range(120):
            for node in fabric.nodes.values():
                node.shuffle()
        holders = [
            node.node_id
            for node in fabric.nodes.values()
            if 0 in node.view_snapshot()
        ]
        assert holders == []
