"""Property-based tests (hypothesis) for the Cyclon overlay.

Drive a small Cyclon universe through arbitrary interleavings of
shuffles, message losses and node crashes, and assert the structural
invariants that must survive any schedule:

* no view ever contains its owner or duplicates, or exceeds capacity;
* the union of all views only references nodes that ever existed;
* message loss and crashes never corrupt state (shuffles keep working).
"""

from __future__ import annotations

import random
from typing import Dict, List

from hypothesis import given, settings, strategies as st

from repro.pss.cyclon import CyclonPss, CyclonRequest, CyclonResponse

NODES = 8
VIEW_SIZE = 4
SHUFFLE_SIZE = 2


@st.composite
def schedules(draw):
    """A list of (actor, deliver_request, deliver_response, crash)."""
    steps = draw(st.integers(min_value=1, max_value=60))
    schedule = []
    for _ in range(steps):
        schedule.append(
            (
                draw(st.integers(min_value=0, max_value=NODES - 1)),
                draw(st.booleans()),  # request survives the network?
                draw(st.booleans()),  # response survives?
            )
        )
    crash_at = draw(st.one_of(st.none(), st.integers(min_value=0, max_value=steps - 1)))
    crash_node = draw(st.integers(min_value=0, max_value=NODES - 1))
    return schedule, crash_at, crash_node


def run_universe(schedule, crash_at, crash_node):
    outbox: List[tuple] = []
    nodes: Dict[int, CyclonPss] = {}
    for node_id in range(NODES):
        nodes[node_id] = CyclonPss(
            node_id=node_id,
            view_size=VIEW_SIZE,
            shuffle_size=SHUFFLE_SIZE,
            send=lambda dst, msg, nid=node_id: outbox.append((nid, dst, msg)),
            rng=random.Random(node_id),
        )
    for node_id in range(NODES):
        nodes[node_id].bootstrap([(node_id + 1) % NODES, (node_id + 3) % NODES])

    for step, (actor, deliver_req, deliver_resp) in enumerate(schedule):
        if crash_at == step:
            nodes.pop(crash_node, None)
        if actor not in nodes:
            continue
        outbox.clear()
        nodes[actor].shuffle()
        # Route the request (maybe lost; maybe to a crashed node).
        for src, dst, msg in list(outbox):
            if isinstance(msg, CyclonRequest) and deliver_req and dst in nodes:
                nodes[dst].handle_request(src, msg)
        for src, dst, msg in list(outbox):
            if isinstance(msg, CyclonResponse) and deliver_resp and dst in nodes:
                nodes[dst].handle_response(src, msg)
    return nodes


@settings(max_examples=150, deadline=None)
@given(schedules())
def test_view_structural_invariants(batch):
    schedule, crash_at, crash_node = batch
    nodes = run_universe(schedule, crash_at, crash_node)
    for node in nodes.values():
        view = node.view_snapshot()
        assert node.node_id not in view
        assert len(view) == len(set(view))
        assert len(view) <= VIEW_SIZE
        assert all(0 <= peer < NODES for peer in view)
        assert all(age >= 0 for _, age in node.view_entries())


@settings(max_examples=150, deadline=None)
@given(schedules())
def test_sample_is_subset_of_view(batch):
    schedule, crash_at, crash_node = batch
    nodes = run_universe(schedule, crash_at, crash_node)
    for node in nodes.values():
        sample = node.sample(3)
        assert set(sample) <= set(node.view_snapshot())
        assert len(sample) == len(set(sample))


@settings(max_examples=100, deadline=None)
@given(schedules())
def test_shuffling_survives_any_schedule(batch):
    """After any loss/crash schedule, every survivor can still shuffle
    without raising (no corrupted pending state)."""
    schedule, crash_at, crash_node = batch
    nodes = run_universe(schedule, crash_at, crash_node)
    for node in nodes.values():
        node.shuffle()  # must not raise
