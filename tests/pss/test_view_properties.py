"""Property-based tests (hypothesis) for the overlay PSS family.

Generalizes ``test_cyclon_properties.py`` to every realistic overlay
the cluster can mount — Cyclon, HyParView and Brahms — and drives small
universes through arbitrary interleavings of maintenance ticks, message
losses and node crashes. The structural invariants that must survive
any schedule:

* no view ever contains its owner, duplicates, or unknown nodes, or
  exceeds its capacity;
* HyParView's active and passive views stay disjoint;
* ``sample(k)`` never returns the owner or duplicates;
* loss and crashes never corrupt state (maintenance keeps working).
"""

from __future__ import annotations

import random
from typing import Dict

from hypothesis import given, settings, strategies as st

from repro.pss.brahms import BrahmsPss
from repro.pss.cyclon import CyclonPss, CyclonRequest, CyclonResponse
from repro.pss.hyparview import HyParViewPss

NODES = 8
VIEW_SIZE = 4

#: Bound on cascaded deliveries per step (joins fan out; walks forward).
MAX_PUMPED = 400


def _make_cyclon(node_id, outbox):
    return CyclonPss(
        node_id=node_id,
        view_size=VIEW_SIZE,
        shuffle_size=2,
        send=lambda dst, msg, nid=node_id: outbox.append((nid, dst, msg)),
        rng=random.Random(node_id),
    )


def _make_hyparview(node_id, outbox):
    return HyParViewPss(
        node_id=node_id,
        active_size=VIEW_SIZE,
        passive_size=2 * VIEW_SIZE,
        send=lambda dst, msg, nid=node_id: outbox.append((nid, dst, msg)),
        rng=random.Random(node_id),
    )


def _make_brahms(node_id, outbox):
    return BrahmsPss(
        node_id=node_id,
        view_size=VIEW_SIZE,
        send=lambda dst, msg, nid=node_id: outbox.append((nid, dst, msg)),
        rng=random.Random(node_id),
    )


FAMILIES = {
    "cyclon": _make_cyclon,
    "hyparview": _make_hyparview,
    "brahms": _make_brahms,
}


def _deliver(node, src, message):
    """Route one message regardless of the family's handler spelling."""
    if isinstance(message, CyclonRequest):
        node.handle_request(src, message)
    elif isinstance(message, CyclonResponse):
        node.handle_response(src, message)
    else:
        node.handle_message(src, message)


@st.composite
def schedules(draw):
    """(family, [(actor, loss_seed)], crash_at, crash_node)."""
    family = draw(st.sampled_from(sorted(FAMILIES)))
    steps = draw(st.integers(min_value=1, max_value=40))
    schedule = [
        (
            draw(st.integers(min_value=0, max_value=NODES - 1)),
            draw(st.integers(min_value=0, max_value=2**16)),
        )
        for _ in range(steps)
    ]
    crash_at = draw(
        st.one_of(st.none(), st.integers(min_value=0, max_value=steps - 1))
    )
    crash_node = draw(st.integers(min_value=0, max_value=NODES - 1))
    loss = draw(st.sampled_from([0.0, 0.2, 0.5]))
    return family, schedule, crash_at, crash_node, loss


def run_universe(family, schedule, crash_at, crash_node, loss):
    outbox: list = []
    make = FAMILIES[family]
    nodes: Dict[int, object] = {
        node_id: make(node_id, outbox) for node_id in range(NODES)
    }
    for node_id in range(NODES):
        nodes[node_id].bootstrap(
            [(node_id + 1) % NODES, (node_id + 3) % NODES, (node_id + 5) % NODES]
        )

    for step, (actor, loss_seed) in enumerate(schedule):
        if crash_at == step:
            nodes.pop(crash_node, None)
        if actor not in nodes:
            continue
        nodes[actor].shuffle()
        # Pump the message queue to quiescence: handshakes and walks
        # cascade, each hop surviving the network with prob 1 - loss.
        coin = random.Random(loss_seed)
        pumped = 0
        while outbox and pumped < MAX_PUMPED:
            pumped += 1
            src, dst, message = outbox.pop(0)
            if coin.random() < loss or dst not in nodes:
                continue
            _deliver(nodes[dst], src, message)
        outbox.clear()
    return nodes


def _views_of(node):
    """Every capped view the family exposes, as (label, view, cap)."""
    if isinstance(node, HyParViewPss):
        return [
            ("active", node.active_view(), node.active_size),
            ("passive", node.passive_view(), node.passive_size),
        ]
    return [("view", node.view_snapshot(), VIEW_SIZE)]


@settings(max_examples=120, deadline=None)
@given(schedules())
def test_view_structural_invariants(batch):
    family, schedule, crash_at, crash_node, loss = batch
    nodes = run_universe(family, schedule, crash_at, crash_node, loss)
    for node in nodes.values():
        for label, view, cap in _views_of(node):
            assert node.node_id not in view, (family, label)
            assert len(view) == len(set(view)), (family, label)
            assert len(view) <= cap, (family, label)
            assert all(0 <= peer < NODES for peer in view), (family, label)
    if family == "hyparview":
        for node in nodes.values():
            assert not set(node.active_view()) & set(node.passive_view())


@settings(max_examples=120, deadline=None)
@given(schedules())
def test_sample_never_self_never_duplicates(batch):
    family, schedule, crash_at, crash_node, loss = batch
    nodes = run_universe(family, schedule, crash_at, crash_node, loss)
    for node in nodes.values():
        for k in (1, 3, NODES):
            sample = node.sample(k)
            assert len(sample) <= k
            assert node.node_id not in sample
            assert len(sample) == len(set(sample))


@settings(max_examples=80, deadline=None)
@given(schedules())
def test_maintenance_survives_any_schedule(batch):
    """After any loss/crash schedule, every survivor can still run its
    maintenance tick without raising (no corrupted pending state)."""
    family, schedule, crash_at, crash_node, loss = batch
    nodes = run_universe(family, schedule, crash_at, crash_node, loss)
    for node in nodes.values():
        node.shuffle()  # must not raise
