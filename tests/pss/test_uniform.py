"""Unit tests for the idealized uniform-view PSS (repro.pss.uniform)."""

from __future__ import annotations

import random

import pytest

from repro.pss.base import MembershipDirectory
from repro.pss.uniform import UniformViewPss


@pytest.fixture
def directory():
    d = MembershipDirectory()
    for i in range(10):
        d.add(i)
    return d


def make_pss(node_id, directory, seed=3):
    return UniformViewPss(node_id, directory, random.Random(seed))


class TestUniformViewPss:
    def test_never_samples_self(self, directory):
        pss = make_pss(4, directory)
        for _ in range(100):
            assert 4 not in pss.sample(5)

    def test_sample_size(self, directory):
        pss = make_pss(0, directory)
        assert len(pss.sample(3)) == 3
        assert len(pss.sample(100)) == 9  # capped at population - self

    def test_view_snapshot_excludes_self(self, directory):
        pss = make_pss(2, directory)
        snapshot = pss.view_snapshot()
        assert 2 not in snapshot
        assert len(snapshot) == 9

    def test_tracks_membership_changes_instantly(self, directory):
        pss = make_pss(0, directory)
        directory.remove(5)
        for _ in range(100):
            assert 5 not in pss.sample(9)
        directory.add(42)
        seen = set()
        for _ in range(200):
            seen.update(pss.sample(3))
        assert 42 in seen

    def test_uniformity(self, directory):
        pss = make_pss(0, directory)
        counts = {i: 0 for i in range(1, 10)}
        for _ in range(3000):
            for nid in pss.sample(3):
                counts[nid] += 1
        expected = 3000 * 3 / 9
        assert all(0.8 * expected < c < 1.2 * expected for c in counts.values())
