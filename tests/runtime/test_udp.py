"""Tests for the UDP transport (repro.runtime.udp) over real loopback sockets."""

from __future__ import annotations

import asyncio

import pytest

from repro.core import EpToConfig
from repro.core.errors import MembershipError
from repro.core.event import BallEntry, Event, make_ball
from repro.runtime.node import AsyncEpToNode
from repro.runtime.udp import UdpNetwork
from repro.pss.base import MembershipDirectory
from repro.pss.uniform import UniformViewPss


def run(coro):
    return asyncio.run(coro)


def a_ball(payload="x"):
    return make_ball(
        [BallEntry(Event(id=(9, 0), ts=1, source_id=9, payload=payload), 0)]
    )


class TestUdpFabric:
    def test_datagram_roundtrip(self):
        async def scenario():
            network = UdpNetwork()
            inbox = []
            network.register(1, lambda src, msg: inbox.append((src, msg)))
            network.register(2, lambda src, msg: None)
            await network.open_all()
            network.send(2, 1, a_ball("hello"))
            await asyncio.sleep(0.05)
            await network.close()
            return inbox

        inbox = run(scenario())
        assert len(inbox) == 1
        src, ball = inbox[0]
        assert src == 2
        assert ball[0].event.payload == "hello"

    def test_send_before_open_is_counted_drop(self):
        async def scenario():
            network = UdpNetwork()
            network.register(1, lambda src, msg: None)
            network.register(2, lambda src, msg: None)
            network.send(2, 1, a_ball())  # sockets not bound yet
            await network.open_all()
            await network.close()
            return network.stats.dropped_unopened

        assert run(scenario()) == 1

    def test_unencodable_message_is_counted_drop(self):
        async def scenario():
            network = UdpNetwork()
            network.register(1, lambda src, msg: None)
            network.register(2, lambda src, msg: None)
            await network.open_all()
            network.send(2, 1, a_ball(payload=object()))
            await network.close()
            return network.stats.dropped_encode

        assert run(scenario()) == 1

    def test_malformed_datagram_is_counted_and_survived(self):
        async def scenario():
            network = UdpNetwork()
            inbox = []
            network.register(1, lambda src, msg: inbox.append(msg))
            host, port = None, None
            await network.open_all()
            address = network.address_of(1)
            # Throw raw garbage at the node's socket.
            loop = asyncio.get_event_loop()
            transport, _ = await loop.create_datagram_endpoint(
                asyncio.DatagramProtocol, remote_addr=address
            )
            transport.sendto(b"this is not an EpTO datagram")
            await asyncio.sleep(0.05)
            transport.close()
            # The node still works afterwards.
            network.register(2, lambda src, msg: None)
            await network.open(2)
            network.send(2, 1, a_ball("still alive"))
            await asyncio.sleep(0.05)
            await network.close()
            return network.stats.dropped_malformed, inbox

        malformed, inbox = run(scenario())
        assert malformed == 1
        assert len(inbox) == 1
        assert inbox[0][0].event.payload == "still alive"

    def test_duplicate_registration_rejected(self):
        network = UdpNetwork()
        network.register(1, lambda s, m: None)
        with pytest.raises(MembershipError):
            network.register(1, lambda s, m: None)

    def test_open_unregistered_rejected(self):
        async def scenario():
            network = UdpNetwork()
            with pytest.raises(MembershipError):
                await network.open(5)

        run(scenario())

    def test_unregister_closes_socket(self):
        async def scenario():
            network = UdpNetwork()
            network.register(1, lambda s, m: None)
            await network.open(1)
            assert network.address_of(1) is not None
            network.unregister(1)
            assert network.address_of(1) is None
            await network.close()

        run(scenario())


class TestUdpDropPaths:
    """Every datagram drop path is counted, never raised."""

    async def _throw_raw(self, network, target_id, payload: bytes):
        """Fire raw bytes at *target_id*'s socket from an anonymous
        sender socket."""
        loop = asyncio.get_running_loop()
        transport, _ = await loop.create_datagram_endpoint(
            asyncio.DatagramProtocol, remote_addr=network.address_of(target_id)
        )
        transport.sendto(payload)
        await asyncio.sleep(0.05)
        transport.close()

    def test_truncated_datagram_is_counted_malformed(self):
        """A real encoded ball cut short in transit must be rejected by
        the codec, not crash the node."""
        from repro.runtime.codec import encode

        async def scenario():
            network = UdpNetwork()
            inbox = []
            network.register(1, lambda src, msg: inbox.append(msg))
            await network.open_all()
            datagram = encode(9, a_ball("whole"))
            # Cut inside the body: header parses, body length mismatches.
            await self._throw_raw(network, 1, datagram[: len(datagram) - 3])
            # Cut inside the header: too short to parse at all.
            await self._throw_raw(network, 1, datagram[:7])
            await network.close()
            return network.stats.dropped_malformed, inbox

        malformed, inbox = run(scenario())
        assert malformed == 2
        assert inbox == []

    def test_corrupted_count_field_is_counted_malformed(self):
        from repro.runtime.codec import encode

        async def scenario():
            network = UdpNetwork()
            inbox = []
            network.register(1, lambda src, msg: inbox.append(msg))
            await network.open_all()
            datagram = encode(9, a_ball("whole"))
            # Blow up the big-endian u32 entry count at header offset 12.
            await self._throw_raw(
                network, 1, datagram[:12] + b"\xff" + datagram[13:]
            )
            await network.close()
            return network.stats.dropped_malformed, inbox

        malformed, inbox = run(scenario())
        assert malformed == 1
        assert inbox == []

    def test_error_received_is_counted_not_raised(self):
        from repro.runtime.udp import _NodeProtocol

        network = UdpNetwork()
        protocol = _NodeProtocol(network, 1)
        protocol.error_received(OSError("ICMP port unreachable"))
        protocol.error_received(OSError("again"))
        assert network.stats.transport_errors == 2

    def test_close_clears_handlers_for_reuse(self):
        """After ``close()`` the fabric is inert and ids can be
        re-registered without a collision."""

        async def scenario():
            network = UdpNetwork()
            network.register(1, lambda s, m: None)
            await network.open_all()
            await network.close()
            assert not network.is_registered(1)
            network.register(1, lambda s, m: None)  # no MembershipError
            network.send(1, 1, a_ball())  # socket gone: counted drop
            return network.stats.dropped_unopened

        assert run(scenario()) == 1


class TestCorruption:
    def test_corrupted_datagrams_dropped_by_receiver_codec(self):
        """With corruption at rate 1.0 every datagram is mangled on the
        way out and rejected (counted) on the way in."""

        async def scenario():
            network = UdpNetwork(seed=3)
            inbox = []
            network.register(1, lambda src, msg: inbox.append(msg))
            network.register(2, lambda src, msg: None)
            await network.open_all()
            network.set_corruption(1.0)  # open-ended window
            for i in range(20):
                network.send(2, 1, a_ball(f"m{i}"))
            await asyncio.sleep(0.1)
            corrupted_phase = (len(inbox), network.stats.corrupted,
                               network.stats.dropped_malformed)
            network.clear_corruption()
            network.send(2, 1, a_ball("clean"))
            await asyncio.sleep(0.05)
            await network.close()
            return corrupted_phase, inbox

        (delivered, corrupted, malformed), inbox = run(scenario())
        assert delivered == 0
        assert corrupted == 20
        assert malformed == 20
        assert len(inbox) == 1  # the post-window datagram got through
        assert inbox[0][0].event.payload == "clean"

    def test_corruption_window_expires(self):
        async def scenario():
            network = UdpNetwork(seed=3)
            inbox = []
            network.register(1, lambda src, msg: inbox.append(msg))
            network.register(2, lambda src, msg: None)
            await network.open_all()
            network.set_corruption(1.0, duration=0.05)
            await asyncio.sleep(0.1)  # window over
            network.send(2, 1, a_ball("late"))
            await asyncio.sleep(0.05)
            await network.close()
            return network.stats.corrupted, inbox

        corrupted, inbox = run(scenario())
        assert corrupted == 0
        assert len(inbox) == 1


class TestEpToOverUdp:
    def test_total_order_over_real_sockets(self):
        """Full EpTO cluster gossiping over loopback UDP datagrams."""

        async def scenario():
            config = EpToConfig(fanout=3, ttl=5, round_interval=15, clock="logical")
            network = UdpNetwork()
            directory = MembershipDirectory()
            deliveries: dict[int, list] = {}
            nodes = []
            for node_id in range(6):
                deliveries[node_id] = []
                import random as _random

                pss = UniformViewPss(
                    node_id, directory, _random.Random(f"udp:{node_id}")
                )
                node = AsyncEpToNode(
                    node_id=node_id,
                    config=config,
                    network=network,  # type: ignore[arg-type]
                    peer_sampler=pss,
                    on_deliver=deliveries[node_id].append,
                    seed=99,
                )
                directory.add(node_id)
                nodes.append(node)
            await network.open_all()
            for node in nodes:
                node.start()

            nodes[0].broadcast("first")
            nodes[4].broadcast("second")

            deadline = asyncio.get_event_loop().time() + 10.0
            while asyncio.get_event_loop().time() < deadline:
                if all(len(seq) >= 2 for seq in deliveries.values()):
                    break
                await asyncio.sleep(0.02)

            for node in nodes:
                await node.stop()
            await network.close()
            return deliveries

        deliveries = run(scenario())
        sequences = {
            tuple(e.payload for e in seq) for seq in deliveries.values()
        }
        assert len(sequences) == 1
        assert set(next(iter(sequences))) == {"first", "second"}

    def test_agreement_holds_under_datagram_corruption(self):
        """Acceptance scenario: real datagrams are corrupted in transit,
        the receivers' codec counts and drops them
        (``dropped_malformed > 0``), and EpTO's redundancy still gets
        every event delivered in one total order."""

        async def scenario():
            config = EpToConfig(fanout=4, ttl=6, round_interval=15, clock="logical")
            network = UdpNetwork(seed=17)
            directory = MembershipDirectory()
            deliveries: dict[int, list] = {}
            nodes = []
            for node_id in range(6):
                deliveries[node_id] = []
                import random as _random

                pss = UniformViewPss(
                    node_id, directory, _random.Random(f"corrupt:{node_id}")
                )
                node = AsyncEpToNode(
                    node_id=node_id,
                    config=config,
                    network=network,  # type: ignore[arg-type]
                    peer_sampler=pss,
                    on_deliver=deliveries[node_id].append,
                    seed=17,
                )
                directory.add(node_id)
                nodes.append(node)
            await network.open_all()
            network.set_corruption(0.2)  # a fifth of all datagrams mangled
            for node in nodes:
                node.start()

            nodes[1].broadcast("alpha")
            nodes[5].broadcast("beta")

            deadline = asyncio.get_event_loop().time() + 15.0
            while asyncio.get_event_loop().time() < deadline:
                if all(len(seq) >= 2 for seq in deliveries.values()):
                    break
                await asyncio.sleep(0.02)

            for node in nodes:
                await node.stop()
            await network.close()
            return deliveries, network.stats

        deliveries, stats = run(scenario())
        assert stats.corrupted > 0
        assert stats.dropped_malformed > 0
        sequences = {
            tuple(e.payload for e in seq) for seq in deliveries.values()
        }
        assert len(sequences) == 1
        assert set(next(iter(sequences))) == {"alpha", "beta"}


class TestUdpStatsSplit:
    def test_dropped_undecodable_aggregates_receive_rejections(self):
        from repro.runtime.udp import UdpStats

        stats = UdpStats(
            dropped_malformed=2,
            dropped_bad_version=3,
            dropped_bad_signature=5,
            dropped_unknown_key=7,
            dropped_unsigned=11,
        )
        assert stats.dropped_undecodable == 28
        # Send-side drops are not receive rejections.
        stats.dropped_partition = 100
        stats.dropped_burst = 100
        assert stats.dropped_undecodable == 28


class TestAuthenticatedUdp:
    def _authenticator(self):
        from repro.auth import HmacAuthenticator, KeyRing

        return HmacAuthenticator(KeyRing("udp-test"))

    def test_signed_ball_admitted_and_forgery_dropped(self):
        from repro.auth import BallGuard

        authenticator = self._authenticator()

        async def scenario():
            network = UdpNetwork(authenticator=authenticator)
            inbox = []
            network.register(1, lambda src, msg: inbox.append((src, msg)))
            network.register(9, lambda src, msg: None)
            await network.open_all()

            genuine = a_ball("hello")
            network.send(9, 1, genuine)  # sealed by the fabric guard
            await asyncio.sleep(0.05)

            # A forged copy under the same identity, sent from a fabric
            # that never held node 9's sealing history: the entry
            # arrives unsigned and is rejected at admission.
            hostile = UdpNetwork()
            hostile.register(9, lambda src, msg: None)
            # Rebind node 1's address so the hostile fabric can reach it.
            hostile._addresses = dict(network._addresses)  # noqa: SLF001 - test rig
            await hostile.open_all()
            hostile.send(9, 1, a_ball("evil"))
            await asyncio.sleep(0.05)

            await hostile.close()
            await network.close()
            return inbox, network.stats

        inbox, stats = run(scenario())
        assert len(inbox) == 1
        assert inbox[0][1][0].event.payload == "hello"
        assert stats.dropped_unsigned >= 1
        assert stats.dropped_undecodable >= 1

    def test_unknown_version_counted_separately(self):
        async def scenario():
            network = UdpNetwork(authenticator=self._authenticator())
            inbox = []
            network.register(1, lambda src, msg: inbox.append(msg))
            network.register(2, lambda src, msg: None)
            await network.open_all()

            from repro.runtime import codec

            wire = bytearray(codec.encode(2, a_ball("x")))
            wire[2] = 9  # future header version
            host, port = network._addresses[1]  # noqa: SLF001 - test rig
            network._transports[2].sendto(bytes(wire), (host, port))  # noqa: SLF001
            await asyncio.sleep(0.05)
            await network.close()
            return inbox, network.stats

        inbox, stats = run(scenario())
        assert inbox == []
        assert stats.dropped_bad_version == 1
        assert stats.dropped_malformed == 0
