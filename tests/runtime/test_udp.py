"""Tests for the UDP transport (repro.runtime.udp) over real loopback sockets."""

from __future__ import annotations

import asyncio

import pytest

from repro.core import EpToConfig
from repro.core.errors import MembershipError
from repro.core.event import BallEntry, Event, make_ball
from repro.runtime.node import AsyncEpToNode
from repro.runtime.udp import UdpNetwork
from repro.pss.base import MembershipDirectory
from repro.pss.uniform import UniformViewPss


def run(coro):
    return asyncio.run(coro)


def a_ball(payload="x"):
    return make_ball(
        [BallEntry(Event(id=(9, 0), ts=1, source_id=9, payload=payload), 0)]
    )


class TestUdpFabric:
    def test_datagram_roundtrip(self):
        async def scenario():
            network = UdpNetwork()
            inbox = []
            network.register(1, lambda src, msg: inbox.append((src, msg)))
            network.register(2, lambda src, msg: None)
            await network.open_all()
            network.send(2, 1, a_ball("hello"))
            await asyncio.sleep(0.05)
            await network.close()
            return inbox

        inbox = run(scenario())
        assert len(inbox) == 1
        src, ball = inbox[0]
        assert src == 2
        assert ball[0].event.payload == "hello"

    def test_send_before_open_is_counted_drop(self):
        async def scenario():
            network = UdpNetwork()
            network.register(1, lambda src, msg: None)
            network.register(2, lambda src, msg: None)
            network.send(2, 1, a_ball())  # sockets not bound yet
            await network.open_all()
            await network.close()
            return network.stats.dropped_unopened

        assert run(scenario()) == 1

    def test_unencodable_message_is_counted_drop(self):
        async def scenario():
            network = UdpNetwork()
            network.register(1, lambda src, msg: None)
            network.register(2, lambda src, msg: None)
            await network.open_all()
            network.send(2, 1, a_ball(payload=object()))
            await network.close()
            return network.stats.dropped_encode

        assert run(scenario()) == 1

    def test_malformed_datagram_is_counted_and_survived(self):
        async def scenario():
            network = UdpNetwork()
            inbox = []
            network.register(1, lambda src, msg: inbox.append(msg))
            host, port = None, None
            await network.open_all()
            address = network.address_of(1)
            # Throw raw garbage at the node's socket.
            loop = asyncio.get_event_loop()
            transport, _ = await loop.create_datagram_endpoint(
                asyncio.DatagramProtocol, remote_addr=address
            )
            transport.sendto(b"this is not an EpTO datagram")
            await asyncio.sleep(0.05)
            transport.close()
            # The node still works afterwards.
            network.register(2, lambda src, msg: None)
            await network.open(2)
            network.send(2, 1, a_ball("still alive"))
            await asyncio.sleep(0.05)
            await network.close()
            return network.stats.dropped_malformed, inbox

        malformed, inbox = run(scenario())
        assert malformed == 1
        assert len(inbox) == 1
        assert inbox[0][0].event.payload == "still alive"

    def test_duplicate_registration_rejected(self):
        network = UdpNetwork()
        network.register(1, lambda s, m: None)
        with pytest.raises(MembershipError):
            network.register(1, lambda s, m: None)

    def test_open_unregistered_rejected(self):
        async def scenario():
            network = UdpNetwork()
            with pytest.raises(MembershipError):
                await network.open(5)

        run(scenario())

    def test_unregister_closes_socket(self):
        async def scenario():
            network = UdpNetwork()
            network.register(1, lambda s, m: None)
            await network.open(1)
            assert network.address_of(1) is not None
            network.unregister(1)
            assert network.address_of(1) is None
            await network.close()

        run(scenario())


class TestEpToOverUdp:
    def test_total_order_over_real_sockets(self):
        """Full EpTO cluster gossiping over loopback UDP datagrams."""

        async def scenario():
            config = EpToConfig(fanout=3, ttl=5, round_interval=15, clock="logical")
            network = UdpNetwork()
            directory = MembershipDirectory()
            deliveries: dict[int, list] = {}
            nodes = []
            for node_id in range(6):
                deliveries[node_id] = []
                import random as _random

                pss = UniformViewPss(
                    node_id, directory, _random.Random(f"udp:{node_id}")
                )
                node = AsyncEpToNode(
                    node_id=node_id,
                    config=config,
                    network=network,  # type: ignore[arg-type]
                    peer_sampler=pss,
                    on_deliver=deliveries[node_id].append,
                    seed=99,
                )
                directory.add(node_id)
                nodes.append(node)
            await network.open_all()
            for node in nodes:
                node.start()

            nodes[0].broadcast("first")
            nodes[4].broadcast("second")

            deadline = asyncio.get_event_loop().time() + 10.0
            while asyncio.get_event_loop().time() < deadline:
                if all(len(seq) >= 2 for seq in deliveries.values()):
                    break
                await asyncio.sleep(0.02)

            for node in nodes:
                await node.stop()
            await network.close()
            return deliveries

        deliveries = run(scenario())
        sequences = {
            tuple(e.payload for e in seq) for seq in deliveries.values()
        }
        assert len(sequences) == 1
        assert set(next(iter(sequences))) == {"first", "second"}
