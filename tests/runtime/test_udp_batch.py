"""Batched UDP fabric: tier matrix, counters, pool, and equivalence.

The ``batch`` modes of :class:`~repro.runtime.udp.UdpNetwork` must be
observationally identical — same delivered sequences, same semantic
``UdpStats`` — with only the syscall counters allowed to differ. The
equivalence class at the bottom is the acceptance criterion: a real
EpTO cluster over the batched transport delivers bit-identical total
order to the pre-batching asyncio-endpoint transport on seeded runs
(same spirit as ``tests/core/test_ordering_equivalence.py``).
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core import EpToConfig
from repro.core.event import BallEntry, Event, make_ball
from repro.runtime import AsyncCluster, batchio
from repro.runtime.udp import UdpNetwork


def run(coro):
    return asyncio.run(coro)


def a_ball(payload="x"):
    return make_ball(
        [BallEntry(Event(id=(9, 0), ts=1, source_id=9, payload=payload), 0)]
    )


def small_config(**overrides):
    defaults = dict(fanout=3, ttl=6, round_interval=15, clock="logical")
    defaults.update(overrides)
    return EpToConfig(**defaults)


def _batch_modes():
    """Every transport mode this platform supports: the pre-batching
    asyncio endpoints (``False``) plus each forceable send tier."""
    modes: list = [False]
    for tier in batchio.SEND_TIERS:
        try:
            batchio.select_send_tier(tier)
        except ValueError:
            continue
        modes.append(tier)
    return modes


ROUNDS = 5
PEERS = (1, 2, 3, 4)


async def _fanout_scenario(batch):
    """Five encode-once fan-outs from node 0 to four peers."""
    network = UdpNetwork(seed=7, batch=batch)
    inboxes = {nid: [] for nid in PEERS}
    for nid in inboxes:
        network.register(nid, lambda src, msg, n=nid: inboxes[n].append(msg))
    network.register(0, lambda src, msg: None)
    await network.open_all()
    # All rounds are issued before the loop runs the readers, so each
    # peer receives one burst — what the batched drain is built for.
    for r in range(ROUNDS):
        network.send_many(0, list(PEERS), a_ball(f"round-{r}"))
    deadline = asyncio.get_event_loop().time() + 2.0
    while asyncio.get_event_loop().time() < deadline:
        if all(len(box) == ROUNDS for box in inboxes.values()):
            break
        await asyncio.sleep(0.005)
    await network.close()
    return network.stats, inboxes


class TestTierMatrix:
    @pytest.mark.parametrize("batch", _batch_modes())
    def test_identical_delivery_every_mode(self, batch):
        stats, inboxes = run(_fanout_scenario(batch))
        expected = [f"round-{r}" for r in range(ROUNDS)]
        for box in inboxes.values():
            assert [msg[0].event.payload for msg in box] == expected
        assert stats.sent == ROUNDS * len(PEERS)
        assert stats.delivered == ROUNDS * len(PEERS)

    def test_semantic_stats_identical_across_modes(self):
        """Everything except the syscall counters must agree."""

        def semantic(stats):
            return (
                stats.sent,
                stats.delivered,
                stats.encoded_datagrams,
                stats.dropped_unopened,
                stats.dropped_malformed,
                stats.transport_errors,
                stats.bytes_sent,
                stats.bytes_received,
            )

        views = {
            mode: semantic(run(_fanout_scenario(mode))[0])
            for mode in _batch_modes()
        }
        assert len(set(views.values())) == 1, views

    @pytest.mark.skipif(not batchio.HAS_SENDMMSG, reason="no sendmmsg")
    def test_sendmmsg_fanout_is_one_syscall_per_round(self):
        stats, _ = run(_fanout_scenario("sendmmsg"))
        assert stats.syscalls_send == ROUNDS
        assert stats.bytes_sent == stats.bytes_received > 0

    def test_sendto_tier_pays_one_syscall_per_datagram(self):
        stats, _ = run(_fanout_scenario("sendto"))
        assert stats.syscalls_send == ROUNDS * len(PEERS)

    @pytest.mark.skipif(not batchio.HAS_RECVMMSG, reason="no recvmmsg")
    def test_batched_receive_takes_fewer_wakeups_than_datagrams(self):
        stats, _ = run(_fanout_scenario("sendmmsg"))
        # Each peer's 5-datagram burst drains in one recvmmsg plus one
        # empty probe — far fewer wakeups than datagrams delivered.
        assert stats.syscalls_recv <= stats.delivered

    def test_forcing_unavailable_tier_raises(self, monkeypatch):
        monkeypatch.setattr(batchio, "HAS_SENDMMSG", False)
        with pytest.raises(ValueError):
            UdpNetwork(batch="sendmmsg")

    def test_batching_introspection(self):
        assert UdpNetwork(batch=False).batching is None
        assert UdpNetwork(batch="sendto").batching == "sendto"
        assert UdpNetwork().batching == batchio.best_send_tier()


class TestDeferredSendPool:
    def test_delayed_send_leases_and_returns_one_buffer(self):
        async def scenario():
            network = UdpNetwork(seed=4)
            inbox = []
            network.register(1, lambda src, msg: inbox.append(msg))
            network.register(2, lambda src, msg: None)
            await network.open_all()
            network.set_latency_spike(factor=3.0, duration=5.0)
            network.send(2, 1, a_ball("one"))
            assert network.stats.delayed == 1
            assert network._deferred_pool == []  # noqa: SLF001 - leased out
            await asyncio.sleep(0.1)
            pool_after_first = list(network._deferred_pool)  # noqa: SLF001
            network.send(2, 1, a_ball("two"))
            leased_again = network._deferred_pool == []  # noqa: SLF001
            await asyncio.sleep(0.1)
            reused = (
                len(network._deferred_pool) == 1  # noqa: SLF001
                and network._deferred_pool[0] is pool_after_first[0]  # noqa: SLF001
            )
            await network.close()
            return len(pool_after_first), leased_again, reused, inbox

        returned, leased_again, reused, inbox = run(scenario())
        assert returned == 1  # returned to the pool after the send fired
        assert leased_again  # the second spike reused it, no allocation
        assert reused
        assert [msg[0].event.payload for msg in inbox] == ["one", "two"]

    def test_delayed_sends_deliver_on_both_transports(self):
        for batch in (False, "auto"):

            async def scenario():
                network = UdpNetwork(seed=4, latency=0.002, batch=batch)
                inbox = []
                network.register(1, lambda src, msg: inbox.append(msg))
                network.register(2, lambda src, msg: None)
                await network.open_all()
                for i in range(6):
                    network.send(2, 1, a_ball(f"d{i}"))
                await asyncio.sleep(0.15)
                await network.close()
                return network.stats, inbox

            stats, inbox = run(scenario())
            assert stats.delayed == 6
            # Jittered per-send delays may reorder deliveries; every
            # datagram must still arrive intact.
            assert sorted(msg[0].event.payload for msg in inbox) == [
                f"d{i}" for i in range(6)
            ]


class TestTransportEquivalence:
    """Acceptance criterion: batched and fallback transports deliver
    bit-identical total order to the pre-change transport."""

    def _cluster_run(self, batch):
        async def scenario():
            network = UdpNetwork(seed=11, batch=batch)
            cluster = AsyncCluster(small_config(), network=network, seed=11)
            cluster.add_nodes(6)
            await network.open_all()
            cluster.start_all()
            # Broadcast before the first round tick: the events'
            # logical timestamps are then identical across runs, so
            # the final total order is deterministic.
            for i in range(4):
                cluster.nodes[i].broadcast(f"event-{i}")
            ok = await cluster.wait_for_deliveries(4, timeout=10.0)
            await cluster.stop_all()
            await network.close()
            return ok, cluster.delivery_payload_sequences()

        return run(scenario())

    @pytest.mark.parametrize(
        "batch", [mode for mode in _batch_modes() if mode is not False]
    )
    def test_batched_matches_prechange_transport(self, batch):
        ok_base, baseline = self._cluster_run(False)
        ok_new, candidate = self._cluster_run(batch)
        assert ok_base and ok_new
        baseline_orders = {tuple(seq) for seq in baseline.values()}
        candidate_orders = {tuple(seq) for seq in candidate.values()}
        assert len(baseline_orders) == 1  # the pre-change transport agrees
        assert candidate_orders == baseline_orders
