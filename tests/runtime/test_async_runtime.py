"""Tests for the asyncio runtime (repro.runtime, paper §8.5).

These run real (miniature) EpTO clusters on the event loop with short
round intervals, so they take a few hundred milliseconds each.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core import EpToConfig
from repro.core.errors import MembershipError
from repro.runtime import AsyncCluster, AsyncNetwork


def run(coro):
    return asyncio.run(coro)


def small_config(**overrides):
    defaults = dict(fanout=3, ttl=5, round_interval=15, clock="logical")
    defaults.update(overrides)
    return EpToConfig(**defaults)


class TestAsyncNetwork:
    def test_zero_latency_delivery(self):
        async def scenario():
            network = AsyncNetwork()
            inbox = []
            network.register(1, lambda src, msg: inbox.append((src, msg)))
            network.send(0, 1, "hi")
            await asyncio.sleep(0.01)
            return inbox

        assert run(scenario()) == [(0, "hi")]

    def test_loss(self):
        async def scenario():
            network = AsyncNetwork(loss_rate=0.5, seed=1)
            inbox = []
            network.register(1, lambda src, msg: inbox.append(msg))
            for i in range(200):
                network.send(0, 1, i)
            await asyncio.sleep(0.05)
            return len(inbox), network.stats.dropped_loss

        delivered, dropped = run(scenario())
        assert delivered + dropped == 200
        assert 50 < delivered < 150

    def test_dead_destination_counted(self):
        async def scenario():
            network = AsyncNetwork()
            network.send(0, 42, "void")
            await asyncio.sleep(0.01)
            return network.stats.dropped_dead

        assert run(scenario()) == 1

    def test_duplicate_registration_rejected(self):
        network = AsyncNetwork()
        network.register(1, lambda s, m: None)
        with pytest.raises(MembershipError):
            network.register(1, lambda s, m: None)

    def test_implements_faultable_network_protocol(self):
        from repro.core.interfaces import FaultableNetwork
        from repro.runtime.udp import UdpNetwork

        assert isinstance(AsyncNetwork(), FaultableNetwork)
        assert isinstance(UdpNetwork(), FaultableNetwork)


class TestAsyncNetworkFaults:
    def test_partition_drops_cross_group_messages(self):
        async def scenario():
            network = AsyncNetwork()
            inbox = []
            network.register(1, lambda src, msg: inbox.append(msg))
            network.register(2, lambda src, msg: None)
            network.set_partition({1: "left", 2: "right"})
            network.send(2, 1, "across")
            await asyncio.sleep(0.01)
            dropped_during = network.stats.dropped_partition
            network.heal_partition()
            network.send(2, 1, "after-heal")
            await asyncio.sleep(0.01)
            return dropped_during, inbox

        dropped, inbox = run(scenario())
        assert dropped == 1
        assert inbox == ["after-heal"]

    def test_partition_drops_messages_in_flight(self):
        """A message launched before the partition forms is lost at
        delivery time, like on a real network."""

        async def scenario():
            network = AsyncNetwork(latency=0.03, seed=1)
            inbox = []
            network.register(1, lambda src, msg: inbox.append(msg))
            network.register(2, lambda src, msg: None)
            network.send(2, 1, "in-flight")
            network.set_partition({1: "a", 2: "b"})
            await asyncio.sleep(0.1)
            return network.stats.dropped_partition, inbox

        dropped, inbox = run(scenario())
        assert dropped == 1
        assert inbox == []

    def test_loss_burst_window(self):
        async def scenario():
            network = AsyncNetwork(seed=2)
            inbox = []
            network.register(1, lambda src, msg: inbox.append(msg))
            network.set_loss_burst(1.0, duration=0.05)
            for i in range(10):
                network.send(0, 1, i)
            await asyncio.sleep(0.1)  # window over
            in_burst = len(inbox)
            network.send(0, 1, "late")
            await asyncio.sleep(0.01)
            return in_burst, network.stats.dropped_burst, inbox

        in_burst, dropped_burst, inbox = run(scenario())
        assert in_burst == 0
        assert dropped_burst == 10
        assert inbox == ["late"]

    def test_latency_spike_window_delays_delivery(self):
        async def scenario():
            network = AsyncNetwork(latency=0.02, seed=3)
            inbox = []
            network.register(1, lambda src, msg: inbox.append(msg))
            network.set_latency_spike(10.0, duration=1.0)
            network.send(0, 1, "slow")
            # Normal latency is at most 0.03s; spiked is at least 0.1s.
            await asyncio.sleep(0.05)
            early = list(inbox)
            await asyncio.sleep(0.4)
            return early, inbox

        early, inbox = run(scenario())
        assert early == []
        assert inbox == ["slow"]

    def test_dropped_aggregate(self):
        async def scenario():
            network = AsyncNetwork()
            network.register(1, lambda src, msg: None)
            network.set_partition({0: "a", 1: "b"})
            network.send(0, 1, "x")  # partition drop
            network.heal_partition()
            network.send(0, 9, "y")  # dead destination
            await asyncio.sleep(0.01)
            return network.stats

        stats = run(scenario())
        assert stats.dropped == 2
        assert stats.dropped == (
            stats.dropped_loss
            + stats.dropped_dead
            + stats.dropped_partition
            + stats.dropped_burst
        )


class TestAsyncCluster:
    def test_total_order_across_real_timers(self):
        async def scenario():
            cluster = AsyncCluster(small_config(), seed=2)
            cluster.add_nodes(6)
            cluster.start_all()
            cluster.nodes[0].broadcast("a")
            cluster.nodes[3].broadcast("b")
            cluster.nodes[5].broadcast("c")
            ok = await cluster.wait_for_deliveries(3, timeout=8.0)
            await cluster.stop_all()
            return ok, cluster.delivery_payload_sequences()

        ok, sequences = run(scenario())
        assert ok
        assert len({tuple(seq) for seq in sequences.values()}) == 1

    def test_total_order_under_latency_and_loss(self):
        async def scenario():
            network = AsyncNetwork(latency=0.003, loss_rate=0.05, seed=5)
            cluster = AsyncCluster(
                small_config(fanout=4, ttl=6),
                network=network,
                drift_fraction=0.05,
                seed=5,
            )
            cluster.add_nodes(8)
            cluster.start_all()
            for i in range(4):
                cluster.nodes[i].broadcast(f"event-{i}")
            ok = await cluster.wait_for_deliveries(4, timeout=10.0)
            await cluster.stop_all()
            return ok, cluster.delivery_payload_sequences()

        ok, sequences = run(scenario())
        assert ok
        assert len({tuple(seq) for seq in sequences.values()}) == 1

    def test_cyclon_pss_runtime(self):
        async def scenario():
            cluster = AsyncCluster(small_config(), pss="cyclon", seed=7)
            cluster.add_nodes(6)
            cluster.start_all()
            await asyncio.sleep(0.1)  # let views mix
            cluster.nodes[2].broadcast("x")
            ok = await cluster.wait_for_deliveries(1, timeout=8.0)
            await cluster.stop_all()
            return ok

        assert run(scenario())

    def test_node_stop_and_removal(self):
        async def scenario():
            cluster = AsyncCluster(small_config(), seed=3)
            cluster.add_nodes(4)
            cluster.start_all()
            await cluster.remove_node(2)
            assert 2 not in cluster.nodes
            assert 2 not in cluster.directory
            # Remaining nodes still agree.
            cluster.nodes[0].broadcast("after-crash")
            ok = await cluster.wait_for_deliveries(1, timeout=8.0)
            await cluster.stop_all()
            return ok

        assert run(scenario())

    def test_remove_unknown_rejected(self):
        async def scenario():
            cluster = AsyncCluster(small_config(), seed=3)
            with pytest.raises(MembershipError):
                await cluster.remove_node(9)

        run(scenario())

    def test_invalid_pss_rejected(self):
        with pytest.raises(MembershipError):
            AsyncCluster(small_config(), pss="oracle")

    def test_node_running_lifecycle(self):
        async def scenario():
            cluster = AsyncCluster(small_config(), seed=4)
            node = cluster.add_node()
            assert not node.running
            node.start()
            assert node.running
            await node.stop()
            assert not node.running

        run(scenario())


class TestLateJoin:
    def test_late_joiner_delivers_subsequent_events(self):
        """A node added mid-run (the runtime's churn-join path) sees
        every event broadcast after it joined, in the same order."""

        async def scenario():
            cluster = AsyncCluster(small_config(), seed=8)
            cluster.add_nodes(5)
            cluster.start_all()
            cluster.nodes[0].broadcast("before-join")
            await cluster.wait_for_deliveries(1, timeout=8.0)

            joiner = cluster.add_node()
            joiner.start()
            await asyncio.sleep(0.05)  # let it tick a few rounds
            cluster.nodes[1].broadcast("after-join")

            def joiner_and_veterans_done() -> bool:
                joiner_ok = any(
                    e.payload == "after-join"
                    for e in cluster.deliveries[joiner.node_id]
                )
                veterans_ok = all(
                    len(cluster.deliveries[n]) >= 2 for n in range(5)
                )
                return joiner_ok and veterans_ok

            ok = await cluster.wait_until(joiner_and_veterans_done, timeout=10.0)
            await cluster.stop_all()
            veterans = {
                tuple(e.payload for e in cluster.deliveries[n]) for n in range(5)
            }
            joiner_payloads = [
                e.payload for e in cluster.deliveries[joiner.node_id]
            ]
            return ok, veterans, joiner_payloads

        ok, veterans, joiner_payloads = run(scenario())
        assert ok
        assert veterans == {("before-join", "after-join")}
        # The joiner saw the post-join event; it may additionally have
        # caught "before-join" if that was still circulating — in-order
        # either way.
        assert joiner_payloads[-1] == "after-join"
