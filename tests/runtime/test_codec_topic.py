"""Wire-hostility tests for the multi-topic envelope (kind 8, version 3).

Mirrors ``test_codec_signed.py`` for the service layer's framing: the
envelope faces the same open internet, so truncated, wrong-version,
bit-flipped and nested datagrams must all be rejected with
:class:`~repro.runtime.codec.CodecError` (or its
:class:`~repro.runtime.codec.CodecVersionError` subclass) — no other
exception may ever escape ``decode``. The unknown-topic-id case is a
*routing* concern, checked in ``tests/service``: any u32 topic id must
round-trip through the codec so the demux can count it.
"""

from __future__ import annotations

import random

import pytest

from repro.auth import BallGuard, HmacAuthenticator, KeyRing, SignedBall
from repro.core.event import BallEntry, Event, make_ball
from repro.runtime import codec
from repro.runtime.codec import CodecError, CodecVersionError, TopicEnvelope
from repro.pss.cyclon import CyclonRequest, CyclonResponse
from repro.sync.protocol import (
    DeliveryDigest,
    SyncChunk,
    SyncDigest,
    SyncRequest,
    events_checksum,
)


def _event(src=1, seq=0, ts=10, payload=None):
    return Event(
        id=(src, seq),
        ts=ts,
        source_id=src,
        payload={"v": seq} if payload is None else payload,
    )


def _ball(entries=3):
    return make_ball(
        [BallEntry(_event(src=1 + i, seq=i, ts=10 + i), ttl=i) for i in range(entries)]
    )


def _signed_ball(entries=2):
    guard = BallGuard(HmacAuthenticator(KeyRing("topic-codec-test")))
    ball = _ball(entries)
    for entry in ball:
        guard.seal(entry.event.source_id, ball)
    return guard.attach(ball)


def _mixed_envelope():
    """One frame of every single-topic kind the codec can carry."""
    chunk_events = tuple(_event(src=4, seq=i, ts=30 + i) for i in range(3))
    return TopicEnvelope(
        frames=(
            (0, 7, _ball()),
            (1, 7, _signed_ball()),
            (2, 9, CyclonRequest(entries=((3, 0), (5, 2)))),
            (2, 9, CyclonResponse(entries=((7, 1),))),
            (
                3,
                7,
                SyncDigest(
                    digest=DeliveryDigest(
                        last_key=(12, 3, 7), watermarks=((1, 4), (3, 9))
                    ),
                    reply=True,
                ),
            ),
            (
                3,
                7,
                SyncRequest(
                    req_id=0xBEEF,
                    after=(8, 2, 1),
                    watermarks=((0, 2),),
                    max_events=32,
                    max_bytes=16_000,
                ),
            ),
            (
                3,
                7,
                SyncChunk(
                    req_id=0xBEEF,
                    events=chunk_events,
                    checksum=events_checksum(chunk_events),
                    more=False,
                    peer_last=None,
                ),
            ),
        )
    )


class TestRoundTrip:
    def test_mixed_envelope_round_trips(self):
        envelope = _mixed_envelope()
        sender, decoded = codec.decode(codec.encode(42, envelope))
        assert sender == 42
        assert isinstance(decoded, TopicEnvelope)
        assert decoded == envelope

    def test_envelope_uses_version_3_inner_frames_keep_theirs(self):
        wire = codec.encode(1, _mixed_envelope())
        assert wire[2] == 3 and wire[3] == 8
        # First frame starts after header(16) + frame head(8): a plain
        # ball keeps inner version 1; the signed frame stays version 2.
        assert wire[16 + 8 + 2] == 1

    def test_empty_envelope_round_trips(self):
        _, decoded = codec.decode(codec.encode(5, TopicEnvelope(frames=())))
        assert decoded == TopicEnvelope(frames=())

    def test_full_u32_topic_range_round_trips(self):
        envelope = TopicEnvelope(
            frames=((0, 1, _ball(1)), (codec.MAX_TOPIC_ID, 1, _ball(1)))
        )
        _, decoded = codec.decode(codec.encode(1, envelope))
        assert [frame[0] for frame in decoded.frames] == [0, codec.MAX_TOPIC_ID]

    def test_single_topic_kinds_still_decode(self):
        ball = _ball()
        _, decoded = codec.decode(codec.encode(1, ball))
        assert decoded == ball


class TestEncodeRejections:
    def test_out_of_range_topic_id_rejected(self):
        for topic in (-1, codec.MAX_TOPIC_ID + 1):
            with pytest.raises(CodecError):
                codec.encode(1, TopicEnvelope(frames=((topic, 1, _ball(1)),)))

    def test_nested_envelope_rejected_at_encode(self):
        inner = TopicEnvelope(frames=((0, 1, _ball(1)),))
        with pytest.raises(CodecError):
            codec.encode(1, TopicEnvelope(frames=((0, 1, inner),)))

    def test_oversized_envelope_rejected(self):
        big = make_ball(
            [BallEntry(_event(seq=i, payload="x" * 1000), ttl=1) for i in range(30)]
        )
        frames = tuple((t, 1, big) for t in range(4))
        with pytest.raises(CodecError):
            codec.encode(1, TopicEnvelope(frames=frames))


class TestVersionGate:
    def test_unknown_version_raises_version_error(self):
        wire = bytearray(codec.encode(1, _mixed_envelope()))
        wire[2] = 5
        with pytest.raises(CodecVersionError):
            codec.decode(bytes(wire))

    @pytest.mark.parametrize("version", [1, 2])
    def test_envelope_kind_under_old_versions_rejected(self, version):
        # A well-framed v1/v2 header must never smuggle in kind 8.
        wire = bytearray(codec.encode(1, _mixed_envelope()))
        wire[2] = version
        with pytest.raises(CodecError) as err:
            codec.decode(bytes(wire))
        assert not isinstance(err.value, CodecVersionError)

    def test_nested_envelope_rejected_at_decode(self):
        # Hand-craft what the encoder refuses to build: a frame whose
        # inner datagram is itself a kind-8 envelope.
        inner = codec.encode(1, TopicEnvelope(frames=((0, 1, _ball(1)),)))
        body = codec._FRAME_HEAD.pack(9, len(inner)) + inner
        wire = codec._HEADER.pack(b"EP", 3, 8, 1, 1) + body
        with pytest.raises(CodecError, match="nest"):
            codec.decode(wire)

    def test_bad_inner_version_raises_version_error(self):
        # A frame from a future-version peer is counted as version
        # traffic, not line noise — the error class carries that.
        inner = bytearray(codec.encode(1, _ball(1)))
        inner[2] = 9
        body = codec._FRAME_HEAD.pack(0, len(inner)) + bytes(inner)
        wire = codec._HEADER.pack(b"EP", 3, 8, 1, 1) + body
        with pytest.raises(CodecVersionError):
            codec.decode(wire)


class TestHostileBytes:
    def test_every_truncation_rejected_cleanly(self):
        wire = codec.encode(7, _mixed_envelope())
        for cut in range(len(wire)):
            with pytest.raises(CodecError):
                codec.decode(wire[:cut])

    def test_trailing_garbage_rejected(self):
        wire = codec.encode(7, _mixed_envelope())
        with pytest.raises(CodecError):
            codec.decode(wire + b"\x00")
        with pytest.raises(CodecError):
            codec.decode(wire + wire)

    def test_oversized_frame_count_rejected(self):
        wire = bytearray(codec.encode(7, _mixed_envelope()))
        wire[12:16] = (2**31).to_bytes(4, "big")
        with pytest.raises(CodecError):
            codec.decode(bytes(wire))

    def test_corrupt_inner_frame_rejected(self):
        wire = bytearray(codec.encode(7, TopicEnvelope(frames=((1, 1, _ball()),))))
        # Garble the inner frame's magic (header 16 + frame head 8).
        wire[24:26] = b"XX"
        with pytest.raises(CodecError):
            codec.decode(bytes(wire))

    def test_bit_flip_fuzz_never_escapes_codec_error(self):
        wire = codec.encode(7, _mixed_envelope())
        rng = random.Random(0xC0DEC)
        outcomes = {"ok": 0, "rejected": 0}
        for _ in range(400):
            mutated = bytearray(wire)
            for _ in range(rng.randint(1, 4)):
                position = rng.randrange(len(mutated))
                mutated[position] ^= 1 << rng.randrange(8)
            try:
                codec.decode(bytes(mutated))
            except CodecError:
                outcomes["rejected"] += 1
            else:
                # Flips confined to payloads, senders or topic ids can
                # decode; routing and auth reject them later. Only
                # CodecError may escape here.
                outcomes["ok"] += 1
        assert outcomes["rejected"] > 0


class TestV2V3Differential:
    """Differential fuzz: wrapping must not change what frames mean.

    For any randomly generated single-topic message, encoding it
    standalone and encoding it as an envelope frame must decode back to
    the identical message — so the service path can be adopted topic by
    topic without changing what the traffic means. The flip side is the
    cross-version rejection: re-stamping the envelope wire with the v1
    or v2 header version must always be refused.
    """

    @staticmethod
    def _random_payload(rng):
        kind = rng.randrange(5)
        if kind == 0:
            return None
        if kind == 1:
            return rng.randrange(-(2**40), 2**40)
        if kind == 2:
            return "x" * rng.randrange(0, 40)
        if kind == 3:
            return {"k": rng.randrange(100), "s": "v" * rng.randrange(8)}
        return [rng.randrange(256) for _ in range(rng.randrange(6))]

    def _random_ball(self, rng):
        entries = []
        for i in range(rng.randrange(1, 9)):
            source = rng.randrange(2**20)
            event = Event(
                id=(source, i),
                ts=rng.randrange(2**40),
                source_id=source,
                payload=self._random_payload(rng),
            )
            entries.append(BallEntry(event, ttl=rng.randrange(0, 64)))
        return make_ball(entries)

    def test_random_messages_identical_standalone_and_framed(self):
        rng = random.Random(0xD1FF)
        for _ in range(200):
            ball = self._random_ball(rng)
            message = (
                SignedBall(entries=ball, signatures=(None,) * len(ball))
                if rng.random() < 0.5
                else ball
            )
            sender = rng.randrange(2**20)
            topic = rng.randrange(2**32)
            standalone = codec.decode(codec.encode(sender, message))
            _, envelope = codec.decode(
                codec.encode(99, TopicEnvelope(frames=((topic, sender, message),)))
            )
            assert envelope.frames == ((topic,) + standalone,)

    def test_downstamped_envelopes_always_rejected(self):
        rng = random.Random(0xD0D0)
        for _ in range(100):
            ball = self._random_ball(rng)
            wire = bytearray(
                codec.encode(1, TopicEnvelope(frames=((rng.randrange(2**32), 1, ball),)))
            )
            wire[2] = rng.choice([1, 2])
            with pytest.raises(CodecError):
                codec.decode(bytes(wire))
