"""UDP encode-once fan-out and sender-side latency spikes."""

from __future__ import annotations

import asyncio

from repro.core.event import BallEntry, Event, make_ball
from repro.runtime.udp import DEFAULT_SPIKE_BASE, UdpNetwork


def run(coro):
    return asyncio.run(coro)


def a_ball(payload="x"):
    return make_ball(
        [BallEntry(Event(id=(9, 0), ts=1, source_id=9, payload=payload), 0)]
    )


class TestEncodeOnceFanout:
    def test_send_many_encodes_once_for_all_peers(self):
        async def scenario():
            network = UdpNetwork()
            inboxes = {nid: [] for nid in (1, 2, 3)}
            for nid in inboxes:
                network.register(nid, lambda src, msg, n=nid: inboxes[n].append(msg))
            network.register(0, lambda src, msg: None)
            await network.open_all()
            network.send_many(0, [1, 2, 3], a_ball("fan-out"))
            await asyncio.sleep(0.05)
            await network.close()
            return network.stats, inboxes

        stats, inboxes = run(scenario())
        assert stats.encoded_datagrams == 1  # one serialization per round
        assert stats.sent == 3
        assert stats.delivered == 3
        for inbox in inboxes.values():
            assert len(inbox) == 1
            assert inbox[0][0].event.payload == "fan-out"

    def test_per_peer_send_encodes_per_destination(self):
        async def scenario():
            network = UdpNetwork()
            for nid in (0, 1, 2):
                network.register(nid, lambda src, msg: None)
            await network.open_all()
            network.send(0, 1, a_ball())
            network.send(0, 2, a_ball())
            await network.close()
            return network.stats

        stats = run(scenario())
        assert stats.encoded_datagrams == 2

    def test_send_many_unencodable_counts_every_destination(self):
        async def scenario():
            network = UdpNetwork()
            for nid in (0, 1, 2):
                network.register(nid, lambda src, msg: None)
            await network.open_all()
            bad = make_ball(
                [BallEntry(Event(id=(0, 0), ts=1, source_id=0, payload=object()), 0)]
            )
            network.send_many(0, [1, 2], bad)
            await network.close()
            return network.stats

        stats = run(scenario())
        assert stats.dropped_encode == 2
        assert stats.encoded_datagrams == 0
        assert stats.delivered == 0


class TestLatencySpike:
    def test_spike_defers_but_still_delivers(self):
        async def scenario():
            network = UdpNetwork(seed=4)
            inbox = []
            network.register(1, lambda src, msg: inbox.append(msg))
            network.register(2, lambda src, msg: None)
            await network.open_all()
            network.set_latency_spike(factor=3.0, duration=5.0)
            network.send(2, 1, a_ball("slow"))
            assert network.stats.delayed == 1
            assert inbox == []  # still parked on the loop timer
            # 3x the default base, +50% jitter, plus loopback slack.
            await asyncio.sleep(10 * DEFAULT_SPIKE_BASE + 0.05)
            await network.close()
            return network.stats, inbox

        stats, inbox = run(scenario())
        assert stats.delivered == 1
        assert len(inbox) == 1
        assert inbox[0][0].event.payload == "slow"

    def test_spike_window_expires(self):
        async def scenario():
            network = UdpNetwork(seed=4)
            network.register(1, lambda src, msg: None)
            network.register(2, lambda src, msg: None)
            await network.open_all()
            network.set_latency_spike(factor=10.0, duration=0.0)
            await asyncio.sleep(0.01)
            network.send(2, 1, a_ball())
            delayed = network.stats.delayed
            await network.close()
            return delayed

        assert run(scenario()) == 0

    def test_configured_latency_delays_without_spike(self):
        async def scenario():
            network = UdpNetwork(seed=1, latency=0.002)
            inbox = []
            network.register(1, lambda src, msg: inbox.append(msg))
            network.register(2, lambda src, msg: None)
            await network.open_all()
            network.send(2, 1, a_ball())
            delayed = network.stats.delayed
            await asyncio.sleep(0.05)
            await network.close()
            return delayed, inbox

        delayed, inbox = run(scenario())
        assert delayed == 1
        assert len(inbox) == 1

    def test_delayed_send_after_close_is_counted_dropped(self):
        async def scenario():
            network = UdpNetwork(seed=2)
            network.register(1, lambda src, msg: None)
            network.register(2, lambda src, msg: None)
            await network.open_all()
            network.set_latency_spike(factor=100.0, duration=5.0)
            network.send(2, 1, a_ball())
            await network.close()  # sender socket gone before the timer fires
            await asyncio.sleep(0.5)
            return network.stats

        stats = run(scenario())
        assert stats.delayed == 1
        assert stats.dropped_unopened == 1
        assert stats.delivered == 0
