"""Wire-hostility tests for the signed-ball codec (kind 7, version 2).

The decode path faces the open internet in the UDP fabric: truncated,
oversized, wrong-version and bit-flipped datagrams must all be rejected
with :class:`~repro.runtime.codec.CodecError` (or its
:class:`~repro.runtime.codec.CodecVersionError` subclass) — no other
exception may ever escape ``decode``.
"""

from __future__ import annotations

import random

import pytest

from repro.auth import BallGuard, HmacAuthenticator, KeyRing, SignedBall
from repro.core.event import BallEntry, Event, make_ball
from repro.runtime import codec
from repro.runtime.codec import CodecError, CodecVersionError
from repro.sync.protocol import (
    DeliveryDigest,
    SyncChunk,
    SyncDigest,
    SyncRequest,
    events_checksum,
)


def _event(src=1, seq=0, ts=10, payload=None):
    return Event(
        id=(src, seq),
        ts=ts,
        source_id=src,
        payload={"v": seq} if payload is None else payload,
    )


def _signed_ball(entries=4, sign_all=True):
    guard = BallGuard(HmacAuthenticator(KeyRing("codec-test")))
    events = [_event(src=1 + (i % 3), seq=i, ts=10 + i) for i in range(entries)]
    ball = make_ball([BallEntry(event, ttl=2 + i) for i, event in enumerate(events)])
    if sign_all:
        for event in events:
            guard.seal(event.source_id, ball)
    return guard.attach(ball)


class TestRoundTrip:
    def test_signed_ball_round_trips(self):
        signed = _signed_ball()
        sender, decoded = codec.decode(codec.encode(42, signed))
        assert sender == 42
        assert isinstance(decoded, SignedBall)
        assert decoded == signed

    def test_unsigned_entries_round_trip_as_none(self):
        signed = _signed_ball(sign_all=False)
        assert all(signature is None for signature in signed.signatures)
        _, decoded = codec.decode(codec.encode(1, signed))
        assert decoded == signed

    def test_signed_ball_uses_version_2_plain_stays_1(self):
        signed_wire = codec.encode(1, _signed_ball())
        plain_wire = codec.encode(1, _signed_ball().entries)
        assert signed_wire[2] == 2
        assert plain_wire[2] == 1

    def test_plain_kinds_still_decode(self):
        ball = _signed_ball().entries
        _, decoded = codec.decode(codec.encode(1, ball))
        assert decoded == ball


class TestVersionGate:
    def test_unknown_version_raises_version_error(self):
        # Version 4 is the lazy-push version, so the first genuinely
        # unknown version is now 5.
        wire = bytearray(codec.encode(1, _signed_ball()))
        wire[2] = 5
        with pytest.raises(CodecVersionError):
            codec.decode(bytes(wire))

    def test_version_error_is_a_codec_error(self):
        assert issubclass(CodecVersionError, CodecError)

    def test_signed_kind_under_version_1_rejected(self):
        # A well-framed v1 header must never smuggle in the signed kind.
        wire = bytearray(codec.encode(1, _signed_ball()))
        wire[2] = 1
        with pytest.raises(CodecError):
            codec.decode(bytes(wire))


class TestHostileBytes:
    def test_every_truncation_rejected_cleanly(self):
        wire = codec.encode(7, _signed_ball())
        for cut in range(len(wire)):
            with pytest.raises(CodecError):
                codec.decode(wire[:cut])

    def test_trailing_garbage_rejected(self):
        wire = codec.encode(7, _signed_ball())
        with pytest.raises(CodecError):
            codec.decode(wire + b"\x00")
        with pytest.raises(CodecError):
            codec.decode(wire + wire)

    def test_oversized_entry_count_rejected(self):
        # Claim far more entries than the datagram carries.
        wire = bytearray(codec.encode(7, _signed_ball()))
        wire[12:16] = (2**31).to_bytes(4, "big")
        with pytest.raises(CodecError):
            codec.decode(bytes(wire))

    def test_negative_ttl_rejected(self):
        event = _event()
        wire = bytearray(
            codec.encode(
                1,
                SignedBall(
                    entries=(BallEntry(event, ttl=0),), signatures=(None,)
                ),
            )
        )
        # Header is 16 bytes; the signed-entry layout is
        # ts(8) source(8) seq(8) ttl(4) ... — patch the ttl to -1.
        ttl_offset = 16 + 24
        assert wire[ttl_offset : ttl_offset + 4] == (0).to_bytes(4, "big")
        wire[ttl_offset : ttl_offset + 4] = (-1).to_bytes(4, "big", signed=True)
        with pytest.raises(CodecError):
            codec.decode(bytes(wire))

    def test_bit_flip_fuzz_never_escapes_codec_error(self):
        wire = codec.encode(7, _signed_ball(entries=6))
        rng = random.Random(0xC0DEC)
        outcomes = {"ok": 0, "rejected": 0}
        for _ in range(400):
            mutated = bytearray(wire)
            for _ in range(rng.randint(1, 4)):
                position = rng.randrange(len(mutated))
                mutated[position] ^= 1 << rng.randrange(8)
            try:
                codec.decode(bytes(mutated))
            except CodecError:
                outcomes["rejected"] += 1
            else:
                # Flips confined to payload bytes/sender can decode; the
                # authenticator rejects them later. Only CodecError may
                # escape here.
                outcomes["ok"] += 1
        assert outcomes["rejected"] > 0

    def test_mac_length_is_bounded(self):
        assert codec.MAX_MAC_LEN == 255


def _sync_digest_message():
    return SyncDigest(
        digest=DeliveryDigest(
            last_key=(12, 3, 7), watermarks=((1, 4), (3, 9), (5, 0))
        ),
        reply=True,
    )


def _sync_request_message():
    return SyncRequest(
        req_id=0xBEEF,
        after=(8, 2, 1),
        watermarks=((0, 2), (2, 6)),
        max_events=32,
        max_bytes=16_000,
    )


def _sync_chunk_message():
    events = tuple(_event(src=2 + i, seq=i, ts=20 + i) for i in range(5))
    return SyncChunk(
        req_id=0xBEEF,
        events=events,
        checksum=events_checksum(events),
        more=True,
        peer_last=(30, 4, 2),
    )


class TestSyncKindFuzz:
    """Bit-flip hostility for the anti-entropy kinds (4, 5, 6).

    Same contract as the signed-ball fuzz above: any corruption of a
    valid sync datagram either decodes (flips confined to payload or
    semantically-unchecked fields) or raises :class:`CodecError` — no
    other exception may escape.
    """

    @pytest.mark.parametrize(
        "build",
        [_sync_digest_message, _sync_request_message, _sync_chunk_message],
        ids=["digest-kind4", "request-kind5", "chunk-kind6"],
    )
    def test_bit_flip_fuzz_never_escapes_codec_error(self, build):
        wire = codec.encode(7, build())
        rng = random.Random(0xC0DEC)
        outcomes = {"ok": 0, "rejected": 0}
        for _ in range(400):
            mutated = bytearray(wire)
            for _ in range(rng.randint(1, 4)):
                position = rng.randrange(len(mutated))
                mutated[position] ^= 1 << rng.randrange(8)
            try:
                codec.decode(bytes(mutated))
            except CodecError:
                outcomes["rejected"] += 1
            else:
                outcomes["ok"] += 1
        assert outcomes["rejected"] > 0

    @pytest.mark.parametrize(
        "build",
        [_sync_digest_message, _sync_request_message, _sync_chunk_message],
        ids=["digest-kind4", "request-kind5", "chunk-kind6"],
    )
    def test_sync_messages_round_trip(self, build):
        message = build()
        sender, decoded = codec.decode(codec.encode(9, message))
        assert sender == 9
        assert decoded == message


class TestV1V2Differential:
    """Differential fuzz: the v2 unsigned path must match v1 exactly.

    A :class:`SignedBall` whose signatures are all ``None`` carries the
    same information as a plain ball — for any randomly generated entry
    set, both encodings must decode back to identical entries, so the
    signed path can be adopted incrementally without changing what
    unsigned traffic means.
    """

    @staticmethod
    def _random_payload(rng):
        kind = rng.randrange(5)
        if kind == 0:
            return None
        if kind == 1:
            return rng.randrange(-(2**40), 2**40)
        if kind == 2:
            return "x" * rng.randrange(0, 40)
        if kind == 3:
            return {"k": rng.randrange(100), "s": "v" * rng.randrange(8)}
        return [rng.randrange(256) for _ in range(rng.randrange(6))]

    def _random_ball(self, rng):
        entries = []
        for i in range(rng.randrange(1, 9)):
            source = rng.randrange(2**20)
            event = Event(
                id=(source, i),
                ts=rng.randrange(2**40),
                source_id=source,
                payload=self._random_payload(rng),
            )
            entries.append(BallEntry(event, ttl=rng.randrange(0, 64)))
        return make_ball(entries)

    def test_random_balls_round_trip_identically_via_v1_and_v2(self):
        rng = random.Random(0xD1FF)
        for _ in range(200):
            ball = self._random_ball(rng)
            sender = rng.randrange(2**20)
            v1_wire = codec.encode(sender, ball)
            v2_wire = codec.encode(
                sender,
                SignedBall(entries=ball, signatures=(None,) * len(ball)),
            )
            assert v1_wire[2] == 1 and v2_wire[2] == 2
            v1_sender, v1_ball = codec.decode(v1_wire)
            v2_sender, v2_ball = codec.decode(v2_wire)
            assert v1_sender == v2_sender == sender
            assert isinstance(v2_ball, SignedBall)
            assert v1_ball == ball
            assert v2_ball.entries == ball
            assert all(sig is None for sig in v2_ball.signatures)
