"""Receive-path hostility: hostile datagrams through zero-copy decode.

The batched receive path hands ``memoryview`` slices of reusable
receive buffers straight into :func:`repro.runtime.codec.decode`.
These tests pin the two invariants that make that safe:

1. any truncated / oversized / bit-flipped datagram is rejected with
   the correct split counter (``dropped_malformed`` vs
   ``dropped_bad_version``) and never crashes the fabric — across
   codec version 1 (plain kinds) and version 2 (signed kind 7);
2. nothing the codec returns aliases the receive buffer: no
   ``memoryview`` escapes past handler return, so the transport may
   overwrite its buffers the moment the handler completes.
"""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.auth import BallGuard, HmacAuthenticator, KeyRing
from repro.core.event import BallEntry, Event, make_ball
from repro.runtime import codec
from repro.runtime.codec import CodecError, CodecVersionError, decode
from repro.runtime.udp import UdpNetwork


def run(coro):
    return asyncio.run(coro)


def a_ball(payload="x"):
    return make_ball(
        [
            BallEntry(Event(id=(9, 0), ts=1, source_id=9, payload=payload), 0),
            BallEntry(Event(id=(9, 1), ts=2, source_id=9, payload=[payload, 1]), 3),
        ]
    )


def _plain_wire(payload="plain"):
    return codec.encode(9, a_ball(payload))


def _signed_wire(payload="signed"):
    guard = BallGuard(HmacAuthenticator(KeyRing("zero-copy-test")))
    ball = a_ball(payload)
    guard.seal(9, ball)
    return codec.encode(9, guard.attach(ball))


def _walk(obj):
    """Yield every object reachable from a delivered message."""
    yield obj
    if isinstance(obj, (tuple, list)):
        for item in obj:
            yield from _walk(item)
    elif hasattr(obj, "__dict__"):
        for item in vars(obj).values():
            yield from _walk(item)


class TestCodecFuzz:
    """Direct fuzz of ``decode`` over memoryview slices (no sockets)."""

    @pytest.mark.parametrize("wire", [_plain_wire(), _signed_wire()])
    def test_truncation_at_every_boundary_is_rejected(self, wire):
        for cut in range(len(wire)):
            with pytest.raises((CodecError, CodecVersionError)):
                decode(memoryview(wire)[:cut])

    @pytest.mark.parametrize("wire", [_plain_wire(), _signed_wire()])
    def test_oversized_datagram_is_rejected(self, wire):
        with pytest.raises(CodecError):
            decode(memoryview(wire + b"\x00junk"))

    @pytest.mark.parametrize("wire", [_plain_wire(), _signed_wire()])
    def test_bit_flip_fuzz_never_crashes(self, wire):
        """Seeded single-bit flips either decode (flip landed in a
        payload byte that stayed valid) or raise a codec error — never
        anything else, and never an escape of the source buffer."""
        rng = random.Random(0xF12)
        for _ in range(400):
            mutated = bytearray(wire)
            mutated[rng.randrange(len(mutated))] ^= 1 << rng.randrange(8)
            view = memoryview(mutated)
            try:
                sender, message = decode(view)
            except (CodecError, CodecVersionError):
                continue
            assert isinstance(sender, int)
            for obj in _walk(message):
                assert not isinstance(obj, (memoryview, bytearray))

    def test_version_flip_is_a_version_rejection_not_malformed(self):
        wire = bytearray(_plain_wire())
        wire[2] = 9  # future header version
        with pytest.raises(CodecVersionError):
            decode(memoryview(wire))

    def test_signed_kind_under_v1_header_is_malformed(self):
        wire = bytearray(_signed_wire())
        wire[2] = 1  # kind 7 requires header version 2
        with pytest.raises(CodecError):
            decode(memoryview(wire))

    def test_decode_from_offset_view_into_larger_buffer(self):
        """Memoryview boundary check: the wire embedded mid-buffer
        decodes identically to a standalone copy."""
        wire = _plain_wire("embedded")
        arena = bytearray(b"\xaa" * 37) + wire + bytearray(b"\xbb" * 53)
        view = memoryview(arena)[37 : 37 + len(wire)]
        assert decode(view) == decode(wire)

    def test_decoded_message_survives_buffer_scribble(self):
        """Everything decode returns is owned: zeroing the source
        buffer afterwards must not disturb the message."""
        wire = bytearray(_signed_wire("keepsake"))
        sender, message = decode(memoryview(wire))
        wire[:] = bytes(len(wire))
        assert sender == 9
        assert message.entries[0].event.payload == "keepsake"
        mac = message.signatures[0].mac
        assert isinstance(mac, bytes) and any(mac)


class TestFabricHostility:
    """The same hostility through real sockets and the batched
    receive path, asserting the fabric's split drop counters."""

    def _scenario(self, wires, authenticator=None):
        async def go():
            network = UdpNetwork(authenticator=authenticator)
            inbox = []
            network.register(1, lambda src, msg: inbox.append((src, msg)))
            network.register(2, lambda src, msg: None)
            await network.open_all()
            host, port = network._addresses[1]  # noqa: SLF001 - test rig
            endpoint = network._transports[2]  # noqa: SLF001 - test rig
            for wire in wires:
                endpoint.sendto(bytes(wire), (host, port))
            await asyncio.sleep(0.08)
            await network.close()
            return inbox, network.stats

        return run(go())

    def test_fuzzed_wires_split_counters_and_never_crash(self):
        rng = random.Random(0xBEEF)
        wire = _plain_wire("survivor")
        wires = [wire]  # one intact datagram among the noise
        for _ in range(40):
            mutated = bytearray(wire)
            mode = rng.randrange(3)
            if mode == 0:
                mutated = mutated[: rng.randrange(1, len(mutated))]
            elif mode == 1:
                mutated[rng.randrange(len(mutated))] ^= 0xFF
            else:
                mutated += b"\x00" * rng.randrange(1, 9)
            wires.append(mutated)
        inbox, stats = self._scenario(wires)
        assert len(inbox) >= 1
        assert inbox[0][1][0].event.payload == "survivor"
        rejected = stats.dropped_malformed + stats.dropped_bad_version
        assert len(inbox) + rejected == len(wires)
        assert stats.dropped_malformed > 0

    def test_flipped_version_counts_bad_version_over_udp(self):
        wire = bytearray(_plain_wire())
        wire[2] = 7
        inbox, stats = self._scenario([wire])
        assert inbox == []
        assert stats.dropped_bad_version == 1
        assert stats.dropped_malformed == 0

    def test_mangled_signed_ball_is_rejected_per_cause(self):
        """A signed ball (kind 7) with a flipped MAC byte decodes fine
        but fails admission — counted as a signature rejection, not as
        line noise."""
        authenticator = HmacAuthenticator(KeyRing("zero-copy-test"))
        guard = BallGuard(authenticator)
        # The sealer only signs events it originated: source must be 2.
        ball = make_ball(
            [BallEntry(Event(id=(2, 0), ts=1, source_id=2, payload="sealed"), 0)]
        )
        guard.seal(2, ball)
        signed = guard.attach(ball)
        wire = bytearray(codec.encode(2, signed))
        mac = signed.signatures[0].mac
        offset = bytes(wire).find(mac)
        assert offset > 0, "MAC not found in wire"
        wire[offset] ^= 0x01
        inbox, stats = self._scenario([wire], authenticator=authenticator)
        assert stats.dropped_bad_signature >= 1
        assert stats.dropped_malformed == 0

    def test_no_memoryview_escapes_past_handler_return(self):
        """End to end over the batched path: deliver a real ball, then
        scribble every receive buffer the raw endpoint owns — the
        delivered message must be untouched, and nothing reachable
        from it may be a memoryview or bytearray."""

        async def go():
            network = UdpNetwork(seed=3)
            inbox = []
            network.register(1, lambda src, msg: inbox.append((src, msg)))
            network.register(2, lambda src, msg: None)
            await network.open_all()
            raw = network._transports[1]  # noqa: SLF001 - test rig
            assert getattr(raw, "is_raw", False), "batched path not active"
            network.send(2, 1, a_ball("fragile"))
            await asyncio.sleep(0.05)
            for buf in raw._receiver._buffers:  # noqa: SLF001 - test rig
                buf[:] = bytes(len(buf))
            await network.close()
            return inbox

        inbox = run(go())
        assert len(inbox) == 1
        src, message = inbox[0]
        assert src == 2
        assert message[0].event.payload == "fragile"
        for obj in _walk(message):
            assert not isinstance(obj, (memoryview, bytearray))
