"""Wire-hostility tests for the lazy-push codec (kinds 9-11, version 4).

Mirrors ``test_codec_topic.py`` for the lazy-push subsystem's framing:
id-balls, payload pull requests and payload responses face the same
open internet as every other kind, so truncated, wrong-version,
bit-flipped and oversized datagrams must all be rejected with
:class:`~repro.runtime.codec.CodecError` (or its
:class:`~repro.runtime.codec.CodecVersionError` subclass) — no other
exception may ever escape ``decode``.
"""

from __future__ import annotations

import random

import pytest

from repro.core.event import Event
from repro.lazy.protocol import IdBall, PayloadRequest, PayloadResponse
from repro.runtime import codec
from repro.runtime.codec import CodecError, CodecVersionError, TopicEnvelope


def _event(src=1, seq=0, ts=10, payload=None):
    return Event(
        id=(src, seq),
        ts=ts,
        source_id=src,
        payload={"v": seq} if payload is None else payload,
    )


def _id_ball(entries=3):
    return IdBall(
        entries=tuple((10 + i, 1 + i, i, 2 + i) for i in range(entries))
    )


def _request(ids=3):
    return PayloadRequest(
        req_id=0xCAFE, ids=tuple((1 + i, i) for i in range(ids))
    )


def _response(events=3, missing=2):
    return PayloadResponse(
        req_id=0xCAFE,
        events=tuple(_event(src=2 + i, seq=i, ts=20 + i) for i in range(events)),
        missing=tuple((90 + i, i) for i in range(missing)),
    )


_BUILDERS = [_id_ball, _request, _response]
_IDS = ["id_ball-kind9", "request-kind10", "response-kind11"]


class TestRoundTrip:
    @pytest.mark.parametrize("build", _BUILDERS, ids=_IDS)
    def test_lazy_messages_round_trip(self, build):
        message = build()
        sender, decoded = codec.decode(codec.encode(42, message))
        assert sender == 42
        assert decoded == message

    def test_lazy_kinds_use_version_4(self):
        for build in _BUILDERS:
            assert codec.encode(1, build())[2] == 4

    def test_empty_messages_round_trip(self):
        for message in (
            IdBall(entries=()),
            PayloadRequest(req_id=0, ids=()),
            PayloadResponse(req_id=0, events=(), missing=()),
        ):
            _, decoded = codec.decode(codec.encode(5, message))
            assert decoded == message

    def test_missing_only_response_round_trips(self):
        message = PayloadResponse(
            req_id=7, events=(), missing=((1, 0), (2, 5))
        )
        _, decoded = codec.decode(codec.encode(1, message))
        assert decoded == message

    @pytest.mark.parametrize("build", _BUILDERS, ids=_IDS)
    def test_lazy_kinds_round_trip_inside_envelopes(self, build):
        message = build()
        envelope = TopicEnvelope(frames=((17, 3, message),))
        _, decoded = codec.decode(codec.encode(9, envelope))
        assert decoded == envelope

    def test_payload_accounting_splits_response_bytes(self):
        codec.encode(1, _id_ball())
        assert codec.last_encode_payload_bytes() == 0
        codec.encode(1, _response())
        assert codec.last_encode_payload_bytes() > 0


class TestEncodeRejections:
    def test_non_json_payload_rejected(self):
        bad = PayloadResponse(
            req_id=1, events=(_event(payload=object()),), missing=()
        )
        with pytest.raises(CodecError, match="JSON"):
            codec.encode(1, bad)

    def test_oversized_response_rejected(self):
        big = PayloadResponse(
            req_id=1,
            events=tuple(
                _event(src=1, seq=i, payload="x" * 4000) for i in range(20)
            ),
            missing=(),
        )
        with pytest.raises(CodecError, match="datagram cap"):
            codec.encode(1, big)


class TestVersionGate:
    @pytest.mark.parametrize("build", _BUILDERS, ids=_IDS)
    def test_unknown_version_raises_version_error(self, build):
        wire = bytearray(codec.encode(1, build()))
        wire[2] = 5
        with pytest.raises(CodecVersionError):
            codec.decode(bytes(wire))

    @pytest.mark.parametrize("build", _BUILDERS, ids=_IDS)
    @pytest.mark.parametrize("version", [1, 2, 3])
    def test_lazy_kinds_under_old_versions_rejected(self, build, version):
        # A well-framed v1/v2/v3 header must never smuggle in a lazy
        # kind — and the rejection is a plain CodecError, not the
        # version-negotiation signal.
        wire = bytearray(codec.encode(1, build()))
        wire[2] = version
        with pytest.raises(CodecError) as err:
            codec.decode(bytes(wire))
        assert not isinstance(err.value, CodecVersionError)


class TestHostileBytes:
    @pytest.mark.parametrize("build", _BUILDERS, ids=_IDS)
    def test_every_truncation_rejected_cleanly(self, build):
        wire = codec.encode(7, build())
        for cut in range(len(wire)):
            with pytest.raises(CodecError):
                codec.decode(wire[:cut])

    @pytest.mark.parametrize("build", _BUILDERS, ids=_IDS)
    def test_trailing_garbage_rejected(self, build):
        wire = codec.encode(7, build())
        with pytest.raises(CodecError):
            codec.decode(wire + b"\x00")
        with pytest.raises(CodecError):
            codec.decode(wire + wire)

    @pytest.mark.parametrize("build", _BUILDERS, ids=_IDS)
    def test_oversized_count_rejected(self, build):
        # Claim far more entries than the datagram carries.
        wire = bytearray(codec.encode(7, build()))
        wire[12:16] = (2**31).to_bytes(4, "big")
        with pytest.raises(CodecError):
            codec.decode(bytes(wire))

    def test_negative_ttl_rejected(self):
        wire = bytearray(codec.encode(1, IdBall(entries=((10, 1, 0, 0),))))
        # Header is 16 bytes; the id-entry layout is
        # ts(8) source(8) seq(8) ttl(4) — patch the ttl to -1.
        ttl_offset = 16 + 24
        assert wire[ttl_offset : ttl_offset + 4] == (0).to_bytes(4, "big")
        wire[ttl_offset : ttl_offset + 4] = (-1).to_bytes(4, "big", signed=True)
        with pytest.raises(CodecError):
            codec.decode(bytes(wire))

    @pytest.mark.parametrize("build", _BUILDERS, ids=_IDS)
    def test_bit_flip_fuzz_never_escapes_codec_error(self, build):
        wire = codec.encode(7, build())
        rng = random.Random(0xC0DEC)
        outcomes = {"ok": 0, "rejected": 0}
        for _ in range(400):
            mutated = bytearray(wire)
            for _ in range(rng.randint(1, 4)):
                position = rng.randrange(len(mutated))
                mutated[position] ^= 1 << rng.randrange(8)
            try:
                codec.decode(bytes(mutated))
            except CodecError:
                outcomes["rejected"] += 1
            else:
                # Flips confined to payload bytes, ids or the sender
                # can decode; routing rejects them later. Only
                # CodecError may escape here.
                outcomes["ok"] += 1
        assert outcomes["rejected"] > 0


class TestFramedDifferential:
    """Differential fuzz: envelope framing must not change what lazy
    messages mean, mirroring ``TestV2V3Differential`` for kinds 9-11."""

    @staticmethod
    def _random_message(rng):
        kind = rng.randrange(3)
        if kind == 0:
            return IdBall(
                entries=tuple(
                    (
                        rng.randrange(2**40),
                        rng.randrange(2**20),
                        rng.randrange(2**16),
                        rng.randrange(0, 64),
                    )
                    for _ in range(rng.randrange(0, 9))
                )
            )
        if kind == 1:
            return PayloadRequest(
                req_id=rng.randrange(2**32),
                ids=tuple(
                    (rng.randrange(2**20), rng.randrange(2**16))
                    for _ in range(rng.randrange(0, 9))
                ),
            )
        events = tuple(
            Event(
                id=(src := rng.randrange(2**20), seq := rng.randrange(2**16)),
                ts=rng.randrange(2**40),
                source_id=src,
                payload="v" * rng.randrange(0, 30),
            )
            for _ in range(rng.randrange(0, 5))
        )
        return PayloadResponse(
            req_id=rng.randrange(2**32),
            events=events,
            missing=tuple(
                (rng.randrange(2**20), rng.randrange(2**16))
                for _ in range(rng.randrange(0, 4))
            ),
        )

    def test_random_messages_identical_standalone_and_framed(self):
        rng = random.Random(0x1A27)
        for _ in range(200):
            message = self._random_message(rng)
            sender = rng.randrange(2**20)
            topic = rng.randrange(2**32)
            standalone = codec.decode(codec.encode(sender, message))
            _, envelope = codec.decode(
                codec.encode(
                    99, TopicEnvelope(frames=((topic, sender, message),))
                )
            )
            assert envelope.frames == ((topic,) + standalone,)

    def test_downstamped_lazy_wires_always_rejected(self):
        rng = random.Random(0x1A28)
        for _ in range(100):
            message = self._random_message(rng)
            wire = bytearray(codec.encode(1, message))
            wire[2] = rng.choice([1, 2, 3])
            with pytest.raises(CodecError):
                codec.decode(bytes(wire))
