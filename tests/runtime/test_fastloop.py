"""Optional uvloop integration (repro.runtime.fastloop).

uvloop is not installed in CI, so these tests exercise both halves of
the gate: the graceful no-op when the package is absent, and the
policy installation against a stub module injected into sys.modules.
"""

from __future__ import annotations

import asyncio
import sys
import types

import pytest

from repro.runtime import fastloop
from repro.runtime.cluster import AsyncCluster
from repro.runtime.udp import UdpNetwork


class _StubPolicy(asyncio.DefaultEventLoopPolicy):
    """Stands in for uvloop.EventLoopPolicy — still makes real loops."""


@pytest.fixture
def stub_uvloop(monkeypatch):
    module = types.ModuleType("uvloop")
    module.EventLoopPolicy = _StubPolicy
    monkeypatch.setitem(sys.modules, "uvloop", module)
    monkeypatch.delenv(fastloop.ENV_DISABLE, raising=False)
    original = asyncio.get_event_loop_policy()
    yield module
    asyncio.set_event_loop_policy(original)


@pytest.fixture
def no_uvloop(monkeypatch):
    monkeypatch.setitem(sys.modules, "uvloop", None)
    monkeypatch.delenv(fastloop.ENV_DISABLE, raising=False)


class TestWithoutUvloop:
    def test_unavailable_is_a_clean_no(self, no_uvloop):
        assert not fastloop.uvloop_available()
        assert not fastloop.ensure_uvloop()

    def test_run_still_works(self, no_uvloop):
        async def answer():
            return 42

        assert fastloop.run(answer()) == 42

    def test_constructors_never_require_uvloop(self, no_uvloop):
        from repro.core import EpToConfig

        UdpNetwork()
        AsyncCluster(EpToConfig(fanout=2, ttl=3, round_interval=20))


class TestWithStubUvloop:
    def test_ensure_installs_the_policy(self, stub_uvloop):
        assert fastloop.uvloop_available()
        assert fastloop.ensure_uvloop()
        assert isinstance(asyncio.get_event_loop_policy(), _StubPolicy)

    def test_ensure_is_idempotent(self, stub_uvloop):
        assert fastloop.ensure_uvloop()
        installed = asyncio.get_event_loop_policy()
        assert fastloop.ensure_uvloop()
        assert asyncio.get_event_loop_policy() is installed

    def test_env_var_opts_out(self, stub_uvloop, monkeypatch):
        monkeypatch.setenv(fastloop.ENV_DISABLE, "1")
        assert not fastloop.uvloop_available()
        assert not fastloop.ensure_uvloop()
        assert not isinstance(asyncio.get_event_loop_policy(), _StubPolicy)

    def test_no_policy_swap_while_a_loop_is_running(self, stub_uvloop):
        """Mid-run installation would be a silent lie — ensure_uvloop
        must only report on the loop that is actually running."""

        async def probe():
            return fastloop.ensure_uvloop()

        before = asyncio.get_event_loop_policy()
        active = asyncio.run(probe())
        assert not active  # the stdlib loop was running, not uvloop's
        assert asyncio.get_event_loop_policy() is before

    def test_network_constructor_auto_selects(self, stub_uvloop):
        UdpNetwork()
        assert isinstance(asyncio.get_event_loop_policy(), _StubPolicy)

    def test_cluster_constructor_auto_selects(self, stub_uvloop):
        from repro.core import EpToConfig

        AsyncCluster(EpToConfig(fanout=2, ttl=3, round_interval=20))
        assert isinstance(asyncio.get_event_loop_policy(), _StubPolicy)

    def test_run_executes_under_the_installed_policy(self, stub_uvloop):
        async def loop_module():
            return type(asyncio.get_running_loop()).__module__

        assert fastloop.run(loop_module()).startswith("asyncio")
        assert isinstance(asyncio.get_event_loop_policy(), _StubPolicy)
