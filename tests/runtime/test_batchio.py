"""Tests for the batched-datagram syscall layer (repro.runtime.batchio).

The fallback cascade must behave identically at every tier — same
datagrams on the wire, same drop semantics — with only the syscall
counters allowed to differ. These tests run every tier the platform
supports against real loopback sockets.
"""

from __future__ import annotations

import socket

import pytest

from repro.runtime import batchio
from repro.runtime.batchio import (
    RECV_TIERS,
    SEND_TIERS,
    BatchReceiver,
    BatchSender,
    best_recv_tier,
    best_send_tier,
    select_recv_tier,
    select_send_tier,
)


def _supported_send_tiers():
    tiers = []
    for tier in SEND_TIERS:
        try:
            select_send_tier(tier)
        except ValueError:
            continue
        tiers.append(tier)
    return tiers


def _supported_recv_tiers():
    tiers = []
    for tier in RECV_TIERS:
        try:
            select_recv_tier(tier)
        except ValueError:
            continue
        tiers.append(tier)
    return tiers


def _pair():
    rx = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    rx.bind(("127.0.0.1", 0))
    rx.setblocking(False)
    tx = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    tx.bind(("127.0.0.1", 0))
    tx.setblocking(False)
    return tx, rx, rx.getsockname()


def _drain(rx, expect: int, timeout: float = 1.0):
    import time

    rx.setblocking(False)
    out = []
    deadline = time.monotonic() + timeout
    while len(out) < expect and time.monotonic() < deadline:
        try:
            out.append(rx.recvfrom(65535)[0])
        except BlockingIOError:
            time.sleep(0.001)
    return out


class TestTierSelection:
    def test_best_tiers_are_known(self):
        assert best_send_tier() in SEND_TIERS
        assert best_recv_tier() in RECV_TIERS

    def test_unknown_tier_rejected(self):
        with pytest.raises(ValueError):
            select_send_tier("carrier-pigeon")
        with pytest.raises(ValueError):
            select_recv_tier("carrier-pigeon")

    def test_forcing_the_floor_is_always_allowed(self):
        assert select_send_tier("sendto") == "sendto"
        assert select_recv_tier("recv_into") == "recv_into"

    def test_forcing_unavailable_tier_raises(self, monkeypatch):
        monkeypatch.setattr(batchio, "HAS_SENDMMSG", False)
        monkeypatch.setattr(batchio, "HAS_RECVMMSG", False)
        with pytest.raises(ValueError):
            select_send_tier("sendmmsg")
        with pytest.raises(ValueError):
            select_recv_tier("recvmmsg")
        # ...and the best tier degrades instead of failing.
        assert select_send_tier() in ("sendmsg", "sendto")
        assert select_recv_tier() == "recv_into"


class TestBatchSender:
    @pytest.mark.parametrize("tier", _supported_send_tiers())
    def test_batch_round_trip_every_tier(self, tier):
        tx, rx, addr = _pair()
        try:
            sender = BatchSender(tier)
            payloads = [b"alpha", b"bravo", b"charlie", b"delta"]
            done = sender.send_batch(tx, [(p, addr) for p in payloads])
            assert done == 4
            assert sender.sent == 4
            assert sender.rejected == 0
            assert _drain(rx, 4) == payloads
        finally:
            tx.close()
            rx.close()

    @pytest.mark.skipif(not batchio.HAS_SENDMMSG, reason="no sendmmsg")
    def test_sendmmsg_fanout_is_one_syscall(self):
        tx, rx, addr = _pair()
        try:
            sender = BatchSender("sendmmsg")
            pool = bytearray(b"the-ball")
            done = sender.send_batch(tx, [(pool, addr)] * 12)
            assert done == 12
            assert sender.syscalls == 1
            assert _drain(rx, 12) == [b"the-ball"] * 12
        finally:
            tx.close()
            rx.close()

    @pytest.mark.skipif(not batchio.HAS_SENDMMSG, reason="no sendmmsg")
    def test_sendmmsg_grows_past_initial_capacity(self):
        tx, rx, addr = _pair()
        try:
            sender = BatchSender("sendmmsg")
            n = BatchSender._INITIAL_CAPACITY * 2 + 3
            payloads = [b"m%d" % i for i in range(n)]
            done = sender.send_batch(tx, [(p, addr) for p in payloads])
            assert done == n
            assert _drain(rx, n) == payloads
        finally:
            tx.close()
            rx.close()

    def test_fallback_tiers_cost_one_syscall_per_datagram(self):
        tx, rx, addr = _pair()
        try:
            sender = BatchSender("sendto")
            sender.send_batch(tx, [(b"x", addr), (b"y", addr)])
            assert sender.syscalls == 2
        finally:
            tx.close()
            rx.close()

    @pytest.mark.skipif(not batchio.HAS_SENDMMSG, reason="no sendmmsg")
    def test_writable_buffer_is_not_copied(self):
        """The sendmmsg tier points straight into a bytearray — the
        bytes on the wire are whatever the buffer held at call time,
        and the buffer is immediately reusable afterwards."""
        tx, rx, addr = _pair()
        try:
            sender = BatchSender("sendmmsg")
            pool = bytearray(b"first")
            sender.send_batch(tx, [(pool, addr)])
            pool[:] = b"secnd"
            sender.send_batch(tx, [(pool, addr)])
            assert _drain(rx, 2) == [b"first", b"secnd"]
        finally:
            tx.close()
            rx.close()

    def test_send_one(self):
        tx, rx, addr = _pair()
        try:
            sender = BatchSender("sendto")
            assert sender.send_one(tx, b"solo", addr)
            assert sender.syscalls == 1
            assert _drain(rx, 1) == [b"solo"]
        finally:
            tx.close()
            rx.close()

    def test_empty_batch_is_free(self):
        tx, rx, addr = _pair()
        try:
            sender = BatchSender()
            assert sender.send_batch(tx, []) == 0
            assert sender.syscalls == 0
        finally:
            tx.close()
            rx.close()


class TestBatchReceiver:
    @pytest.mark.parametrize("tier", _supported_recv_tiers())
    def test_burst_drain_every_tier(self, tier):
        tx, rx, addr = _pair()
        try:
            payloads = [b"p%d" % i for i in range(9)]
            for p in payloads:
                tx.sendto(p, addr)
            import time

            time.sleep(0.02)
            receiver = BatchReceiver(tier)
            got = []
            while True:
                views = receiver.receive(rx)
                if not views:
                    break
                got.extend(bytes(v) for v in views)
            assert got == payloads
            assert receiver.received == 9
        finally:
            tx.close()
            rx.close()

    @pytest.mark.skipif(not batchio.HAS_RECVMMSG, reason="no recvmmsg")
    def test_recvmmsg_burst_is_one_syscall(self):
        tx, rx, addr = _pair()
        try:
            for i in range(7):
                tx.sendto(b"b%d" % i, addr)
            import time

            time.sleep(0.02)
            receiver = BatchReceiver("recvmmsg")
            views = receiver.receive(rx)
            assert len(views) == 7
            assert receiver.syscalls == 1
        finally:
            tx.close()
            rx.close()

    def test_views_are_zero_copy_and_invalidated_by_next_call(self):
        """Views point into the receiver's own buffers: the *next*
        receive may overwrite them, so consumers must materialize."""
        tx, rx, addr = _pair()
        try:
            receiver = BatchReceiver()
            tx.sendto(b"AAAA", addr)
            import time

            time.sleep(0.02)
            (first,) = receiver.receive(rx)
            kept = bytes(first)  # what a correct consumer does
            tx.sendto(b"BBBB", addr)
            time.sleep(0.02)
            (second,) = receiver.receive(rx)
            assert bytes(second) == b"BBBB"
            assert kept == b"AAAA"
            # The stale view now reads the overwritten buffer.
            assert bytes(first) == b"BBBB"
        finally:
            tx.close()
            rx.close()

    def test_empty_socket_returns_nothing(self):
        tx, rx, addr = _pair()
        try:
            receiver = BatchReceiver()
            assert receiver.receive(rx) == []
        finally:
            tx.close()
            rx.close()


class TestCrossTierEquivalence:
    """Satellite: every (send tier, recv tier) pair moves identical
    bytes with identical drop semantics; only syscall counts differ."""

    @pytest.mark.parametrize("send_tier", _supported_send_tiers())
    @pytest.mark.parametrize("recv_tier", _supported_recv_tiers())
    def test_matrix_moves_identical_bytes(self, send_tier, recv_tier):
        tx, rx, addr = _pair()
        try:
            sender = BatchSender(send_tier)
            receiver = BatchReceiver(recv_tier)
            payloads = [bytes([65 + i]) * (i + 1) for i in range(10)]
            assert sender.send_batch(tx, [(p, addr) for p in payloads]) == 10
            import time

            time.sleep(0.02)
            got = []
            while True:
                views = receiver.receive(rx)
                if not views:
                    break
                got.extend(bytes(v) for v in views)
            assert got == payloads
        finally:
            tx.close()
            rx.close()
