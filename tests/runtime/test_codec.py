"""Tests for the wire codec (repro.runtime.codec)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.event import BallEntry, Event, make_ball
from repro.pss.cyclon import CyclonRequest, CyclonResponse
from repro.runtime.codec import MAX_DATAGRAM, CodecError, decode, encode


def ball_of(*entries):
    return make_ball(entries)


def entry(src=0, seq=0, ts=0, ttl=0, payload=None):
    return BallEntry(Event(id=(src, seq), ts=ts, source_id=src, payload=payload),
                     ttl=ttl)


class TestBallRoundtrip:
    def test_empty_ball(self):
        sender, message = decode(encode(7, ball_of()))
        assert sender == 7
        assert message == ()

    def test_single_entry(self):
        ball = ball_of(entry(src=3, seq=2, ts=99, ttl=4, payload={"k": [1, 2]}))
        sender, decoded = decode(encode(3, ball))
        assert sender == 3
        assert decoded == ball

    def test_multiple_entries_preserve_order(self):
        ball = ball_of(
            entry(src=1, payload="a"),
            entry(src=2, payload="b"),
            entry(src=3, payload=None),
        )
        _, decoded = decode(encode(0, ball))
        assert [e.event.payload for e in decoded] == ["a", "b", None]

    def test_negative_timestamps_and_large_ids(self):
        ball = ball_of(entry(src=2**40, seq=2**33, ts=-5, ttl=0))
        _, decoded = decode(encode(2**40, ball))
        assert decoded[0].event.id == (2**40, 2**33)
        assert decoded[0].event.ts == -5

    def test_unicode_payload(self):
        ball = ball_of(entry(payload="héllo ✓ 漢字"))
        _, decoded = decode(encode(0, ball))
        assert decoded[0].event.payload == "héllo ✓ 漢字"

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=50),  # src
                st.integers(min_value=0, max_value=50),  # seq
                st.integers(min_value=0, max_value=10**6),  # ts
                st.integers(min_value=0, max_value=100),  # ttl
                st.one_of(
                    st.none(),
                    st.integers(),
                    st.text(max_size=20),
                    st.lists(st.integers(), max_size=5),
                    st.dictionaries(st.text(max_size=5), st.integers(), max_size=4),
                ),
            ),
            max_size=20,
        )
    )
    def test_roundtrip_property(self, raw_entries):
        ball = ball_of(
            *(entry(src=s, seq=q, ts=t, ttl=l, payload=p)
              for s, q, t, l, p in raw_entries)
        )
        sender, decoded = decode(encode(42, ball))
        assert sender == 42
        assert decoded == ball


class TestCyclonRoundtrip:
    def test_request(self):
        message = CyclonRequest(entries=((1, 0), (2, 5), (99, 3)))
        sender, decoded = decode(encode(1, message))
        assert sender == 1
        assert decoded == message

    def test_response(self):
        message = CyclonResponse(entries=())
        _, decoded = decode(encode(2, message))
        assert decoded == message


class TestRejections:
    def test_non_json_payload_rejected(self):
        ball = ball_of(entry(payload=object()))
        with pytest.raises(CodecError):
            encode(0, ball)

    def test_unknown_message_type_rejected(self):
        with pytest.raises(CodecError):
            encode(0, {"not": "a message"})  # type: ignore[arg-type]

    def test_oversized_message_rejected(self):
        huge = ball_of(entry(payload="x" * (MAX_DATAGRAM + 1)))
        with pytest.raises(CodecError):
            encode(0, huge)

    def test_oversized_ball_names_the_offending_entry(self):
        """Encoding stops at the first entry crossing the cap, and the
        error reports how far it got — not just that the total is big."""
        chunk = "y" * 9_000
        entries = [
            entry(src=1, seq=i, payload=chunk) for i in range(8)
        ]
        with pytest.raises(CodecError) as excinfo:
            encode(0, make_ball(entries))
        message = str(excinfo.value)
        # 6 entries of ~9KB fit under 60KB; the 7th crosses the cap.
        assert "ball entry 7 of 8" in message
        assert "event (1, 6)" in message
        assert str(MAX_DATAGRAM) in message

    def test_ball_just_under_the_cap_still_encodes(self):
        chunk = "y" * 9_000
        entries = [entry(src=1, seq=i, payload=chunk) for i in range(6)]
        sender, decoded = decode(encode(0, make_ball(entries)))
        assert sender == 0
        assert len(decoded) == 6

    @pytest.mark.parametrize(
        "datagram",
        [
            b"",
            b"EP",
            b"XX" + b"\x00" * 20,  # bad magic
            b"EP\x63\x01" + b"\x00" * 12,  # bad version
            b"EP\x01\x63" + b"\x00" * 12,  # bad kind
        ],
    )
    def test_malformed_datagrams_rejected(self, datagram):
        with pytest.raises(CodecError):
            decode(datagram)

    def test_truncated_ball_rejected(self):
        good = encode(0, ball_of(entry(payload="hello")))
        with pytest.raises(CodecError):
            decode(good[:-3])

    def test_trailing_garbage_rejected(self):
        good = encode(0, ball_of(entry()))
        with pytest.raises(CodecError):
            decode(good + b"junk")

    def test_corrupt_payload_bytes_rejected(self):
        good = bytearray(encode(0, ball_of(entry(payload="abcdef"))))
        good[-3] = 0xFF  # break the UTF-8/JSON payload
        with pytest.raises(CodecError):
            decode(bytes(good))

    @given(st.binary(max_size=200))
    def test_random_bytes_never_crash(self, blob):
        """Fuzz: arbitrary bytes either decode or raise CodecError —
        never any other exception (untrusted-input hardening)."""
        try:
            decode(blob)
        except CodecError:
            pass
