"""Tests for the declarative fault schedule (repro.faults.schedule)."""

from __future__ import annotations

import pytest

from repro.core.errors import FaultInjectionError
from repro.faults import (
    CorruptDatagrams,
    CrashNodes,
    FaultSchedule,
    HealPartition,
    LatencySpike,
    LossBurst,
    PartitionNetwork,
)


class TestActionValidation:
    def test_crash_needs_exactly_one_target_spec(self):
        with pytest.raises(FaultInjectionError):
            CrashNodes(at_round=1.0)
        with pytest.raises(FaultInjectionError):
            CrashNodes(at_round=1.0, fraction=0.2, nodes=(1, 2))

    def test_crash_fraction_bounds(self):
        with pytest.raises(FaultInjectionError):
            CrashNodes(at_round=1.0, fraction=0.0)
        with pytest.raises(FaultInjectionError):
            CrashNodes(at_round=1.0, fraction=1.5)
        assert CrashNodes(at_round=1.0, fraction=1.0).fraction == 1.0

    def test_crash_nodes_normalized_to_tuple(self):
        action = CrashNodes(at_round=0.0, nodes=[3, 1])
        assert action.nodes == (3, 1)
        with pytest.raises(FaultInjectionError):
            CrashNodes(at_round=0.0, nodes=())

    def test_negative_round_rejected(self):
        with pytest.raises(FaultInjectionError):
            HealPartition(at_round=-1.0)

    def test_recover_and_heal_delays_positive(self):
        with pytest.raises(FaultInjectionError):
            CrashNodes(at_round=0.0, fraction=0.5, recover_after=0)
        with pytest.raises(FaultInjectionError):
            PartitionNetwork(at_round=0.0, heal_after=-2)

    def test_partition_fraction_open_interval(self):
        with pytest.raises(FaultInjectionError):
            PartitionNetwork(at_round=0.0, fraction=1.0)
        with pytest.raises(FaultInjectionError):
            PartitionNetwork(at_round=0.0, fraction=None, groups=None)

    def test_partition_groups_override_fraction(self):
        action = PartitionNetwork(at_round=0.0, groups={1: "a", 2: "b"})
        assert action.fraction is None

    def test_loss_burst_bounds(self):
        with pytest.raises(FaultInjectionError):
            LossBurst(at_round=0.0, rate=0.0, duration=1.0)
        with pytest.raises(FaultInjectionError):
            LossBurst(at_round=0.0, rate=0.5, duration=0.0)

    def test_latency_spike_needs_factor_above_one(self):
        with pytest.raises(FaultInjectionError):
            LatencySpike(at_round=0.0, factor=1.0, duration=1.0)

    def test_corrupt_bounds(self):
        with pytest.raises(FaultInjectionError):
            CorruptDatagrams(at_round=0.0, rate=2.0, duration=1.0)


class TestSchedule:
    def test_actions_sorted_by_round(self):
        schedule = FaultSchedule(
            [
                LossBurst(at_round=9.0, rate=0.5, duration=1.0),
                CrashNodes(at_round=2.0, fraction=0.5),
                HealPartition(at_round=5.0),
            ]
        )
        assert [a.at_round for a in schedule] == [2.0, 5.0, 9.0]
        assert len(schedule) == 3

    def test_non_action_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultSchedule(["crash at dawn"])

    def test_horizon_includes_tails(self):
        schedule = FaultSchedule(
            [
                CrashNodes(at_round=4.0, fraction=0.2, recover_after=12.0),
                PartitionNetwork(at_round=8.0, heal_after=6.0),
                LossBurst(at_round=3.0, rate=0.5, duration=2.0),
            ]
        )
        assert schedule.horizon_rounds == 16.0

    def test_standard_drill_shape(self):
        drill = FaultSchedule.standard_drill()
        kinds = [a.kind for a in drill]
        assert kinds == ["crash", "partition", "loss_burst"]
        crash = drill.actions[0]
        assert crash.fraction == 0.2
        assert crash.recover_after is not None


class TestSerialization:
    def drill(self):
        return FaultSchedule(
            [
                CrashNodes(at_round=1.0, nodes=(0, 3), recover_after=4.0),
                PartitionNetwork(at_round=2.0, fraction=0.25, heal_after=3.0),
                LatencySpike(at_round=5.0, factor=3.0, duration=2.0),
                CorruptDatagrams(at_round=6.0, rate=0.4, duration=1.0),
            ]
        )

    def test_dict_roundtrip(self):
        original = self.drill()
        restored = FaultSchedule.from_dict(original.to_dict())
        assert restored.to_dict() == original.to_dict()
        assert restored.actions == original.actions

    def test_json_roundtrip(self):
        original = self.drill()
        restored = FaultSchedule.from_json(original.to_json())
        assert restored.actions == original.actions

    def test_none_fields_omitted(self):
        data = FaultSchedule([CrashNodes(at_round=1.0, fraction=0.5)]).to_dict()
        assert data["actions"] == [
            {"kind": "crash", "at_round": 1.0, "fraction": 0.5}
        ]

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultSchedule.from_dict(
                {"actions": [{"kind": "meteor_strike", "at_round": 1.0}]}
            )

    def test_unknown_field_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultSchedule.from_dict(
                {"actions": [{"kind": "heal", "at_round": 1.0, "blast": 9}]}
            )

    def test_missing_required_field_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultSchedule.from_dict({"actions": [{"kind": "heal"}]})

    def test_out_of_range_value_rejected_on_parse(self):
        with pytest.raises(FaultInjectionError):
            FaultSchedule.from_dict(
                {
                    "actions": [
                        {"kind": "loss_burst", "at_round": 1.0, "rate": 7, "duration": 1}
                    ]
                }
            )

    def test_bad_json_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultSchedule.from_json("{not json")

    def test_actions_must_be_list(self):
        with pytest.raises(FaultInjectionError):
            FaultSchedule.from_dict({"actions": "all of them"})
