"""Tests for the hostile schedule actions (ByzantineNodes, ScrambleState)
and the indexed ``from_dict`` error messages."""

from __future__ import annotations

import pytest

from repro.core.errors import FaultInjectionError
from repro.faults import (
    BYZANTINE_BEHAVIORS,
    ByzantineNodes,
    FaultSchedule,
    ScrambleState,
)


class TestByzantineValidation:
    def test_all_documented_behaviors_accepted(self):
        for behavior in BYZANTINE_BEHAVIORS:
            ByzantineNodes(at_round=1.0, behavior=behavior, nodes=(1,))

    def test_unknown_behavior_rejected(self):
        with pytest.raises(FaultInjectionError):
            ByzantineNodes(at_round=1.0, behavior="bribe", nodes=(1,))

    def test_empty_nodes_rejected(self):
        with pytest.raises(FaultInjectionError):
            ByzantineNodes(at_round=1.0, behavior="equivocate")

    def test_rate_bounds(self):
        with pytest.raises(FaultInjectionError):
            ByzantineNodes(at_round=1.0, behavior="replay", nodes=(1,), rate=0.0)
        with pytest.raises(FaultInjectionError):
            ByzantineNodes(at_round=1.0, behavior="replay", nodes=(1,), rate=1.5)

    def test_duration_must_be_positive(self):
        with pytest.raises(FaultInjectionError):
            ByzantineNodes(
                at_round=1.0, behavior="replay", nodes=(1,), duration=0.0
            )


class TestScrambleValidation:
    def test_empty_nodes_rejected(self):
        with pytest.raises(FaultInjectionError):
            ScrambleState(at_round=1.0)

    def test_recover_after_must_be_positive(self):
        with pytest.raises(FaultInjectionError):
            ScrambleState(at_round=1.0, nodes=(1,), recover_after=0.0)

    def test_negative_garbage_rejected(self):
        with pytest.raises(FaultInjectionError):
            ScrambleState(at_round=1.0, nodes=(1,), garbage_events=-1)


class TestHorizon:
    def test_byzantine_duration_extends_horizon(self):
        schedule = FaultSchedule(
            [ByzantineNodes(at_round=3.0, behavior="replay", nodes=(1,), duration=10.0)]
        )
        assert schedule.horizon_rounds == 13.0

    def test_scramble_recovery_extends_horizon(self):
        schedule = FaultSchedule(
            [ScrambleState(at_round=6.0, nodes=(1,), recover_after=8.0)]
        )
        assert schedule.horizon_rounds == 14.0


class TestJsonRoundTrip:
    def test_byzantine_drill_round_trips(self):
        schedule = FaultSchedule.byzantine_drill()
        rebuilt = FaultSchedule.from_json(schedule.to_json())
        assert rebuilt.actions == schedule.actions

    def test_self_stab_round_trips(self):
        schedule = FaultSchedule.self_stab()
        rebuilt = FaultSchedule.from_json(schedule.to_json())
        assert rebuilt.actions == schedule.actions

    def test_shipped_scenarios_parse(self):
        from pathlib import Path

        root = Path(__file__).resolve().parents[2] / "scenarios"
        for name in ("byzantine_drill.json", "self_stab.json"):
            schedule = FaultSchedule.from_json(
                (root / name).read_text(encoding="utf-8")
            )
            assert len(schedule) >= 1


class TestIndexedErrorMessages:
    """Satellite: every from_dict failure names the action index + kind."""

    def test_unknown_kind_names_index(self):
        with pytest.raises(FaultInjectionError, match=r"action #1.*sabotage"):
            FaultSchedule.from_dict(
                {
                    "actions": [
                        {"kind": "crash", "at_round": 1.0, "nodes": [1]},
                        {"kind": "sabotage", "at_round": 2.0},
                    ]
                }
            )

    def test_unknown_field_names_index_and_kind(self):
        with pytest.raises(
            FaultInjectionError, match=r"action #0 \('byzantine'\)"
        ):
            FaultSchedule.from_dict(
                {
                    "actions": [
                        {
                            "kind": "byzantine",
                            "at_round": 1.0,
                            "behavior": "replay",
                            "nodes": [1],
                            "sneakiness": 9,
                        }
                    ]
                }
            )

    def test_validation_error_names_index_and_kind(self):
        with pytest.raises(
            FaultInjectionError, match=r"action #2 \('byzantine'\)"
        ):
            FaultSchedule.from_dict(
                {
                    "actions": [
                        {"kind": "crash", "at_round": 1.0, "nodes": [1]},
                        {"kind": "heal", "at_round": 2.0},
                        {
                            "kind": "byzantine",
                            "at_round": 3.0,
                            "behavior": "equivocate",
                            "nodes": [],
                        },
                    ]
                }
            )

    def test_type_error_names_index_and_kind(self):
        # A missing required argument surfaces as a TypeError inside the
        # dataclass constructor; the wrapper still points at the entry.
        with pytest.raises(
            FaultInjectionError, match=r"action #0 \('scramble'\)"
        ):
            FaultSchedule.from_dict(
                {"actions": [{"kind": "scramble", "nodes": [1]}]}
            )
