"""Tests for the asyncio fault-schedule interpreter.

Runs the *same* ``standard_drill`` scenario as
``test_sim_injector.py``, but against a live
:class:`~repro.runtime.cluster.AsyncCluster` on real wall-clock timers
— the cross-runtime portability the fault layer exists for.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core import EpToConfig
from repro.core.errors import FaultInjectionError
from repro.faults import (
    AsyncFaultInjector,
    ByzantineNodes,
    CorruptDatagrams,
    CrashNodes,
    FaultSchedule,
    LatencySpike,
    PartitionNetwork,
    check_survivors,
)
from repro.runtime import AsyncCluster


def run(coro):
    return asyncio.run(coro)


def small_config(**overrides):
    defaults = dict(fanout=4, ttl=6, round_interval=15, clock="logical")
    defaults.update(overrides)
    return EpToConfig(**defaults)


class TestStandardDrill:
    def test_shared_scenario_survives_with_total_order(self):
        """Acceptance scenario, asyncio half: the same standard drill
        completes on real timers and ``check_survivors`` passes —
        including the crashed-and-respawned nodes' post-restart
        suffixes."""

        async def scenario():
            cluster = AsyncCluster(small_config(), seed=13)
            cluster.add_nodes(10)
            cluster.start_all()
            injector = AsyncFaultInjector(
                cluster, FaultSchedule.standard_drill(), seed=13
            )
            for node_id in (0, 1, 2):
                cluster.nodes[node_id].broadcast(f"pre-{node_id}")
            await injector.run()  # returns once the last action fired
            # Let the loss burst window (3 rounds) expire, then a
            # post-drill wave from continuous survivors.
            await asyncio.sleep(4 * cluster.config.round_interval / 1000.0)
            survivors = injector.continuous_survivors()
            for node_id in sorted(survivors)[:2]:
                cluster.nodes[node_id].broadcast(f"post-{node_id}")

            def post_wave_reached(nid: int) -> bool:
                # The suffix assertion below needs the respawned nodes
                # to have delivered the whole post-drill wave; without
                # waiting for them, stop_all() can win the race on a
                # loaded machine and truncate their suffixes.
                marks = cluster.restart_indices[nid]
                start = marks[-1] if marks else 0
                payloads = (
                    str(e.payload) for e in cluster.deliveries[nid][start:]
                )
                return (
                    sum(1 for p in payloads if p.startswith("post-")) >= 2
                )

            def done() -> bool:
                return all(
                    len(cluster.deliveries[nid]) >= 5 for nid in survivors
                ) and all(
                    post_wave_reached(nid) for nid in injector.crashed_ids
                )

            ok = await cluster.wait_until(done, timeout=10.0)
            await cluster.stop_all()
            report = check_survivors(
                cluster.deliveries,
                survivors=survivors,
                recovered=injector.crashed_ids,
                restart_indices=cluster.restart_indices,
            )
            return ok, injector, survivors, report, cluster

        ok, injector, survivors, report, cluster = run(scenario())
        assert ok
        assert injector.stats.crashes == 2
        assert injector.stats.recoveries == 2
        assert injector.stats.partitions == 1
        assert injector.stats.heals == 1
        assert injector.stats.loss_bursts == 1
        assert len(survivors) == 8
        assert report.ok, report.summary()
        # The respawned nodes kept their identities and delivered the
        # post-drill wave in the same order as everyone else.
        for node_id in injector.crashed_ids:
            assert cluster.restart_indices[node_id]
            suffix = [
                e.payload
                for e in cluster.deliveries[node_id][
                    cluster.restart_indices[node_id][-1] :
                ]
            ]
            assert [p for p in suffix if str(p).startswith("post-")] == [
                f"post-{nid}" for nid in sorted(survivors)[:2]
            ]

    def test_respawned_node_resumes_its_sequence(self):
        """A recovered node must not reuse ``(source, seq)`` event ids:
        its replacement process resumes the predecessor's counter."""

        async def scenario():
            cluster = AsyncCluster(small_config(), seed=4)
            cluster.add_nodes(5)
            cluster.start_all()
            first = cluster.nodes[0].broadcast("first-life")
            schedule = FaultSchedule(
                [CrashNodes(at_round=2.0, nodes=(0,), recover_after=3.0)]
            )
            injector = AsyncFaultInjector(cluster, schedule, seed=4)
            await injector.run()
            second = cluster.nodes[0].broadcast("second-life")
            ok = await cluster.wait_until(
                lambda: all(
                    len(cluster.deliveries[nid]) >= 2
                    for nid in cluster.live_ids()
                ),
                timeout=10.0,
            )
            await cluster.stop_all()
            return ok, first, second, cluster

        ok, first, second, cluster = run(scenario())
        assert ok
        assert first.id[0] == second.id[0] == 0
        assert second.id[1] > first.id[1]
        # No id collision: both lives' events live side by side in the
        # survivors' journals.
        for node_id in (1, 2, 3, 4):
            ids = [e.id for e in cluster.deliveries[node_id]]
            assert len(ids) == len(set(ids))


class TestByzantineWindow:
    def test_byzantine_action_interpreted_like_the_sim_injector(self):
        """Cross-runtime parity: the asyncio interpreter installs the
        same :class:`ByzantineRouter` on its fabric, scopes it to the
        action window, and restores honesty afterwards."""

        async def scenario():
            cluster = AsyncCluster(small_config(), seed=13)
            cluster.add_nodes(8)
            cluster.start_all()
            schedule = FaultSchedule(
                [
                    ByzantineNodes(
                        at_round=1.0,
                        behavior="equivocate",
                        nodes=(1,),
                        duration=6.0,
                    )
                ]
            )
            injector = AsyncFaultInjector(cluster, schedule, seed=13)
            for node_id in (2, 3, 4):
                cluster.nodes[node_id].broadcast(f"pre-{node_id}")
            await injector.run()
            router = injector._router
            hostile_after = router.is_hostile(1)
            await cluster.stop_all()
            return injector, router, hostile_after

        injector, router, hostile_after = run(scenario())
        assert injector.stats.byzantine_windows == 1
        assert injector.byzantine_ids == {1}
        # The hostile relay really mutated foreign entries mid-window...
        assert router.stats.equivocated > 0
        # ...and the window closed: the node is honest again.
        assert not hostile_after
        assert any("byzantine equivocate on [1]" in msg for _, msg in injector.log)
        assert any("byzantine equivocate off" in msg for _, msg in injector.log)


class TestFabricChecks:
    class _BareFabric:
        """Minimal register/unregister/send fabric with no fault surface."""

        def register(self, node_id, handler):
            pass

        def unregister(self, node_id):
            pass

        def send(self, src, dst, message):
            pass

    def test_unsupported_action_rejected_before_running(self):
        async def scenario():
            cluster = AsyncCluster(small_config(), network=self._BareFabric())
            cluster.add_nodes(3)
            schedule = FaultSchedule([PartitionNetwork(at_round=1.0)])
            injector = AsyncFaultInjector(cluster, schedule)
            with pytest.raises(FaultInjectionError):
                await injector.run()
            assert injector.log == []

        run(scenario())

    def test_corruption_degrades_to_loss_on_codecless_fabric(self):
        """The in-memory fabric has no wire bytes; corruption becomes a
        loss burst with an explicit note in the log."""

        async def scenario():
            cluster = AsyncCluster(small_config(round_interval=10), seed=6)
            cluster.add_nodes(3)
            cluster.start_all()
            schedule = FaultSchedule(
                [CorruptDatagrams(at_round=1.0, rate=0.5, duration=1.0)]
            )
            injector = AsyncFaultInjector(cluster, schedule, seed=6)
            await injector.run()
            await cluster.stop_all()
            return injector

        injector = run(scenario())
        assert injector.stats.corruption_windows == 1
        assert any("approximated as loss" in msg for _, msg in injector.log)

    def test_latency_spike_applied_to_fabric(self):
        async def scenario():
            cluster = AsyncCluster(small_config(round_interval=10), seed=6)
            cluster.add_nodes(3)
            cluster.start_all()
            schedule = FaultSchedule(
                [LatencySpike(at_round=1.0, factor=5.0, duration=2.0)]
            )
            injector = AsyncFaultInjector(cluster, schedule, seed=6)
            await injector.run()
            factor = cluster.network._spike_factor
            await cluster.stop_all()
            return injector, factor

        injector, factor = run(scenario())
        assert injector.stats.latency_spikes == 1
        assert factor == 5.0
