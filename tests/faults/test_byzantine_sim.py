"""The Byzantine drill against the simulator: hostile relays provably
violate authenticity without auth, and provably cannot with it."""

from __future__ import annotations

import random

import pytest

from repro.core.event import BallEntry, Event, make_ball
from repro.experiments.drill import run_drill
from repro.faults import ByzantineRouter, FaultSchedule


def _event(src=1, seq=0, ts=10, payload=None):
    return Event(
        id=(src, seq),
        ts=ts,
        source_id=src,
        payload={"v": seq} if payload is None else payload,
    )


def _ball(*events, ttl=4):
    return make_ball([BallEntry(event, ttl=ttl) for event in events])


class TestRouter:
    def test_honest_sender_untouched(self):
        router = ByzantineRouter(rng=random.Random(0))
        router.enable([1], "equivocate")
        ball = _ball(_event(src=2))
        assert router.transform(3, 5, ball) is ball

    def test_own_entries_never_mutated(self):
        # The relay adversary cannot forge what it could legitimately
        # sign anyway: its own events pass through untouched.
        router = ByzantineRouter(rng=random.Random(0))
        router.enable([1], "equivocate")
        own, relayed = _event(src=1), _event(src=2)
        out = router.transform(1, 5, _ball(own, relayed))
        by_id = {entry.event.id: entry.event for entry in out}
        assert by_id[own.id] == own
        assert by_id[relayed.id] != relayed
        assert by_id[relayed.id].id == relayed.id  # same claimed identity

    def test_equivocation_diverges_per_destination(self):
        router = ByzantineRouter(rng=random.Random(0))
        router.enable([1], "equivocate")
        ball = _ball(_event(src=2))
        even = router.transform(1, 4, ball)[0].event
        odd = router.transform(1, 5, ball)[0].event
        assert even.id == odd.id and even.ts == odd.ts
        assert even.payload != odd.payload

    def test_replay_and_ttl_inflate_resend_stashed_entries(self):
        router = ByzantineRouter(rng=random.Random(0))
        router.enable([1], "replay")
        router.enable([1], "ttl_inflate")
        ball = _ball(_event(src=2))
        first = router.transform(1, 4, ball)  # stashes the relayed entry
        assert len(first) >= 2  # replay and/or resurrection appended
        assert router.stats.replayed + router.stats.ttl_inflated >= 1

    def test_disable_restores_honesty(self):
        router = ByzantineRouter(rng=random.Random(0))
        router.enable([1], "garble_relay")
        assert router.is_hostile(1)
        router.disable([1], "garble_relay")
        assert not router.is_hostile(1)
        ball = _ball(_event(src=2))
        assert router.transform(1, 5, ball) is ball

    def test_behaviors_stack_per_node(self):
        router = ByzantineRouter(rng=random.Random(0))
        router.enable([1], "equivocate", rate=1.0)
        router.enable([1], "replay", rate=1.0)
        assert router.hostile_ids == (1,)
        router.disable([1], "replay")
        assert router.is_hostile(1)  # equivocate still active

    def test_seeded_router_is_deterministic(self):
        outcomes = []
        for _ in range(2):
            router = ByzantineRouter(rng=random.Random(42))
            router.enable([1], "garble_relay", rate=0.5)
            ball = _ball(_event(src=2))
            outcomes.append(
                [router.transform(1, d, ball)[0].event.payload for d in range(8)]
            )
        assert outcomes[0] == outcomes[1]


class TestByzantineDrill:
    def test_without_auth_equivocation_violates_agreement(self):
        result = run_drill(
            scale="small", seed=17, schedule=FaultSchedule.byzantine_drill()
        )
        assert result.byzantine_nodes == 2
        assert result.authenticity is not None
        # The adversary's lies reached correct nodes: forged content
        # and divergent sightings of common event ids.
        assert result.authenticity.forged_deliveries
        assert result.authenticity.equivocated_events
        assert not result.exit_ok

    def test_with_auth_no_forged_delivery_survives(self):
        result = run_drill(
            scale="small",
            seed=17,
            schedule=FaultSchedule.byzantine_drill(),
            auth=True,
        )
        assert result.auth_enabled
        # The attacks happened (entries were rejected at admission) ...
        assert result.dropped_bad_signature > 0
        # ... and none of them reached a correct node's delivery.
        assert result.authenticity is not None and result.authenticity.ok
        assert result.report.safety_ok
        assert result.exit_ok
