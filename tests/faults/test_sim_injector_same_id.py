"""Same-identity recovery mode of the simulator fault injector.

``recovery="same_id"`` mirrors what the asyncio interpreter does with
:meth:`AsyncCluster.respawn_node`: crashed processes come back under
their own ids with resumed broadcast sequences, instead of being
replaced by fresh joiners (the default, the paper's churn model).
"""

from __future__ import annotations

import pytest

from repro.core import EpToConfig
from repro.core.errors import FaultInjectionError
from repro.faults import CrashNodes, FaultSchedule, SimFaultInjector
from repro.metrics import check_run
from repro.sim import ClusterConfig, SimCluster, SimNetwork, Simulator

ROUND = 10


def build_cluster(n=8, seed=21):
    sim = Simulator(seed=seed)
    network = SimNetwork(sim)
    cluster = SimCluster(
        sim,
        network,
        ClusterConfig(epto=EpToConfig(fanout=4, ttl=8, round_interval=ROUND)),
    )
    cluster.add_nodes(n)
    return sim, network, cluster


def test_same_id_recovery_respawns_the_victims():
    sim, network, cluster = build_cluster()
    schedule = FaultSchedule(
        [CrashNodes(at_round=2.0, nodes=(1, 4), recover_after=6.0)]
    )
    injector = SimFaultInjector(sim, cluster, schedule, recovery="same_id")
    injector.install()

    # Sequence state that must survive the restart.
    pre = cluster.broadcast_from(1, "pre-crash")
    assert pre.id == (1, 0)

    sim.run(until=30 * ROUND)

    assert injector.stats.crashes == 2
    assert injector.stats.recoveries == 2
    # Same ids, not fresh joiners.
    assert set(cluster.alive_ids()) == set(range(8))
    assert cluster.crashed_ids() == []
    joined = " | ".join(message for _, message in injector.log)
    assert "recovered [1, 4] under their own ids" in joined

    # The respawned process resumes its predecessor's sequence.
    post = cluster.broadcast_from(1, "post-recovery")
    assert post.id == (1, 1)


def test_same_id_recovery_preserves_total_order_for_survivors():
    sim, network, cluster = build_cluster(n=8, seed=5)
    schedule = FaultSchedule(
        [CrashNodes(at_round=3.0, nodes=(6,), recover_after=4.0)]
    )
    injector = SimFaultInjector(sim, cluster, schedule, recovery="same_id")
    injector.install()

    for node_id in (0, 1, 2):
        cluster.broadcast_from(node_id, f"wave-{node_id}")
    sim.schedule_at(
        20 * ROUND, lambda: cluster.broadcast_from(6, "from-the-respawned")
    )
    sim.run(until=50 * ROUND)

    survivors = injector.continuous_survivors() - injector.crashed_ids
    report = check_run(cluster.collector, correct_nodes=survivors)
    assert report.safety_ok, report.summary()
    assert report.agreement_ok, report.summary()


def test_fresh_stays_the_default():
    sim, network, cluster = build_cluster(n=6, seed=2)
    injector = SimFaultInjector(
        sim,
        cluster,
        FaultSchedule([CrashNodes(at_round=1.0, nodes=(0,), recover_after=2.0)]),
    )
    assert injector.recovery == "fresh"
    injector.install()
    sim.run(until=10 * ROUND)
    # The replacement is a new identity, not node 0 again.
    assert 0 not in cluster.alive_ids()
    assert 6 in cluster.alive_ids()


def test_unknown_recovery_mode_is_rejected():
    sim, network, cluster = build_cluster(n=4)
    with pytest.raises(FaultInjectionError):
        SimFaultInjector(
            sim, cluster, FaultSchedule.standard_drill(), recovery="zombie"
        )
