"""Tests for the Lemma 7 adaptive-parameter helpers (repro.faults.adaptive)."""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.core import EpToConfig
from repro.core.errors import ConfigurationError
from repro.faults import MAX_RATE, ObservedConditions, adapt_config, lemma7_parameters


class TestObservedConditions:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ObservedConditions(population=1, churn_rate=0.0, loss_rate=0.0)
        with pytest.raises(ConfigurationError):
            ObservedConditions(population=10, churn_rate=-0.1, loss_rate=0.0)
        with pytest.raises(ConfigurationError):
            ObservedConditions(population=10, churn_rate=0.0, loss_rate=1.5)

    def test_from_run_reads_network_counters(self):
        stats = SimpleNamespace(sent=1000, dropped_loss=50, dropped_burst=150)
        observed = ObservedConditions.from_run(
            population=20, rounds=100, network_stats=stats
        )
        assert observed.loss_rate == pytest.approx(0.2)
        assert observed.churn_rate == 0.0

        without_bursts = ObservedConditions.from_run(
            population=20, rounds=100, network_stats=stats, include_bursts=False
        )
        assert without_bursts.loss_rate == pytest.approx(0.05)

    def test_from_run_reads_churn_counters(self):
        churn = SimpleNamespace(removed=10)
        observed = ObservedConditions.from_run(
            population=10, rounds=50, churn_stats=churn
        )
        assert observed.churn_rate == pytest.approx(10 / (50 * 10))

    def test_from_run_accepts_fault_stats_crashes(self):
        faults = SimpleNamespace(crashes=5)
        observed = ObservedConditions.from_run(
            population=10, rounds=25, churn_stats=faults
        )
        assert observed.churn_rate == pytest.approx(5 / (25 * 10))

    def test_from_run_requires_rounds_for_churn(self):
        with pytest.raises(ConfigurationError):
            ObservedConditions.from_run(
                population=10, rounds=0, churn_stats=SimpleNamespace(removed=1)
            )

    def test_catastrophic_rates_clamped(self):
        stats = SimpleNamespace(sent=10, dropped_loss=10, dropped_burst=0)
        observed = ObservedConditions.from_run(
            population=10, rounds=1, network_stats=stats
        )
        assert observed.loss_rate == MAX_RATE

    def test_zero_sent_means_zero_loss(self):
        stats = SimpleNamespace(sent=0, dropped_loss=0)
        observed = ObservedConditions.from_run(
            population=10, rounds=1, network_stats=stats
        )
        assert observed.loss_rate == 0.0


class TestLemma7:
    def test_harsher_conditions_need_bigger_fanout(self):
        calm = ObservedConditions(population=100, churn_rate=0.0, loss_rate=0.0)
        stormy = ObservedConditions(population=100, churn_rate=0.05, loss_rate=0.2)
        assert (
            lemma7_parameters(stormy).fanout > lemma7_parameters(calm).fanout
        )

    def test_parameters_carry_the_observed_rates(self):
        observed = ObservedConditions(population=50, churn_rate=0.01, loss_rate=0.1)
        derived = lemma7_parameters(observed)
        assert derived.n == 50
        assert derived.churn_rate == pytest.approx(0.01)
        assert derived.loss_rate == pytest.approx(0.1)


class TestAdaptConfig:
    def config(self):
        return EpToConfig(fanout=4, ttl=6, round_interval=15, clock="logical")

    def test_benign_window_never_weakens_config(self):
        observed = ObservedConditions(population=5, churn_rate=0.0, loss_rate=0.0)
        adapted = adapt_config(self.config(), observed)
        assert adapted.fanout >= 4
        assert adapted.ttl >= 6

    def test_harsh_window_ratchets_up(self):
        observed = ObservedConditions(
            population=200, churn_rate=0.02, loss_rate=0.25
        )
        adapted = adapt_config(self.config(), observed)
        assert adapted.fanout > 4
        assert adapted.ttl > 6

    def test_everything_else_preserved(self):
        observed = ObservedConditions(population=100, churn_rate=0.0, loss_rate=0.1)
        adapted = adapt_config(self.config(), observed)
        assert adapted.round_interval == 15
        assert adapted.clock == "logical"
