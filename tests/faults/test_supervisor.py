"""Tests for the self-healing node supervisor (repro.faults.supervisor)."""

from __future__ import annotations

import asyncio

from repro.core import EpToConfig
from repro.faults import NodeSupervisor, check_survivors
from repro.runtime import AsyncCluster


def run(coro):
    return asyncio.run(coro)


def small_config(**overrides):
    defaults = dict(fanout=3, ttl=5, round_interval=15, clock="logical")
    defaults.update(overrides)
    return EpToConfig(**defaults)


def quick_supervisor(cluster, **overrides):
    defaults = dict(poll_interval=0.01, base_delay=0.02, healthy_after=60.0)
    defaults.update(overrides)
    return NodeSupervisor(cluster, **defaults)


class TestRestart:
    def test_crashed_node_is_detected_and_restarted(self):
        """Acceptance scenario: a node crashed mid-run is restarted by
        the supervisor and delivers new events in the same total order
        as everyone else."""

        async def scenario():
            cluster = AsyncCluster(small_config(), seed=21)
            cluster.add_nodes(6)
            cluster.start_all()
            supervisor = quick_supervisor(cluster)
            supervisor.start()

            cluster.nodes[0].broadcast("before-crash")
            await cluster.wait_for_deliveries(1, timeout=8.0)

            cluster.crash_node(2)
            revived = await cluster.wait_until(
                lambda: not cluster.nodes[2].crashed and cluster.nodes[2].running,
                timeout=8.0,
            )
            cluster.nodes[1].broadcast("after-restart")
            ok = await cluster.wait_until(
                lambda: all(
                    any(e.payload == "after-restart" for e in cluster.deliveries[n])
                    for n in cluster.live_ids()
                ),
                timeout=8.0,
            )
            await supervisor.stop()
            await cluster.stop_all()
            return revived, ok, supervisor, cluster

        revived, ok, supervisor, cluster = run(scenario())
        assert revived and ok
        assert supervisor.stats.detected >= 1
        assert supervisor.stats.restarted == 1
        assert supervisor.stats.attempts[2] == 1
        assert not supervisor.is_abandoned(2)
        report = check_survivors(
            cluster.deliveries,
            survivors=[0, 1, 3, 4, 5],
            recovered=[2],
            restart_indices=cluster.restart_indices,
        )
        assert report.ok, report.summary()
        # The restarted node picked up the post-restart event.
        suffix = cluster.deliveries[2][cluster.restart_indices[2][-1] :]
        assert any(e.payload == "after-restart" for e in suffix)

    def test_round_task_exception_triggers_self_heal(self):
        """A node whose round loop *raises* (not an injected crash) is
        flagged by its done-callback and resurrected."""

        async def scenario():
            cluster = AsyncCluster(small_config(), seed=22)
            cluster.add_nodes(4)
            cluster.start_all()
            supervisor = quick_supervisor(cluster)
            supervisor.start()

            # Sabotage one node's round handler; the replacement process
            # built by respawn_node is healthy again.
            def explode():
                raise RuntimeError("cosmic ray")

            cluster.nodes[3].process.on_round = explode
            restarted = await cluster.wait_until(
                lambda: supervisor.stats.restarted >= 1, timeout=8.0
            )
            healed = await cluster.wait_until(
                lambda: cluster.nodes[3].running and not cluster.nodes[3].crashed,
                timeout=8.0,
            )
            await supervisor.stop()
            await cluster.stop_all()
            return restarted and healed, supervisor

        healed, supervisor = run(scenario())
        assert healed
        assert supervisor.stats.restarted >= 1


class TestBackoff:
    def test_backoff_grows_geometrically_and_caps(self):
        cluster = AsyncCluster(small_config())
        supervisor = NodeSupervisor(
            cluster, base_delay=0.05, backoff_factor=2.0, max_delay=0.5
        )
        assert supervisor.backoff_delay(7) == 0.05
        supervisor.stats.attempts[7] = 1
        assert supervisor.backoff_delay(7) == 0.1
        supervisor.stats.attempts[7] = 3
        assert supervisor.backoff_delay(7) == 0.4
        supervisor.stats.attempts[7] = 10
        assert supervisor.backoff_delay(7) == 0.5

    def test_crash_loop_is_abandoned_after_max_restarts(self):
        async def scenario():
            cluster = AsyncCluster(small_config(), seed=23)
            cluster.add_nodes(3)
            cluster.start_all()
            supervisor = quick_supervisor(cluster, max_restarts=2)
            supervisor.start()

            # Crash node 1 repeatedly: each revival is crashed again.
            for _ in range(3):
                await cluster.wait_until(
                    lambda: cluster.nodes[1].running, timeout=8.0
                )
                cluster.crash_node(1)
                await asyncio.sleep(0.05)

            abandoned = await cluster.wait_until(
                lambda: supervisor.is_abandoned(1), timeout=8.0
            )
            # The abandoned corpse stays dead (checked before stop_all,
            # which clears crash flags as part of orderly shutdown).
            stayed_dead = cluster.nodes[1].crashed
            await supervisor.stop()
            await cluster.stop_all()
            return abandoned, stayed_dead, supervisor

        abandoned, stayed_dead, supervisor = run(scenario())
        assert abandoned
        assert supervisor.stats.restarted == 2
        assert supervisor.stats.abandoned == 1
        assert stayed_dead


class TestLifecycle:
    def test_stop_cancels_pending_restart(self):
        async def scenario():
            cluster = AsyncCluster(small_config(), seed=24)
            cluster.add_nodes(3)
            cluster.start_all()
            # Huge backoff: the restart stays pending until we stop.
            supervisor = quick_supervisor(cluster, base_delay=30.0)
            supervisor.start()
            assert supervisor.running
            cluster.crash_node(0)
            await cluster.wait_until(
                lambda: supervisor.stats.detected >= 1, timeout=8.0
            )
            await supervisor.stop()
            await asyncio.sleep(0.05)
            still_dead = cluster.nodes[0].crashed
            running = supervisor.running
            await cluster.stop_all()
            return still_dead, running, supervisor

        still_dead, running, supervisor = run(scenario())
        assert still_dead
        assert not running
        assert supervisor.stats.restarted == 0

    def test_restart_callback_invoked(self):
        async def scenario():
            cluster = AsyncCluster(small_config(), seed=25)
            cluster.add_nodes(3)
            cluster.start_all()
            calls = []
            supervisor = quick_supervisor(
                cluster, on_restart=lambda nid, attempt: calls.append((nid, attempt))
            )
            supervisor.start()
            cluster.crash_node(1)
            await cluster.wait_until(lambda: bool(calls), timeout=8.0)
            await supervisor.stop()
            await cluster.stop_all()
            return calls

        assert run(scenario()) == [(1, 1)]
