"""Supervised restart with durable recovery (runtime + storage).

The async half of the recovery acceptance drill: on an
:class:`AsyncCluster` provisioned with ``storage_dir``, a crashed node
resurrected by the :class:`NodeSupervisor` comes back from disk —
snapshot + delivery-log replay — instead of blank, optionally under
Lemma 7 parameters recomputed from the observed churn
(:func:`supervisor_adaptation`).
"""

from __future__ import annotations

import asyncio

from repro.core import EpToConfig
from repro.faults import NodeSupervisor, check_survivors, supervisor_adaptation
from repro.runtime import AsyncCluster


def run(coro):
    return asyncio.run(coro)


def small_config(**overrides):
    defaults = dict(fanout=3, ttl=5, round_interval=15, clock="logical")
    defaults.update(overrides)
    return EpToConfig(**defaults)


def quick_supervisor(cluster, **overrides):
    defaults = dict(poll_interval=0.01, base_delay=0.02, healthy_after=60.0)
    defaults.update(overrides)
    return NodeSupervisor(cluster, **defaults)


class TestSupervisedRecovery:
    def test_restart_recovers_from_disk_and_adapts(self, tmp_path):
        """Crash -> supervised restart -> recovery from the journal: the
        replacement replays its durable deliveries, resumes its
        broadcast sequence without id reuse, and comes up under an
        adapted config."""

        async def scenario():
            cluster = AsyncCluster(
                small_config(), seed=31, storage_dir=tmp_path
            )
            cluster.add_nodes(6)
            cluster.start_all()
            supervisor = quick_supervisor(
                cluster, adapt=supervisor_adaptation()
            )
            supervisor.start()

            # The future victim broadcasts, so both its delivery log and
            # its broadcast-sequence marker hit disk before the crash.
            before = cluster.nodes[2].broadcast("before-crash")
            await cluster.wait_for_deliveries(1, timeout=8.0)

            cluster.crash_node(2)
            revived = await cluster.wait_until(
                lambda: not cluster.nodes[2].crashed and cluster.nodes[2].running,
                timeout=8.0,
            )
            after = cluster.nodes[2].broadcast("after-restart")
            ok = await cluster.wait_until(
                lambda: all(
                    any(e.payload == "after-restart" for e in cluster.deliveries[n])
                    for n in cluster.live_ids()
                ),
                timeout=8.0,
            )
            await supervisor.stop()
            await cluster.stop_all()
            return revived, ok, supervisor, cluster, before, after

        revived, ok, supervisor, cluster, before, after = run(scenario())
        assert revived and ok
        assert supervisor.stats.restarted == 1

        # The respawn went through the recovery driver, and the durable
        # record covered the pre-crash delivery.
        (recovered,) = cluster.recoveries[2]
        assert not recovered.blank
        assert recovered.replayed >= 1
        assert recovered.last_delivered_key is not None

        # Broadcast sequence resumed from the persisted marker: no
        # (source, seq) id reuse across incarnations.
        assert before.id != after.id
        assert after.seq > before.seq
        assert recovered.next_seq >= before.seq + 1

        # The adapt hook supplied the replacement's config, and the
        # replacement runs under it.
        assert 2 in supervisor.adapted_configs
        assert cluster.nodes[2].process.config == supervisor.adapted_configs[2]

        # Total order held across the restart.
        report = check_survivors(
            cluster.deliveries,
            survivors=[0, 1, 3, 4, 5],
            recovered=[2],
            restart_indices=cluster.restart_indices,
        )
        assert report.ok, report.summary()

    def test_unprovisioned_cluster_restarts_blank(self):
        """Without ``storage_dir`` a supervised restart behaves exactly
        as before the storage subsystem existed: fresh process, no
        recovery record."""

        async def scenario():
            cluster = AsyncCluster(small_config(), seed=32)
            cluster.add_nodes(4)
            cluster.start_all()
            supervisor = quick_supervisor(cluster)
            supervisor.start()
            cluster.crash_node(1)
            revived = await cluster.wait_until(
                lambda: not cluster.nodes[1].crashed and cluster.nodes[1].running,
                timeout=8.0,
            )
            await supervisor.stop()
            await cluster.stop_all()
            return revived, cluster

        revived, cluster = run(scenario())
        assert revived
        assert cluster.recoveries == {}
        assert cluster.journals == {}
