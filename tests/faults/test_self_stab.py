"""The self-stabilization drill: arbitrary state corruption (forged
spray + journal scramble + crash) must converge back, bit-identically
with auth + anti-entropy."""

from __future__ import annotations

import random

import pytest

from repro.core.errors import FaultInjectionError
from repro.core.event import Event
from repro.experiments.drill import run_drill
from repro.faults import FaultSchedule, scramble_journal
from repro.faults.byzantine import forged_events, garbage_ball


class TestForgedEvents:
    def test_round_robin_impersonation_with_huge_seqs(self):
        events = forged_events([3, 5], count=4, ts=100)
        assert [event.source_id for event in events] == [3, 5, 3, 5]
        assert all(event.id[1] >= 1_000_000 for event in events)
        assert all(isinstance(event, Event) for event in events)

    def test_needs_identities(self):
        with pytest.raises(FaultInjectionError):
            forged_events([], count=1, ts=0)

    def test_garbage_ball_looks_freshly_broadcast(self):
        ball = garbage_ball(forged_events([3], count=2, ts=100))
        assert all(entry.ttl == 0 for entry in ball)


class TestScrambleJournal:
    def test_corrupted_log_still_readable_to_last_valid_record(self, tmp_path):
        from repro.metrics import load_delivery_log
        from repro.storage.journal import DeliveryJournal

        node_dir = tmp_path / "node-4"
        journal = DeliveryJournal(node_dir)
        for i in range(50):
            journal.record_delivery(
                Event(id=(4, i), ts=100 + i, source_id=4, payload={"n": i})
            )
        journal.close()

        actions = scramble_journal(node_dir, random.Random(7))
        assert any("flipped" in action for action in actions)
        assert any("garbage" in action for action in actions)

        # CRC framing absorbs all three damage layers: the read stops
        # at the last valid record instead of raising.
        collector = load_delivery_log(node_dir, node_id=4)
        sequence = collector.sequence_of(4)
        assert 0 < len(sequence) < 50
        full = [(100 + i, 4, i) for i in range(50)]
        assert list(sequence) == full[: len(sequence)]

    def test_missing_log_reported_not_raised(self, tmp_path):
        actions = scramble_journal(tmp_path / "node-9", random.Random(0))
        assert any("no log segments" in action for action in actions)


class TestSelfStabDrill:
    def test_scrambled_node_converges_bit_identically_with_auth_and_sync(self):
        result = run_drill(
            scale="small",
            seed=17,
            schedule=FaultSchedule.self_stab(),
            sync=True,
            auth=True,
        )
        assert result.scrambled == 1
        # The forged spray died at admission (unsigned at source) ...
        assert result.dropped_unsigned > 0
        assert result.authenticity is not None and result.authenticity.ok
        # ... the corrupted journal was repaired through recovery +
        # anti-entropy, converging to the survivors' durable sequence.
        assert result.scrambled_converged is True
        assert result.report.safety_ok
        assert result.exit_ok

    def test_without_auth_the_spray_pollutes_correct_nodes(self):
        result = run_drill(
            scale="small", seed=17, schedule=FaultSchedule.self_stab(), sync=True
        )
        assert result.authenticity is not None
        assert result.authenticity.forged_deliveries
        assert not result.exit_ok
