"""Tests for the survivor total-order/agreement checker (repro.faults.verify)."""

from __future__ import annotations

from repro.core.event import Event
from repro.faults import check_survivors


def ev(src: int, seq: int, ts: int, payload=None):
    return Event(id=(src, seq), ts=ts, source_id=src, payload=payload)


# A canonical three-event history, already in total order.
A = ev(0, 0, ts=3)
B = ev(1, 0, ts=5)
C = ev(2, 0, ts=5)  # ties with B on ts; src breaks the tie (1 < 2)


class TestSurvivors:
    def test_identical_ordered_journals_pass(self):
        deliveries = {0: [A, B, C], 1: [A, B, C], 2: [A, B, C]}
        report = check_survivors(deliveries, survivors=[0, 1, 2])
        assert report.ok
        assert report.checked_nodes == 3
        assert report.checked_events == 3
        assert "OK" in report.summary()

    def test_out_of_order_journal_flagged(self):
        deliveries = {0: [A, C, B], 1: [A, B, C]}
        report = check_survivors(deliveries, survivors=[0, 1])
        assert not report.ok
        assert report.order_violations
        assert "VIOLATED" in report.summary()

    def test_duplicate_delivery_flagged(self):
        deliveries = {0: [A, A, B]}
        report = check_survivors(deliveries, survivors=[0])
        assert report.order_violations  # equal keys are non-increasing

    def test_missing_event_is_agreement_violation(self):
        deliveries = {0: [A, B, C], 1: [A, C]}
        report = check_survivors(deliveries, survivors=[0, 1])
        assert not report.ok
        assert len(report.agreement_violations) == 1
        assert "never delivered" in report.agreement_violations[0]

    def test_empty_cluster_is_vacuously_ok(self):
        assert check_survivors({}, survivors=[]).ok


class TestRecovered:
    def test_recovered_checked_on_suffix_only(self):
        """Pre-restart garbage is ignored; the post-restart suffix must
        be in order but need not contain everything survivors saw."""
        deliveries = {
            0: [A, B, C],
            1: [A, B, C],
            # Node 9 died after A; its second life saw only C.
            9: [A, C],
        }
        report = check_survivors(
            deliveries,
            survivors=[0, 1],
            recovered=[9],
            restart_indices={9: [1]},
        )
        assert report.ok, report.summary()

    def test_recovered_suffix_must_be_ordered(self):
        deliveries = {0: [A, B, C], 9: [A, C, B]}
        report = check_survivors(
            deliveries, survivors=[0], recovered=[9], restart_indices={9: [1]}
        )
        assert not report.ok
        assert any("recovered" in v for v in report.order_violations)

    def test_recovered_conflicting_with_survivor_flagged(self):
        """Figure 1b: the recovered node orders two common events the
        opposite way from a survivor — even though its own suffix is
        internally increasing by delivery position, the pairwise check
        catches it."""
        deliveries = {0: [A, B, C], 9: [C, B]}
        report = check_survivors(
            deliveries, survivors=[0], recovered=[9], restart_indices={9: [0]}
        )
        assert not report.ok

    def test_recovered_defaults_to_whole_journal_without_indices(self):
        deliveries = {0: [A, B], 9: [B, A]}
        report = check_survivors(deliveries, survivors=[0], recovered=[9])
        assert not report.ok

    def test_node_in_both_sets_treated_as_survivor(self):
        deliveries = {0: [A, B], 1: [A, B]}
        report = check_survivors(
            deliveries, survivors=[0, 1], recovered=[1], restart_indices={1: [1]}
        )
        assert report.ok
        assert report.checked_nodes == 2
