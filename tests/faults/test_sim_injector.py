"""Tests for the simulator fault-schedule interpreter.

The headline test runs the shared ``standard_drill`` scenario — crash
20% of the cluster, partition and heal, recover, loss burst — under the
discrete-event simulator and checks the Table 1 guarantees on the
continuous survivors. Its twin in ``test_runtime_injector.py`` runs the
*same* schedule against the asyncio runtime.
"""

from __future__ import annotations

import pytest

from repro.core import EpToConfig
from repro.core.errors import FaultInjectionError
from repro.faults import (
    CorruptDatagrams,
    CrashNodes,
    FaultSchedule,
    HealPartition,
    LatencySpike,
    LossBurst,
    PartitionNetwork,
    SimFaultInjector,
)
from repro.metrics import check_run
from repro.sim import ClusterConfig, SimCluster, SimNetwork, Simulator


ROUND = 10  # ticks per EpTO round in these tests


def build_cluster(n=10, seed=7, **epto_overrides):
    epto = dict(fanout=5, ttl=8, round_interval=ROUND, clock="logical")
    epto.update(epto_overrides)
    sim = Simulator(seed=seed)
    network = SimNetwork(sim)
    cluster = SimCluster(sim, network, ClusterConfig(epto=EpToConfig(**epto)))
    cluster.add_nodes(n)
    return sim, network, cluster


class TestStandardDrill:
    def test_shared_scenario_survives_with_total_order(self):
        """Acceptance scenario, simulator half: the standard drill runs
        to completion and the spec checker passes on survivors."""
        sim, network, cluster = build_cluster(n=10, seed=11)
        schedule = FaultSchedule.standard_drill()
        injector = SimFaultInjector(sim, cluster, schedule)
        injector.install()

        # A first wave before anything goes wrong...
        for node_id in cluster.alive_ids()[:3]:
            cluster.broadcast_from(node_id, f"pre-{node_id}")

        # ...and a second wave after the dust settles (recovery lands at
        # round 16, the loss burst ends at round 21).
        def late_wave() -> None:
            for node_id in sorted(injector.continuous_survivors())[:2]:
                cluster.broadcast_from(node_id, f"post-{node_id}")

        sim.schedule_at(24 * ROUND, late_wave)
        sim.run(until=60 * ROUND)

        assert injector.stats.crashes == 2  # ceil(0.2 * 10)
        assert injector.stats.recoveries == 2
        assert injector.stats.partitions == 1
        assert injector.stats.heals == 1
        assert injector.stats.loss_bursts == 1

        survivors = injector.continuous_survivors()
        assert len(survivors) == 8
        assert survivors == {0, 1, 2, 3, 4, 5, 6, 7, 8, 9} - injector.crashed_ids

        report = check_run(cluster.collector, correct_nodes=survivors)
        assert report.safety_ok, report.summary()
        assert report.agreement_ok, report.summary()
        # Every survivor delivered both waves.
        sequences = cluster.collector.sequences()
        for node_id in survivors:
            assert len(sequences[node_id]) == 5

    def test_log_is_chronological_and_complete(self):
        sim, network, cluster = build_cluster(n=10, seed=3)
        injector = SimFaultInjector(sim, cluster, FaultSchedule.standard_drill())
        injector.install()
        sim.run(until=40 * ROUND)
        ticks = [tick for tick, _ in injector.log]
        assert ticks == sorted(ticks)
        joined = " | ".join(message for _, message in injector.log)
        for needle in ("crashed", "partitioned", "healed", "recovered", "loss burst"):
            assert needle in joined


class TestIndividualActions:
    def test_explicit_victims_and_groups(self):
        sim, network, cluster = build_cluster(n=6, seed=5)
        schedule = FaultSchedule(
            [
                CrashNodes(at_round=1.0, nodes=(0, 4)),
                PartitionNetwork(at_round=2.0, groups={1: "a", 2: "a", 3: "b", 5: "b"}),
                HealPartition(at_round=4.0),
            ]
        )
        injector = SimFaultInjector(sim, cluster, schedule)
        injector.install()
        sim.run(until=6 * ROUND)
        assert injector.crashed_ids == {0, 4}
        assert set(cluster.alive_ids()) == {1, 2, 3, 5}
        assert injector.stats.partitions == 1
        assert injector.stats.heals == 1
        assert not network._partitioned

    def test_loss_burst_raises_then_restores_loss(self):
        sim, network, cluster = build_cluster(n=4, seed=2)
        schedule = FaultSchedule([LossBurst(at_round=2.0, rate=0.6, duration=3.0)])
        injector = SimFaultInjector(sim, cluster, schedule)
        injector.install()
        sim.run(until=3 * ROUND)
        assert network.loss_rate == 0.6
        sim.run(until=8 * ROUND)
        assert network.loss_rate == 0.0

    def test_latency_spike_wraps_and_restores_model(self):
        sim, network, cluster = build_cluster(n=4, seed=2)
        base_model = network.latency
        schedule = FaultSchedule([LatencySpike(at_round=1.0, factor=4.0, duration=2.0)])
        injector = SimFaultInjector(sim, cluster, schedule)
        injector.install()
        sim.run(until=2 * ROUND)
        assert network.latency is not base_model
        assert network.latency.sample(sim.fork_rng("probe"), 0, 1) >= 4
        sim.run(until=5 * ROUND)
        assert network.latency is base_model
        assert injector.stats.latency_spikes == 1

    def test_corruption_degrades_to_loss_with_log_note(self):
        sim, network, cluster = build_cluster(n=4, seed=2)
        schedule = FaultSchedule(
            [CorruptDatagrams(at_round=1.0, rate=0.5, duration=2.0)]
        )
        injector = SimFaultInjector(sim, cluster, schedule)
        injector.install()
        sim.run(until=2 * ROUND)
        assert network.loss_rate == 0.5
        assert injector.stats.corruption_windows == 1
        assert any("approximated as loss" in msg for _, msg in injector.log)
        sim.run(until=5 * ROUND)
        assert network.loss_rate == 0.0

    def test_recoveries_join_as_fresh_processes(self):
        sim, network, cluster = build_cluster(n=5, seed=9)
        schedule = FaultSchedule(
            [CrashNodes(at_round=1.0, nodes=(1, 2), recover_after=2.0)]
        )
        injector = SimFaultInjector(sim, cluster, schedule)
        injector.install()
        sim.run(until=6 * ROUND)
        assert injector.stats.recoveries == 2
        # SimCluster assigns ids monotonically: replacements are 5 and 6.
        assert set(cluster.alive_ids()) == {0, 3, 4, 5, 6}
        assert injector.continuous_survivors() == {0, 3, 4}


class TestInstallGuards:
    def test_double_install_rejected(self):
        sim, network, cluster = build_cluster(n=3)
        injector = SimFaultInjector(sim, cluster, FaultSchedule([]))
        injector.install()
        with pytest.raises(FaultInjectionError):
            injector.install()
