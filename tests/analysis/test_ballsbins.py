"""Tests for balls-in-bins machinery (repro.analysis.ballsbins)."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.ballsbins import (
    coupon_collector_threshold,
    epidemic_growth,
    expected_empty_bins,
    p_all_bins_hit,
    p_bin_empty,
    simulate_gossip_coverage,
    simulate_throws,
)
from repro.core.errors import ConfigurationError


class TestOccupancyFormulas:
    def test_zero_balls_all_empty(self):
        assert expected_empty_bins(10, 0) == 10

    def test_many_balls_nearly_none_empty(self):
        assert expected_empty_bins(10, 1000) < 1e-10

    def test_p_bin_empty_formula(self):
        assert p_bin_empty(4, 4) == pytest.approx((3 / 4) ** 4)

    def test_p_all_bins_hit_bounds(self):
        assert p_all_bins_hit(10, 0) == 0.0
        assert p_all_bins_hit(10, 10_000) == pytest.approx(1.0, abs=1e-9)

    def test_coupon_collector(self):
        # n * H_n; for n=10, H_10 ~ 2.929.
        assert coupon_collector_threshold(10) == pytest.approx(29.29, abs=0.01)

    def test_rejects_degenerate(self):
        with pytest.raises(ConfigurationError):
            expected_empty_bins(0, 1)
        with pytest.raises(ConfigurationError):
            p_bin_empty(1, 1)


class TestMonteCarloAgreement:
    """The closed-form expectations must match direct simulation."""

    def test_expected_empty_bins_matches_simulation(self):
        rng = random.Random(8)
        n, balls, trials = 50, 100, 300
        simulated = sum(simulate_throws(n, balls, rng) for _ in range(trials)) / trials
        assert simulated == pytest.approx(expected_empty_bins(n, balls), rel=0.15)

    def test_coupon_collector_threshold_roughly_covers(self):
        rng = random.Random(9)
        n = 30
        threshold = int(coupon_collector_threshold(n))
        # At ~2x the threshold, coverage should be complete most times.
        complete = sum(
            1 for _ in range(50) if simulate_throws(n, 2 * threshold, rng) == 0
        )
        assert complete > 35


class TestEpidemicGrowth:
    def test_starts_with_one_infected(self):
        trace = epidemic_growth(100, 5, 10)
        assert trace.infected[0] == 1.0
        assert trace.balls[0] == 0.0

    def test_monotone_growth(self):
        trace = epidemic_growth(100, 5, 20)
        infected = list(trace.infected)
        assert infected == sorted(infected)
        assert infected[-1] <= 100.0

    def test_early_rounds_multiply_by_fanout_plus_one(self):
        # Theorem 2's doubling intuition: i_{t+1} ~ (1 + K) i_t early on.
        trace = epidemic_growth(100_000, 3, 4)
        ratio = trace.infected[2] / trace.infected[1]
        assert ratio == pytest.approx(4.0, rel=0.01)

    def test_saturates_at_n(self):
        trace = epidemic_growth(50, 10, 30)
        assert trace.infected[-1] == pytest.approx(50.0, abs=1e-6)

    def test_rounds_to_cover(self):
        trace = epidemic_growth(1000, 10, 30)
        rounds = trace.rounds_to_cover(1000, 0.999)
        # Should be on the order of log n, certainly under 10 for K=10.
        assert 2 <= rounds <= 10

    def test_coverage_normalized(self):
        trace = epidemic_growth(100, 5, 10)
        coverage = trace.coverage(100)
        assert coverage[0] == pytest.approx(0.01)
        assert all(0.0 <= c <= 1.0 for c in coverage)

    def test_matches_gossip_simulation(self):
        """Mean-field recurrence ~ Monte-Carlo gossip (Theorem 2)."""
        n, fanout, rounds = 300, 4, 8
        trace = epidemic_growth(n, fanout, rounds)
        rng = random.Random(10)
        trials = [simulate_gossip_coverage(n, fanout, rounds, rng) for _ in range(30)]
        mean_final = sum(t[-1] for t in trials) / len(trials)
        assert mean_final == pytest.approx(trace.infected[-1], rel=0.05)

    @given(
        st.integers(min_value=2, max_value=2000),
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=0, max_value=40),
    )
    @settings(max_examples=100, deadline=None)
    def test_growth_invariants(self, n, fanout, rounds):
        trace = epidemic_growth(n, fanout, rounds)
        assert len(trace.infected) == rounds + 1
        assert all(1.0 <= i <= n for i in trace.infected)
        balls = list(trace.balls)
        assert balls == sorted(balls)


class TestGossipSimulation:
    def test_theorem2_parameters_cover_everyone(self):
        """At K and m from Theorem 2, every process learns the rumor
        in (nearly) every run — the theorem's claim, empirically."""
        n = 128
        fanout = math.ceil(2 * math.e * math.log(n) / math.log(math.log(n)))
        rounds = math.ceil(2.25 * math.log2(n))
        rng = random.Random(11)
        for _ in range(20):
            coverage = simulate_gossip_coverage(n, fanout, rounds, rng)
            assert coverage[-1] == n
