"""Tests for §8.4 latency/confidence tradeoffs (repro.analysis.tradeoffs)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.tradeoffs import (
    latency_saving,
    rounds_for_coverage,
    rounds_for_stability,
    tradeoff_curve,
)
from repro.core.errors import ConfigurationError
from repro.core.params import min_fanout, min_ttl


class TestTradeoffCurve:
    def test_monotone_in_rounds(self):
        curve = tradeoff_curve(200, 10)
        stabilities = [p.probability_stable for p in curve]
        coverages = [p.expected_coverage for p in curve]
        assert stabilities == sorted(stabilities)
        assert coverages == sorted(coverages)

    def test_starts_uncertain_ends_confident(self):
        curve = tradeoff_curve(200, 10)
        assert curve[0].probability_stable == 0.0
        assert curve[-1].probability_stable > 0.999

    def test_rounds_are_sequential(self):
        curve = tradeoff_curve(50, 5, max_rounds=12)
        assert [p.rounds for p in curve] == list(range(13))


class TestInverseQueries:
    def test_rounds_for_stability_is_exact_inverse(self):
        n, k = 300, 12
        target = 0.99
        rounds = rounds_for_stability(n, k, target)
        curve = tradeoff_curve(n, k)
        assert curve[rounds].probability_stable >= target
        if rounds > 0:
            assert curve[rounds - 1].probability_stable < target

    def test_majority_needs_fewer_rounds_than_stability(self):
        n, k = 500, 15
        majority = rounds_for_coverage(n, k, 0.5)
        stable = rounds_for_stability(n, k, 0.999)
        assert majority < stable

    def test_higher_target_needs_more_rounds(self):
        n, k = 400, 10
        assert rounds_for_stability(n, k, 0.999) >= rounds_for_stability(n, k, 0.5)

    def test_full_coverage_reachable(self):
        assert rounds_for_coverage(100, 10, 1.0) < 20

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.5, 2.0])
    def test_bad_stability_target_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            rounds_for_stability(100, 10, bad)

    @given(
        st.integers(min_value=8, max_value=2000),
        st.integers(min_value=2, max_value=20),
        st.floats(min_value=0.05, max_value=0.99),
    )
    @settings(max_examples=60, deadline=None)
    def test_coverage_query_consistent(self, n, k, target):
        rounds = rounds_for_coverage(n, k, target)
        curve = tradeoff_curve(n, k)
        assert curve[rounds].expected_coverage >= target


class TestLatencySaving:
    def test_paper_scale_saving_is_substantial(self):
        """§6 empirically found TTL 15 -> 5 at n=100; the model should
        likewise predict large savings at high confidence."""
        n = 100
        k = min_fanout(n)
        ttl = min_ttl(n)
        saving = latency_saving(n, k, ttl, target=0.999)
        assert saving > 0.4  # act >40% earlier at 99.9% confidence

    def test_zero_when_target_needs_full_ttl(self):
        # A tiny TTL leaves nothing to save.
        n, k = 100, min_fanout(100)
        needed = rounds_for_stability(n, k, 0.999)
        assert latency_saving(n, k, ttl=needed, target=0.999) == 0.0

    def test_bad_ttl_rejected(self):
        with pytest.raises(ConfigurationError):
            latency_saving(100, 10, ttl=0, target=0.9)
