"""Tests for the Figure 3 analytic bounds (repro.analysis.bounds)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.analysis.bounds import (
    balls_thrown,
    hole_bound_series,
    log10_p_hole_any_process,
    log10_p_hole_fixed_process,
    p_hole_any_process,
    p_hole_fixed_process,
    smallest_c_for_target,
)
from repro.core.errors import ConfigurationError


class TestBallsThrown:
    def test_formula(self):
        assert balls_thrown(100, 2.0) == pytest.approx(2 * 100 * math.log2(100))

    def test_rejects_degenerate(self):
        with pytest.raises(ConfigurationError):
            balls_thrown(1, 2.0)
        with pytest.raises(ConfigurationError):
            balls_thrown(100, 0.0)


class TestFixedProcessBound:
    def test_matches_direct_formula(self):
        n, c = 50, 2.0
        direct = (1 - 1 / n) ** (c * n * math.log2(n))
        assert p_hole_fixed_process(n, c) == pytest.approx(direct, rel=1e-9)

    def test_figure3a_scale_at_n1000(self):
        # Figure 3a: c=2 curve sits near 1e-9 at n=1000.
        assert -9.5 < log10_p_hole_fixed_process(1000, 2.0) < -8.0

    def test_larger_c_smaller_probability(self):
        assert log10_p_hole_fixed_process(500, 3.0) < log10_p_hole_fixed_process(
            500, 2.0
        )

    def test_no_underflow_in_log_space(self):
        # Tiny probabilities stay finite and exact in log space.
        value = log10_p_hole_fixed_process(100_000, 4.0)
        assert value < -25  # ~1e-29: below float-print noise, finite
        assert math.isfinite(value)
        huge = log10_p_hole_fixed_process(10_000, 50.0)
        assert huge < -100
        assert math.isfinite(huge)

    @given(
        st.integers(min_value=2, max_value=5000),
        st.floats(min_value=0.5, max_value=5.0),
    )
    def test_bound_is_a_probability(self, n, c):
        p = p_hole_fixed_process(n, c)
        assert 0.0 <= p <= 1.0


class TestAnyProcessBound:
    def test_union_bound_relationship(self):
        n, c = 300, 2.0
        assert log10_p_hole_any_process(n, c) == pytest.approx(
            math.log10(n) + log10_p_hole_fixed_process(n, c)
        )

    def test_capped_at_one(self):
        # For tiny c the union bound exceeds 1 and must cap.
        assert p_hole_any_process(2, 0.1) <= 1.0
        assert log10_p_hole_any_process(2, 0.1) == 0.0

    def test_figure3b_scale_at_n1000(self):
        # Figure 3b: c=2 curve sits near 1e-6 at n=1000.
        assert -6.5 < log10_p_hole_any_process(1000, 2.0) < -5.0

    @given(
        st.integers(min_value=2, max_value=5000),
        st.floats(min_value=0.5, max_value=5.0),
    )
    def test_any_is_weaker_than_fixed(self, n, c):
        assert log10_p_hole_any_process(n, c) >= log10_p_hole_fixed_process(n, c)


class TestSeries:
    def test_series_shape(self):
        series = hole_bound_series(2.0, sizes=[10, 100, 1000])
        assert len(series) == 3
        n, fixed, any_ = series[1]
        assert n == 100
        assert fixed <= any_ <= 0.0

    def test_monotone_decreasing_in_n(self):
        # The figure's visual: curves slope downward with n.
        series = hole_bound_series(2.0, sizes=list(range(10, 1001, 10)))
        fixed_values = [fixed for _, fixed, _ in series]
        assert fixed_values[0] > fixed_values[-1]


class TestSmallestC:
    def test_inverts_the_bound(self):
        n, target = 1000, 1e-12
        c = smallest_c_for_target(n, target)
        assert c > 1.0
        # At the returned c, the bound is at or below the target.
        assert log10_p_hole_any_process(n, c) <= math.log10(target) + 1e-6

    def test_looser_target_needs_smaller_c(self):
        assert smallest_c_for_target(1000, 1e-6) < smallest_c_for_target(1000, 1e-15)

    def test_rejects_bad_target(self):
        with pytest.raises(ConfigurationError):
            smallest_c_for_target(100, 0.0)
        with pytest.raises(ConfigurationError):
            smallest_c_for_target(100, 1.5)
