"""Tests for the empirical hole-probability estimator (paper §8.1)."""

from __future__ import annotations

import pytest

from repro.analysis.empirical import (
    HoleEstimate,
    estimate_hole_probability,
    smallest_reliable_ttl,
    ttl_sweep,
)
from repro.core.errors import ConfigurationError
from repro.core.params import min_fanout, min_ttl


class TestHoleEstimate:
    def test_miss_rate(self):
        estimate = HoleEstimate(
            n=10, fanout=3, rounds=5, trials=10, misses=9, exposures=90
        )
        assert estimate.miss_rate == pytest.approx(0.1)

    def test_wilson_upper_exceeds_point_estimate(self):
        estimate = HoleEstimate(
            n=10, fanout=3, rounds=5, trials=10, misses=9, exposures=90
        )
        assert estimate.wilson_upper() > estimate.miss_rate

    def test_wilson_upper_informative_at_zero_misses(self):
        estimate = HoleEstimate(
            n=10, fanout=3, rounds=5, trials=1000, misses=0, exposures=9000
        )
        upper = estimate.wilson_upper()
        assert 0.0 < upper < 0.01  # "at most ~1e-3" from 9000 clean obs

    def test_wilson_upper_capped_at_one(self):
        estimate = HoleEstimate(
            n=10, fanout=3, rounds=5, trials=1, misses=9, exposures=9
        )
        assert estimate.wilson_upper() <= 1.0


class TestEstimation:
    def test_theorem2_parameters_yield_zero_misses(self):
        n = 64
        estimate = estimate_hole_probability(
            n, min_fanout(n), min_ttl(n), trials=100, seed=1
        )
        assert estimate.misses == 0

    def test_starved_rounds_yield_misses(self):
        # 1 round of K=2 reaches at most 3 of 64 processes.
        estimate = estimate_hole_probability(64, 2, 1, trials=50, seed=1)
        assert estimate.miss_rate > 0.9

    def test_miss_rate_decreases_with_rounds(self):
        sweep = ttl_sweep(64, 4, ttls=[1, 2, 4, 8], trials=100, seed=2)
        rates = [e.miss_rate for e in sweep]
        assert rates == sorted(rates, reverse=True)
        assert rates[0] > rates[-1]

    def test_deterministic_given_seed(self):
        a = estimate_hole_probability(32, 3, 3, trials=50, seed=9)
        b = estimate_hole_probability(32, 3, 3, trials=50, seed=9)
        assert a.misses == b.misses

    def test_rejects_zero_trials(self):
        with pytest.raises(ConfigurationError):
            estimate_hole_probability(10, 2, 2, trials=0)


class TestBoundLooseness:
    """The §8.1 claim: the analytic bound is very conservative."""

    def test_empirical_far_below_bound_slack(self):
        # At the theoretical parameters the empirical miss rate is zero
        # over many trials; even the 99% Wilson upper limit sits above
        # the analytic bound only because the bound is astronomically
        # small — the point is the empirical protocol already achieves
        # "no misses observed" at far FEWER rounds than the bound needs.
        n = 64
        fanout = min_fanout(n)
        theory_ttl = min_ttl(n)
        reliable = smallest_reliable_ttl(n, fanout, max_ttl=theory_ttl, trials=50)
        # Paper §6: TTL can be relaxed to "much lower values" (15 -> 5
        # at n=100). Expect at least a factor-2 slack here too.
        assert reliable <= theory_ttl // 2

    def test_smallest_reliable_ttl_detects_impossible(self):
        # With fanout 1 and max_ttl 2, coverage of 64 nodes is hopeless.
        assert smallest_reliable_ttl(64, 1, max_ttl=2, trials=20) == 3
