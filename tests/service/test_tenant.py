"""ServiceReplica tenancy: state machines on service topics."""

from __future__ import annotations

import asyncio
from pathlib import Path

import pytest

from repro.core.config import EpToConfig
from repro.core.errors import MembershipError
from repro.service import ServiceCluster, ServiceReplica
from repro.smr import AppendLog, KeyValueStore
from repro.sync.config import SyncConfig

KV_TOPIC = 1
LOG_TOPIC = 2


def _run(coro):
    return asyncio.run(coro)


def _cluster(n=4, **kwargs):
    config = EpToConfig.for_system_size(n, round_interval=15)
    kwargs.setdefault("expected_size", n)
    kwargs.setdefault("seed", 21)
    return ServiceCluster(config, **kwargs)


def _attach_tenants(cluster):
    """One KV tenant and one log tenant per host, on separate topics."""
    kv, logs = {}, {}
    for host_id, service in cluster.hosts.items():
        kv[host_id] = ServiceReplica(service, KV_TOPIC, KeyValueStore())
        logs[host_id] = ServiceReplica(service, LOG_TOPIC, AppendLog())
    return kv, logs


class TestTenancy:
    def test_two_machines_converge_on_separate_topics(self):
        async def scenario():
            cluster = _cluster()
            cluster.open_topic(KV_TOPIC)
            cluster.open_topic(LOG_TOPIC)
            cluster.add_hosts(4)
            kv, logs = _attach_tenants(cluster)
            cluster.start_all()
            await kv[0].submit(("put", "a", 1))
            await kv[1].submit(("put", "b", 2))
            await logs[2].submit("first")
            await logs[3].submit("second")
            assert await cluster.wait_for_topic(KV_TOPIC, 2, timeout=10)
            assert await cluster.wait_for_topic(LOG_TOPIC, 2, timeout=10)
            assert len({r.digest() for r in kv.values()}) == 1
            assert len({r.digest() for r in logs.values()}) == 1
            assert kv[0].machine.get("a") == 1 and kv[0].machine.get("b") == 2
            assert kv[0].applied_count == 2
            await cluster.close_all()

        _run(scenario())

    def test_tenant_attaches_to_already_open_topic_once(self):
        async def scenario():
            cluster = _cluster(n=2)
            cluster.open_topic(KV_TOPIC)
            cluster.add_hosts(2)
            service = cluster.hosts[0]
            ServiceReplica(service, KV_TOPIC, KeyValueStore())
            with pytest.raises(MembershipError):
                ServiceReplica(service, KV_TOPIC, KeyValueStore())
            await cluster.close_all()

        _run(scenario())

    def test_tenant_opens_missing_topic_itself(self):
        async def scenario():
            cluster = _cluster(n=2)
            cluster.add_hosts(2)
            replicas = {
                host_id: ServiceReplica(service, 7, KeyValueStore())
                for host_id, service in cluster.hosts.items()
            }
            cluster.start_all()
            await replicas[0].submit(("put", "k", "v"))
            assert await cluster.wait_until(
                lambda: all(r.applied_count == 1 for r in replicas.values()),
                timeout=10,
            )
            await cluster.close_all()

        _run(scenario())

    def test_checkpoint_requires_storage(self):
        async def scenario():
            cluster = _cluster(n=2)
            cluster.add_hosts(2)
            replica = ServiceReplica(cluster.hosts[0], 1, KeyValueStore())
            with pytest.raises(MembershipError):
                replica.checkpoint()
            await cluster.close_all()

        _run(scenario())


class TestDurableTenancy:
    def test_machine_recovers_from_snapshot_plus_log(self, tmp_path):
        async def scenario():
            cluster = _cluster(
                n=4, storage_dir=tmp_path / "store", sync=SyncConfig()
            )
            cluster.open_topic(KV_TOPIC)
            cluster.add_hosts(4)
            kv = {
                host_id: ServiceReplica(service, KV_TOPIC, KeyValueStore())
                for host_id, service in cluster.hosts.items()
            }
            cluster.start_all()
            for i in range(3):
                await kv[0].submit(("put", f"k{i}", i))
            assert await cluster.wait_for_topic(KV_TOPIC, 3, timeout=10)
            kv[2].checkpoint()  # snapshot covers the first three
            await kv[1].submit(("put", "post", "snap"))
            assert await cluster.wait_for_topic(KV_TOPIC, 4, timeout=10)

            cluster.crash_host(2)
            await kv[0].submit(("put", "while-down", True))
            await asyncio.sleep(0.3)
            await cluster.respawn_host(2)
            assert await cluster.wait_for_topic(KV_TOPIC, 5, timeout=15)

            assert len({r.digest() for r in kv.values()}) == 1
            assert kv[2].machine.get("while-down") is True
            assert kv[2].applied_count == 5  # across both incarnations
            recovered = cluster.hosts[2].topics[KV_TOPIC].recoveries[-1]
            assert recovered.snapshot_index is not None  # snapshot used
            await cluster.close_all()

        _run(scenario())
