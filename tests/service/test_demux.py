"""Unit tests for the topic demux layer (routing, batching, faults)."""

from __future__ import annotations

import asyncio

import pytest

from repro.core.errors import MembershipError
from repro.core.event import BallEntry, Event, make_ball
from repro.runtime.codec import MAX_DATAGRAM, TopicEnvelope
from repro.runtime.transport import AsyncNetwork
from repro.service.demux import TopicDemux


def _ball(src=1, seq=0, payload=None):
    event = Event(id=(src, seq), ts=10 + seq, source_id=src, payload=payload)
    return make_ball([BallEntry(event, ttl=3)])


def _run(coro):
    return asyncio.run(coro)


class _Sink:
    """Handler recording (src, message) pairs."""

    def __init__(self):
        self.received = []

    def __call__(self, src, message):
        self.received.append((src, message))


class TestRouting:
    def test_frames_route_to_their_topic_only(self):
        async def scenario():
            network = AsyncNetwork()
            left = TopicDemux(network, host_id=0)
            right = TopicDemux(network, host_id=1)
            sink_a, sink_b = _Sink(), _Sink()
            right.channel(10).register(1, sink_a)
            right.channel(20).register(1, sink_b)
            ball_a, ball_b = _ball(seq=1), _ball(seq=2)
            left.channel(10).send(0, 1, ball_a)
            left.channel(20).send(0, 1, ball_b)
            await asyncio.sleep(0.05)
            assert sink_a.received == [(0, ball_a)]
            assert sink_b.received == [(0, ball_b)]

        _run(scenario())

    def test_same_tick_frames_share_one_envelope(self):
        async def scenario():
            network = AsyncNetwork()
            left = TopicDemux(network, host_id=0)
            right = TopicDemux(network, host_id=1)
            sink = _Sink()
            right.channel(10).register(1, sink)
            right.channel(20).register(1, sink)
            for topic in (10, 20):
                left.channel(topic).send(0, 1, _ball(seq=topic))
            await asyncio.sleep(0.05)
            assert left.stats.frames_sent == 2
            assert left.stats.envelopes_sent == 1
            assert right.stats.envelopes_received == 1
            assert right.stats.frames_delivered == 2

        _run(scenario())

    def test_unknown_topic_counted_not_raised(self):
        async def scenario():
            network = AsyncNetwork()
            left = TopicDemux(network, host_id=0)
            right = TopicDemux(network, host_id=1)
            sink = _Sink()
            right.channel(10).register(1, sink)
            left.channel(99).send(0, 1, _ball())
            await asyncio.sleep(0.05)
            assert sink.received == []
            assert right.stats.dropped_unknown_topic == 1

        _run(scenario())

    def test_closed_topic_becomes_unknown(self):
        async def scenario():
            network = AsyncNetwork()
            left = TopicDemux(network, host_id=0)
            right = TopicDemux(network, host_id=1)
            right.channel(10).register(1, _Sink())
            right.close_topic(10)
            left.channel(10).send(0, 1, _ball())
            await asyncio.sleep(0.05)
            assert right.stats.dropped_unknown_topic == 1

        _run(scenario())

    def test_non_envelope_traffic_counted(self):
        async def scenario():
            network = AsyncNetwork()
            demux = TopicDemux(network, host_id=1)
            demux.channel(10).register(1, _Sink())
            network.register(0, lambda src, message: None)
            network.send(0, 1, _ball())
            await asyncio.sleep(0.05)
            assert demux.stats.non_envelope_received == 1
            assert demux.stats.frames_delivered == 0

        _run(scenario())

    def test_send_many_fans_one_message_object(self):
        async def scenario():
            network = AsyncNetwork()
            left = TopicDemux(network, host_id=0)
            sinks = {}
            for host in (1, 2, 3):
                peer = TopicDemux(network, host_id=host)
                sinks[host] = _Sink()
                peer.channel(10).register(host, sinks[host])
            ball = _ball()
            left.channel(10).send_many(0, [1, 2, 3], ball)
            await asyncio.sleep(0.05)
            for host in (1, 2, 3):
                assert sinks[host].received == [(0, ball)]
            assert left.stats.envelopes_sent == 3  # one per destination

        _run(scenario())


class TestChannelGuards:
    def test_register_wrong_id_rejected(self):
        async def scenario():
            demux = TopicDemux(AsyncNetwork(), host_id=5)
            with pytest.raises(MembershipError):
                demux.channel(1).register(6, _Sink())

        _run(scenario())

    def test_double_register_rejected(self):
        async def scenario():
            demux = TopicDemux(AsyncNetwork(), host_id=5)
            channel = demux.channel(1)
            channel.register(5, _Sink())
            with pytest.raises(MembershipError):
                channel.register(5, _Sink())
            channel.unregister(5)
            channel.register(5, _Sink())  # re-register after unregister

        _run(scenario())

    def test_out_of_range_topic_rejected(self):
        async def scenario():
            demux = TopicDemux(AsyncNetwork(), host_id=0)
            for topic in (-1, 2**32):
                with pytest.raises(MembershipError):
                    demux.channel(topic)

        _run(scenario())


class TestPacking:
    def test_oversized_tick_splits_into_multiple_envelopes(self):
        async def scenario():
            network = AsyncNetwork()
            left = TopicDemux(network, host_id=0)
            right = TopicDemux(network, host_id=1)
            sink = _Sink()
            right.channel(10).register(1, sink)
            # Each ball ~20 KB: three cannot share one datagram.
            balls = [_ball(seq=i, payload="x" * 20_000) for i in range(3)]
            for ball in balls:
                left.channel(10).send(0, 1, ball)
            await asyncio.sleep(0.05)
            assert left.stats.envelopes_sent >= 2
            assert [message for _, message in sink.received] == balls

        _run(scenario())

    def test_unencodable_frame_dropped_others_survive(self):
        async def scenario():
            network = AsyncNetwork()
            left = TopicDemux(network, host_id=0)
            right = TopicDemux(network, host_id=1)
            sink = _Sink()
            right.channel(10).register(1, sink)
            good = _ball()
            too_big = _ball(payload="x" * (MAX_DATAGRAM + 1))
            left.channel(10).send(0, 1, too_big)
            left.channel(10).send(0, 1, good)
            await asyncio.sleep(0.05)
            assert left.stats.dropped_unencodable == 1
            assert sink.received == [(0, good)]

        _run(scenario())


class TestTopicFaults:
    def test_partition_isolates_one_topic(self):
        async def scenario():
            network = AsyncNetwork()
            left = TopicDemux(network, host_id=0)
            right = TopicDemux(network, host_id=1)
            sink_a, sink_b = _Sink(), _Sink()
            right.channel(10).register(1, sink_a)
            right.channel(20).register(1, sink_b)
            left.channel(10).set_partition({0: "west", 1: "east"})
            left.channel(10).send(0, 1, _ball(seq=1))
            left.channel(20).send(0, 1, _ball(seq=2))
            await asyncio.sleep(0.05)
            assert sink_a.received == []  # topic 10 partitioned
            assert len(sink_b.received) == 1  # topic 20 clean
            assert left.stats.dropped_partition == 1
            left.channel(10).heal_partition()
            left.channel(10).send(0, 1, _ball(seq=3))
            await asyncio.sleep(0.05)
            assert len(sink_a.received) == 1

        _run(scenario())

    def test_loss_burst_scoped_to_topic(self):
        async def scenario():
            network = AsyncNetwork()
            left = TopicDemux(network, host_id=0)
            right = TopicDemux(network, host_id=1)
            sink_a, sink_b = _Sink(), _Sink()
            right.channel(10).register(1, sink_a)
            right.channel(20).register(1, sink_b)
            left.channel(10).set_loss_burst(1.0, duration=60.0)
            for i in range(10):
                left.channel(10).send(0, 1, _ball(seq=i))
                left.channel(20).send(0, 1, _ball(seq=100 + i))
            await asyncio.sleep(0.05)
            assert sink_a.received == []
            assert len(sink_b.received) == 10
            assert left.stats.dropped_burst == 10

        _run(scenario())


class TestLifecycle:
    def test_detach_drops_pending_and_later_sends(self):
        async def scenario():
            network = AsyncNetwork()
            left = TopicDemux(network, host_id=0)
            right = TopicDemux(network, host_id=1)
            sink = _Sink()
            right.channel(10).register(1, sink)
            left.channel(10).send(0, 1, _ball(seq=1))
            left.detach()  # before the scheduled flush ran
            await asyncio.sleep(0.05)
            assert sink.received == []
            left.channel(10).send(0, 1, _ball(seq=2))
            assert left.stats.dropped_closed == 1
            left.attach()
            left.channel(10).send(0, 1, _ball(seq=3))
            await asyncio.sleep(0.05)
            assert len(sink.received) == 1

        _run(scenario())

    def test_envelope_equality_reaches_wire_shape(self):
        async def scenario():
            network = AsyncNetwork()
            left = TopicDemux(network, host_id=0)
            captured = []
            network.register(1, lambda src, message: captured.append(message))
            ball = _ball()
            left.channel(7).send(0, 1, ball)
            await asyncio.sleep(0.05)
            assert captured == [TopicEnvelope(frames=((7, 0, ball),))]

        _run(scenario())
