"""Regression: closing the fabric under a live service must be clean.

``UdpNetwork.close()`` historically only closed sockets; a service
stacked on top kept its round task alive, and tearing the loop down
then emitted asyncio's "Task was destroyed but it is pending!" warning.
The fabric now runs close listeners (the service's ``abort``) before
any socket dies, so a mid-round shutdown retires every task inside the
same ``close()`` call.
"""

from __future__ import annotations

import asyncio
import warnings

import pytest

from repro.core.config import EpToConfig
from repro.runtime.udp import UdpNetwork
from repro.service import BroadcastService, ServiceCluster


def _run(coro):
    return asyncio.run(coro)


class TestFabricCloseUnderLiveService:
    def test_no_pending_task_destroyed_warnings(self, recwarn):
        """Close the fabric mid-round with live topics; the loop must
        shut down without destroying pending tasks."""

        async def scenario():
            config = EpToConfig.for_system_size(4, round_interval=20)
            network = UdpNetwork(seed=1)
            cluster = ServiceCluster(
                config, network=network, expected_size=4, seed=1
            )
            cluster.open_topic(1)
            cluster.open_topic(2)
            cluster.add_hosts(4)
            await cluster.open_all()
            cluster.start_all()
            await cluster.publish(1, 0, "mid-flight")
            await cluster.publish(2, 1, "mid-flight-too")
            # Mid-round: close the *fabric*, not the services.
            await network.close()
            for service in cluster.hosts.values():
                assert not service.running

        with warnings.catch_warnings():
            warnings.simplefilter("error")  # any warning fails the test
            _run(scenario())

    def test_close_listener_runs_once(self):
        async def scenario():
            config = EpToConfig.for_system_size(2, round_interval=20)
            network = UdpNetwork(seed=2)
            calls = []
            network.add_close_listener(lambda: calls.append(1))
            service = BroadcastService(0, config, network, seed=2)
            service.open_topic(1)
            await network.open(0)
            service.start()
            await network.close()
            assert calls == [1]
            assert not service.running
            # A second close must not re-run the drained listeners.
            await network.close()
            assert calls == [1]

        _run(scenario())

    def test_abort_is_idempotent_and_restartable(self):
        async def scenario():
            config = EpToConfig.for_system_size(2, round_interval=20)
            network = UdpNetwork(seed=3)
            service = BroadcastService(0, config, network, seed=3)
            service.open_topic(1)
            await network.open(0)
            service.start()
            service.abort()
            service.abort()
            assert not service.running
            service.start()
            assert service.running
            await service.close()
            await network.close()

        _run(scenario())

    def test_service_close_then_fabric_close_is_clean(self):
        async def scenario():
            config = EpToConfig.for_system_size(4, round_interval=20)
            network = UdpNetwork(seed=4)
            cluster = ServiceCluster(
                config, network=network, expected_size=4, seed=4
            )
            cluster.open_topic(1)
            cluster.add_hosts(4)
            await cluster.open_all()
            cluster.start_all()
            await cluster.publish(1, 0, "x")
            await cluster.close_all()  # services first, then fabric

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            _run(scenario())
