"""ServiceCluster integration: the issue's acceptance scenario.

A 4-topic loopback cluster over one shared socket per host must deliver
every topic in total order (per-topic ``check_survivors`` clean) and
exactly-once across a crash/respawn via per-topic journals.
"""

from __future__ import annotations

import asyncio
from pathlib import Path

import pytest

from repro.core.config import EpToConfig
from repro.runtime.udp import UdpNetwork
from repro.service import ServiceCluster
from repro.sync.config import SyncConfig

TOPICS = (1, 2, 3, 4)


def _run(coro):
    return asyncio.run(coro)


def _build(tmp_path: Path, n=6, interval=25, seed=5):
    config = EpToConfig.for_system_size(n, round_interval=interval)
    network = UdpNetwork(seed=seed)
    cluster = ServiceCluster(
        config,
        network=network,
        storage_dir=tmp_path / "store",
        sync=SyncConfig(),
        expected_size=n,
        seed=seed,
    )
    for topic in TOPICS:
        cluster.open_topic(topic)
    cluster.add_hosts(n)
    return cluster


class TestAcceptance:
    def test_four_topics_one_socket_crash_respawn_exactly_once(self, tmp_path):
        async def scenario():
            cluster = _build(tmp_path)
            network = cluster.network
            await cluster.open_all()
            cluster.start_all()
            # One socket per host, not one per (host, topic).
            assert len(network._transports) == len(cluster.hosts)

            for i in range(4):
                for topic in TOPICS:
                    await cluster.publish(topic, i % 6, f"t{topic}-{i}")
            assert await cluster.wait_for_topic(TOPICS[0], 4, timeout=15)

            cluster.crash_host(2)
            for i in range(4, 8):
                publisher = i % 6 if i % 6 != 2 else 0
                for topic in TOPICS:
                    await cluster.publish(topic, publisher, f"t{topic}-{i}")
            await asyncio.sleep(1.0)
            await cluster.respawn_host(2)

            for topic in TOPICS:
                assert await cluster.wait_for_topic(
                    topic, 8, timeout=30
                ), f"topic {topic} stalled"
                report = cluster.check_topic(topic)
                assert report.ok, f"topic {topic}: {report.summary()}"

            # Exactly-once on the recovered host: no delivery id repeats
            # across its pre-crash history and post-respawn suffix.
            recovered = cluster.hosts[2]
            for topic in TOPICS:
                state = recovered.topics[topic]
                assert state.restart_indices, "respawn was not recorded"
                ids = [event.id for event in state.deliveries]
                assert len(ids) == len(set(ids)), f"duplicate on topic {topic}"
                assert state.recoveries, "no durable recovery ran"

            # Cross-topic batching really happened: strictly fewer
            # datagrams than frames shipped.
            frames = sum(s.demux.stats.frames_sent for s in cluster.hosts.values())
            envelopes = sum(
                s.demux.stats.envelopes_sent for s in cluster.hosts.values()
            )
            assert 0 < envelopes < frames
            await cluster.close_all()

        _run(scenario())

    def test_per_topic_journals_live_in_separate_dirs(self, tmp_path):
        async def scenario():
            cluster = _build(tmp_path, n=4)
            await cluster.open_all()
            cluster.start_all()
            await cluster.publish(1, 0, "x")
            assert await cluster.wait_for_topic(1, 1, timeout=10)
            await cluster.close_all()
            host_root = cluster.host_storage_dir(0)
            assert (host_root / "topic-1").is_dir()
            assert (host_root / "topic-2").is_dir()

        _run(scenario())


class TestPerTopicFaults:
    def test_partitioned_topic_heals_while_other_flows(self):
        async def scenario():
            config = EpToConfig.for_system_size(6, round_interval=15)
            cluster = ServiceCluster(config, expected_size=6, seed=9)
            cluster.open_topic(1)
            cluster.open_topic(2)
            cluster.add_hosts(6)
            cluster.start_all()

            # Cut topic 1's publisher (host 0) off from everyone, on
            # topic 1 only.
            groups = {0: "lonely"}
            cluster.set_topic_partition(1, groups)
            await cluster.publish(1, 0, "stuck")
            await cluster.publish(2, 0, "flows")
            assert await cluster.wait_for_topic(2, 1, timeout=10)
            # Topic 1 must not have crossed the partition to host 1+.
            assert all(
                cluster.hosts[h].deliveries(1) == [] for h in range(1, 6)
            )
            cluster.heal_topic_partition(1)
            await cluster.publish(1, 1, "after-heal")
            assert await cluster.wait_until(
                lambda: all(
                    any(
                        e.payload == "after-heal"
                        for e in cluster.hosts[h].deliveries(1)
                    )
                    for h in range(6)
                ),
                timeout=10,
            )
            # Topic 2 (never faulted) passes the full survivor check;
            # topic 1's unpartitioned majority agrees among itself (the
            # isolated publisher may have locally delivered the event
            # the partition swallowed — that is the partition's cost,
            # not a bug).
            assert cluster.check_topic(2).ok
            from repro.faults.verify import check_survivors

            majority = check_survivors(
                {h: cluster.hosts[h].deliveries(1) for h in range(1, 6)},
                survivors=range(1, 6),
            )
            assert majority.ok, majority.summary()
            await cluster.close_all()

        _run(scenario())

    def test_topic_loss_burst_delays_only_that_topic(self):
        async def scenario():
            config = EpToConfig.for_system_size(4, round_interval=15)
            cluster = ServiceCluster(config, expected_size=4, seed=13)
            cluster.open_topic(1)
            cluster.open_topic(2)
            cluster.add_hosts(4)
            cluster.start_all()
            cluster.set_topic_loss(1, rate=1.0, duration=0.3)
            await cluster.publish(1, 0, "lossy")
            await cluster.publish(2, 0, "clean")
            assert await cluster.wait_for_topic(2, 1, timeout=10)
            dropped = sum(
                s.demux.stats.dropped_burst for s in cluster.hosts.values()
            )
            assert dropped > 0
            # The burst outlives the lossy event's TTL (it may be gone
            # for good — UDP semantics); what matters is that the topic
            # itself recovers once the window closes.
            await asyncio.sleep(0.35)
            await cluster.publish(1, 1, "after-burst")
            assert await cluster.wait_until(
                lambda: all(
                    any(
                        e.payload == "after-burst"
                        for e in s.deliveries(1)
                    )
                    for s in cluster.hosts.values()
                ),
                timeout=10,
            )
            await cluster.close_all()

        _run(scenario())
