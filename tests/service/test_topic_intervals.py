"""Per-topic round-interval overrides on one host (satellite of the
lazy-push PR): two topics on the same :class:`BroadcastService` must
tick at their own cadences, while topics left on the default keep
ticking together (preserving cross-topic envelope batching)."""

from __future__ import annotations

import asyncio

import pytest

from repro.core.config import EpToConfig
from repro.core.errors import MembershipError
from repro.runtime.transport import AsyncNetwork
from repro.service import BroadcastService


def _host(interval=200):
    config = EpToConfig.for_system_size(4, round_interval=interval)
    return BroadcastService(
        host_id=0, config=config, network=AsyncNetwork(seed=5), seed=5
    )


def _run(coro):
    return asyncio.run(coro)


class TestOverride:
    def test_two_topics_tick_at_different_rates_on_one_host(self):
        async def scenario():
            host = _host(interval=200)
            fast = host.open_topic(1, round_interval=10)
            slow = host.open_topic(2, round_interval=80)
            host.start()
            try:
                await asyncio.sleep(0.5)
            finally:
                await host.close()
            # ~50 fast ticks vs ~6 slow ones; demand a conservative
            # gap so scheduler jitter cannot flake the assertion.
            assert fast.rounds_ticked >= 2 * slow.rounds_ticked
            assert slow.rounds_ticked >= 2
            return fast.rounds_ticked, slow.rounds_ticked

        fast_ticks, slow_ticks = _run(scenario())
        assert fast_ticks > slow_ticks

    def test_default_topics_share_the_host_cadence(self):
        async def scenario():
            host = _host(interval=20)
            first = host.open_topic(1)
            second = host.open_topic(2)
            host.start()
            try:
                await asyncio.sleep(0.3)
            finally:
                await host.close()
            # Same cadence: the round loop ticks both in one iteration.
            assert abs(first.rounds_ticked - second.rounds_ticked) <= 1
            assert first.rounds_ticked >= 5

        _run(scenario())

    def test_manual_tick_drives_every_cadence(self):
        async def scenario():
            host = _host()
            fast = host.open_topic(1, round_interval=10)
            slow = host.open_topic(2, round_interval=1000)
            host.tick()
            host.tick()
            assert fast.rounds_ticked == 2
            assert slow.rounds_ticked == 2
            await host.close()

        _run(scenario())

    def test_topic_opened_mid_flight_joins_its_own_cadence(self):
        async def scenario():
            host = _host(interval=200)
            host.open_topic(1, round_interval=60)
            host.start()
            await asyncio.sleep(0.15)
            late = host.open_topic(2, round_interval=10)
            try:
                await asyncio.sleep(0.3)
            finally:
                await host.close()
            assert late.rounds_ticked >= 5

        _run(scenario())


class TestValidation:
    def test_nonpositive_interval_rejected(self):
        async def scenario():
            host = _host()
            with pytest.raises(MembershipError, match="round_interval"):
                host.open_topic(1, round_interval=0)
            with pytest.raises(MembershipError, match="round_interval"):
                host.open_topic(1, round_interval=-5)
            # The failed opens left no topic state behind.
            assert host.topics == {}
            await host.close()

        _run(scenario())
