"""BroadcastService host behavior: pub/sub, backpressure, lifecycle."""

from __future__ import annotations

import asyncio

import pytest

from repro.core.config import EpToConfig
from repro.core.errors import MembershipError
from repro.service import (
    BackpressureError,
    BroadcastService,
    ServiceCluster,
    Subscription,
)


def _config(n=4, interval=15):
    return EpToConfig.for_system_size(n, round_interval=interval)


def _cluster(n=4, **kwargs):
    kwargs.setdefault("expected_size", n)
    kwargs.setdefault("seed", 11)
    return ServiceCluster(_config(n), **kwargs)


def _run(coro):
    return asyncio.run(coro)


class TestPublishSubscribe:
    def test_subscription_yields_total_order(self):
        async def scenario():
            cluster = _cluster()
            cluster.open_topic(1)
            cluster.add_hosts(4)
            subscription = cluster.hosts[3].subscribe(1)
            cluster.start_all()
            for i in range(6):
                await cluster.publish(1, i % 4, i)
            assert await cluster.wait_for_topic(1, 6, timeout=10)
            received = []
            async for event in subscription:
                received.append(event)
                if len(received) == 6:
                    break
            assert received == cluster.hosts[3].deliveries(1)
            subscription.close()
            await cluster.close_all()

        _run(scenario())

    def test_publish_on_unopened_topic_rejected(self):
        async def scenario():
            cluster = _cluster()
            cluster.open_topic(1)
            cluster.add_hosts(2)
            with pytest.raises(MembershipError):
                await cluster.hosts[0].publish(99, "nope")
            with pytest.raises(MembershipError):
                cluster.hosts[0].subscribe(99)
            await cluster.close_all()

        _run(scenario())

    def test_topics_deliver_independently(self):
        async def scenario():
            cluster = _cluster()
            cluster.open_topic(1)
            cluster.open_topic(2)
            cluster.add_hosts(4)
            cluster.start_all()
            await cluster.publish(1, 0, "only-topic-1")
            assert await cluster.wait_for_topic(1, 1, timeout=10)
            for service in cluster.hosts.values():
                assert [e.payload for e in service.deliveries(1)] == ["only-topic-1"]
                assert service.deliveries(2) == []
            await cluster.close_all()

        _run(scenario())

    def test_closed_subscription_drains_then_stops(self):
        async def scenario():
            cluster = _cluster(n=2)
            cluster.open_topic(1)
            cluster.add_hosts(2)
            cluster.start_all()
            subscription = cluster.hosts[0].subscribe(1)
            await cluster.publish(1, 0, "a")
            assert await cluster.wait_for_topic(1, 1, timeout=10)
            subscription.close()
            drained = [event.payload async for event in subscription]
            assert drained == ["a"]
            await cluster.close_all()

        _run(scenario())


class TestBackpressure:
    def test_fail_fast_publish_raises(self):
        async def scenario():
            cluster = _cluster(max_pending=3)
            cluster.open_topic(1)
            cluster.add_hosts(4)
            # Round task not started: the buffer can only fill up.
            for i in range(3):
                await cluster.publish(1, 0, i, wait=False)
            with pytest.raises(BackpressureError):
                await cluster.publish(1, 0, "over", wait=False)
            assert cluster.hosts[0].stats.publish_rejected == 1
            assert cluster.hosts[0].stats.published == 3
            await cluster.close_all()

        _run(scenario())

    def test_blocking_publish_waits_for_a_round(self):
        async def scenario():
            cluster = _cluster(max_pending=2)
            cluster.open_topic(1)
            cluster.add_hosts(4)
            host = cluster.hosts[0]
            await cluster.publish(1, 0, "a")
            await cluster.publish(1, 0, "b")
            blocked = asyncio.ensure_future(cluster.publish(1, 0, "c"))
            await asyncio.sleep(0.05)
            assert not blocked.done()  # round task not running yet
            assert host.stats.publish_blocked >= 1
            cluster.start_all()
            await asyncio.wait_for(blocked, timeout=5)
            assert host.stats.published == 3
            assert await cluster.wait_for_topic(1, 3, timeout=10)
            await cluster.close_all()

        _run(scenario())

    def test_lagging_subscriber_drops_and_counts(self):
        async def scenario():
            cluster = _cluster(n=2)
            cluster.open_topic(1)
            cluster.add_hosts(2)
            host = cluster.hosts[0]
            subscription = host.subscribe(1, maxlen=2)
            cluster.start_all()
            for i in range(5):
                await cluster.publish(1, 0, i)
            assert await cluster.wait_for_topic(1, 5, timeout=10)
            assert host.stats.subscriber_lagged == 3
            # The two oldest buffered events are still readable.
            assert (await subscription.__anext__()).payload == 0
            assert (await subscription.__anext__()).payload == 1
            subscription.close()
            # The host's own record is complete regardless.
            assert len(host.deliveries(1)) == 5
            await cluster.close_all()

        _run(scenario())


class TestLifecycle:
    def test_open_topic_twice_rejected(self):
        async def scenario():
            cluster = _cluster(n=2)
            cluster.open_topic(1)
            cluster.add_hosts(1)
            with pytest.raises(MembershipError):
                cluster.hosts[0].open_topic(1)
            with pytest.raises(MembershipError):
                cluster.open_topic(1)
            await cluster.close_all()

        _run(scenario())

    def test_close_topic_releases_membership(self):
        async def scenario():
            cluster = _cluster()
            cluster.open_topic(1)
            cluster.add_hosts(3)
            cluster.start_all()
            assert len(cluster.directories[1]) == 3
            await cluster.hosts[2].close_topic(1)
            assert len(cluster.directories[1]) == 2
            # The remaining hosts still converge without the leaver.
            await cluster.publish(1, 0, "post-leave")
            assert await cluster.wait_until(
                lambda: all(
                    len(cluster.hosts[h].deliveries(1)) == 1 for h in (0, 1)
                ),
                timeout=10,
            )
            await cluster.close_all()

        _run(scenario())

    def test_topic_opened_later_joins_running_service(self):
        async def scenario():
            cluster = _cluster()
            cluster.open_topic(1)
            cluster.add_hosts(4)
            cluster.start_all()
            await cluster.publish(1, 0, "pre")
            assert await cluster.wait_for_topic(1, 1, timeout=10)
            cluster.open_topic(2)  # while round tasks are live
            await cluster.publish(2, 1, "late-topic")
            assert await cluster.wait_for_topic(2, 1, timeout=10)
            await cluster.close_all()

        _run(scenario())

    def test_sync_without_storage_rejected(self):
        from repro.sync.config import SyncConfig

        async def scenario():
            with pytest.raises(MembershipError):
                BroadcastService(
                    0, _config(), object(), sync=SyncConfig(), storage_dir=None
                )

        _run(scenario())

    def test_subscription_is_async_iterator(self):
        async def scenario():
            cluster = _cluster(n=2)
            cluster.open_topic(1)
            cluster.add_hosts(2)
            subscription = cluster.hosts[0].subscribe(1)
            assert isinstance(subscription, Subscription)
            assert aiter(subscription) is subscription
            await cluster.close_all()

        _run(scenario())
