"""Encode-once fan-out at the dissemination layer.

A round's ball is identical for every peer, so a transport exposing
``send_many`` receives one call with the peer list (and can serialize
once); plain ``send``-only transports keep the per-peer loop.
"""

from __future__ import annotations

from typing import Any, List, Tuple

from repro.core.config import EpToConfig
from repro.core.dissemination import DisseminationComponent
from repro.core.interfaces import FanoutTransport, Transport

from ..conftest import ManualOracle, RecordingTransport, StaticPeerSampler


class FanoutRecordingTransport(RecordingTransport):
    """Transport advertising the batched fan-out surface."""

    def __init__(self) -> None:
        super().__init__()
        self.batches: List[Tuple[int, List[int], Any]] = []

    def send_many(self, src: int, dsts, ball: Any) -> None:
        self.batches.append((src, list(dsts), ball))
        for dst in dsts:
            self.sent.append((src, dst, ball))


def build(transport, fanout=3):
    config = EpToConfig(fanout=fanout, ttl=4, round_interval=10)
    return DisseminationComponent(
        node_id=0,
        config=config,
        oracle=ManualOracle(ttl=4),
        peer_sampler=StaticPeerSampler([1, 2, 3, 4]),
        transport=transport,
        order_events=lambda ball: None,
    )


class TestFanoutProtocol:
    def test_protocols_distinguish_batched_transports(self):
        assert isinstance(FanoutRecordingTransport(), Transport)
        assert isinstance(FanoutRecordingTransport(), FanoutTransport)
        assert isinstance(RecordingTransport(), Transport)
        assert not isinstance(RecordingTransport(), FanoutTransport)


class TestEncodeOnceFanout:
    def test_send_many_used_when_available(self):
        transport = FanoutRecordingTransport()
        component = build(transport)
        component.broadcast("payload")
        component.round_tick()

        assert len(transport.batches) == 1
        src, dsts, ball = transport.batches[0]
        assert src == 0
        assert dsts == [1, 2, 3]
        assert component.stats.balls_sent == 3

    def test_every_peer_gets_the_same_ball_object(self):
        transport = FanoutRecordingTransport()
        component = build(transport)
        component.broadcast("shared")
        component.round_tick()

        balls = [ball for _, _, ball in transport.sent]
        assert len(balls) == 3
        assert all(ball is balls[0] for ball in balls)

    def test_send_only_transport_falls_back_to_per_peer_loop(self):
        transport = RecordingTransport()
        component = build(transport)
        component.broadcast("payload")
        component.round_tick()

        assert [dst for _, dst, _ in transport.sent] == [1, 2, 3]
        assert component.stats.balls_sent == 3

    def test_fallback_and_fanout_ship_identical_balls(self):
        plain, batched = RecordingTransport(), FanoutRecordingTransport()
        for transport in (plain, batched):
            component = build(transport)
            component.broadcast("same")
            component.round_tick()
        plain_balls = [ball for _, _, ball in plain.sent]
        batched_balls = [ball for _, _, ball in batched.sent]
        assert [
            [(e.event.id, e.ttl) for e in ball] for ball in plain_balls
        ] == [[(e.event.id, e.ttl) for e in ball] for ball in batched_balls]
