"""Property-based tests (hypothesis) for the dissemination component.

Drive Algorithm 1 with arbitrary interleavings of broadcasts, incoming
balls (with arbitrary TTLs, duplicates included) and round ticks, and
assert its structural invariants:

* nothing with ``ttl >= TTL`` is ever queued or relayed;
* relayed TTLs equal the highest sighting plus exactly one aging step;
* ``nextBall`` never holds two entries for one event id;
* every ball handed to the ordering component is also what was put on
  the wire that round (and vice versa), for non-empty rounds.
"""

from __future__ import annotations

import random
from typing import List

from hypothesis import given, settings, strategies as st

from repro.core import EpToConfig
from repro.core.dissemination import DisseminationComponent
from repro.core.event import Ball, BallEntry, Event, make_ball

from ..conftest import RecordingTransport, StaticPeerSampler, ManualOracle

TTL = 5


@st.composite
def action_sequences(draw):
    """A random schedule of broadcast / receive / round actions."""
    count = draw(st.integers(min_value=1, max_value=25))
    actions = []
    for _ in range(count):
        kind = draw(st.sampled_from(["broadcast", "receive", "round"]))
        if kind == "receive":
            entries = draw(
                st.lists(
                    st.tuples(
                        st.integers(min_value=100, max_value=104),  # src
                        st.integers(min_value=0, max_value=3),  # seq
                        st.integers(min_value=0, max_value=9),  # ts
                        st.integers(min_value=0, max_value=TTL + 2),  # ttl
                    ),
                    max_size=6,
                )
            )
            actions.append(("receive", entries))
        else:
            actions.append((kind, None))
    return actions


def run_schedule(actions) -> tuple[DisseminationComponent, RecordingTransport, List[Ball]]:
    config = EpToConfig(fanout=3, ttl=TTL, clock="logical")
    transport = RecordingTransport()
    ordered: List[Ball] = []
    component = DisseminationComponent(
        node_id=0,
        config=config,
        oracle=ManualOracle(ttl=TTL),
        peer_sampler=StaticPeerSampler([1, 2, 3]),
        transport=transport,
        order_events=ordered.append,
        rng=random.Random(0),
    )
    for kind, payload in actions:
        if kind == "broadcast":
            component.broadcast("data")
        elif kind == "round":
            component.round_tick()
        else:
            entries = [
                BallEntry(Event(id=(src, seq), ts=ts, source_id=src), ttl=ttl)
                for src, seq, ts, ttl in payload
            ]
            component.receive_ball(make_ball(entries))
    return component, transport, ordered


@settings(max_examples=200, deadline=None)
@given(action_sequences())
def test_never_relays_expired_events(actions):
    _, transport, _ = run_schedule(actions)
    for _, _, ball in transport.sent:
        for entry in ball:
            # Aging happens before sending, so on-the-wire TTLs are at
            # most TTL (queued strictly below, plus one increment).
            assert entry.ttl <= TTL


@settings(max_examples=200, deadline=None)
@given(action_sequences())
def test_no_duplicate_ids_in_sent_balls(actions):
    _, transport, _ = run_schedule(actions)
    for _, _, ball in transport.sent:
        ids = [entry.event.id for entry in ball]
        assert len(ids) == len(set(ids))


@settings(max_examples=200, deadline=None)
@given(action_sequences())
def test_wire_and_ordering_see_the_same_rounds(actions):
    component, transport, ordered = run_schedule(actions)
    # Group wire traffic per round: fanout peers get the same object.
    wire_balls = []
    for _, _, ball in transport.sent:
        if not wire_balls or wire_balls[-1] is not ball:
            wire_balls.append(ball)
    non_empty_ordered = [ball for ball in ordered if ball]
    assert wire_balls == non_empty_ordered


@settings(max_examples=200, deadline=None)
@given(action_sequences())
def test_round_always_clears_next_ball(actions):
    component, _, _ = run_schedule(actions)
    component.round_tick()
    assert component.next_ball_size == 0


@settings(max_examples=150, deadline=None)
@given(action_sequences())
def test_relayed_ttl_is_max_sighting_plus_one(actions):
    """For each sent ball entry, its TTL equals the highest TTL this
    process had seen for that event in the preceding round, plus one."""
    config = EpToConfig(fanout=1, ttl=TTL, clock="logical")
    transport = RecordingTransport()
    component = DisseminationComponent(
        node_id=0,
        config=config,
        oracle=ManualOracle(ttl=TTL),
        peer_sampler=StaticPeerSampler([1]),
        transport=transport,
        order_events=lambda ball: None,
        rng=random.Random(0),
    )
    best_seen: dict = {}
    for kind, payload in actions:
        if kind == "broadcast":
            event = component.broadcast("d")
            best_seen[event.id] = 0
        elif kind == "receive":
            entries = [
                BallEntry(Event(id=(src, seq), ts=ts, source_id=src), ttl=ttl)
                for src, seq, ts, ttl in payload
            ]
            for entry in entries:
                if entry.ttl < TTL:
                    best = best_seen.get(entry.event.id)
                    if best is None or entry.ttl > best:
                        best_seen[entry.event.id] = entry.ttl
            component.receive_ball(make_ball(entries))
        else:
            before = transport.sent.copy()
            component.round_tick()
            for _, _, ball in transport.sent[len(before):]:
                for entry in ball:
                    assert entry.ttl == best_seen[entry.event.id] + 1
            best_seen.clear()
