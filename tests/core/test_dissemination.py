"""Unit tests for the dissemination component (Algorithm 1)."""

from __future__ import annotations

import random

import pytest

from repro.core import EpToConfig
from repro.core.dissemination import DisseminationComponent
from repro.core.event import BallEntry, make_ball

from ..conftest import ManualOracle, RecordingTransport, StaticPeerSampler, make_event


def build(
    node_id: int = 0,
    fanout: int = 2,
    ttl: int = 3,
    peers: list[int] | None = None,
    clock: str = "global",
):
    """Wire a dissemination component with recording collaborators."""
    config = EpToConfig(fanout=fanout, ttl=ttl, clock=clock)
    transport = RecordingTransport()
    sampler = StaticPeerSampler(peers if peers is not None else [1, 2, 3])
    oracle = ManualOracle(ttl=ttl)
    ordered_balls: list = []
    component = DisseminationComponent(
        node_id=node_id,
        config=config,
        oracle=oracle,
        peer_sampler=sampler,
        transport=transport,
        order_events=ordered_balls.append,
        rng=random.Random(0),
    )
    return component, transport, sampler, oracle, ordered_balls


class TestBroadcast:
    def test_stamps_clock_and_source(self):
        component, *_ = build(node_id=9)
        component.oracle.clock = 55
        event = component.broadcast("payload")
        assert event.ts == 55
        assert event.source_id == 9
        assert event.payload == "payload"

    def test_queues_with_ttl_zero(self):
        component, transport, *_ = build()
        component.broadcast()
        assert component.next_ball_size == 1
        component.round_tick()
        sent_ball = transport.sent[0][2]
        # Round tick ages the queued event once before sending.
        assert sent_ball[0].ttl == 1

    def test_sequential_broadcasts_get_distinct_ids(self):
        component, *_ = build()
        a = component.broadcast()
        b = component.broadcast()
        assert a.id != b.id
        assert a.order_key < b.order_key or a.ts == b.ts


class TestReceiveBall:
    def test_fresh_event_queued_for_relay(self):
        component, *_ = build(ttl=3)
        ball = make_ball([BallEntry(make_event(src=5), ttl=1)])
        component.receive_ball(ball)
        assert component.next_ball_size == 1

    def test_expired_event_dropped(self):
        component, *_ = build(ttl=3)
        ball = make_ball([BallEntry(make_event(src=5), ttl=3)])  # ttl >= TTL
        component.receive_ball(ball)
        assert component.next_ball_size == 0
        assert component.stats.entries_expired == 1

    def test_duplicate_keeps_max_ttl(self):
        component, transport, *_ = build(ttl=10)
        event = make_event(src=5)
        component.receive_ball(make_ball([BallEntry(event, ttl=2)]))
        component.receive_ball(make_ball([BallEntry(event, ttl=7)]))
        component.receive_ball(make_ball([BallEntry(event, ttl=4)]))
        assert component.next_ball_size == 1
        component.round_tick()
        assert transport.sent[0][2][0].ttl == 8  # max(7) + 1 aging

    def test_logical_clock_updated_per_entry(self):
        component, _, _, oracle, _ = build(clock="logical")
        ball = make_ball(
            [
                BallEntry(make_event(src=1, ts=10), ttl=0),
                BallEntry(make_event(src=2, ts=20), ttl=0),
            ]
        )
        component.receive_ball(ball)
        assert oracle.updates == [10, 20]

    def test_global_clock_skips_updates(self):
        component, _, _, oracle, _ = build(clock="global")
        component.receive_ball(make_ball([BallEntry(make_event(src=1, ts=10), 0)]))
        assert oracle.updates == []

    def test_expired_event_still_updates_logical_clock(self):
        # Even non-relayed events carry causality information.
        component, _, _, oracle, _ = build(clock="logical", ttl=2)
        component.receive_ball(make_ball([BallEntry(make_event(src=1, ts=99), 2)]))
        assert oracle.updates == [99]


class TestRoundTick:
    def test_sends_to_fanout_peers(self):
        component, transport, sampler, *_ = build(fanout=3, peers=[4, 5, 6, 7])
        component.broadcast()
        component.round_tick()
        assert sampler.calls == [3]
        assert [dst for _, dst, _ in transport.sent] == [4, 5, 6]

    def test_empty_round_sends_nothing_but_orders(self):
        component, transport, _, _, ordered = build()
        component.round_tick()
        assert transport.sent == []
        assert ordered == [()]  # ordering still invoked with empty ball

    def test_ball_passed_to_ordering(self):
        component, _, _, _, ordered = build()
        event = component.broadcast()
        component.round_tick()
        assert len(ordered) == 1
        assert ordered[0][0].event == event

    def test_next_ball_reset_after_round(self):
        component, transport, *_ = build()
        component.broadcast()
        component.round_tick()
        transport.clear()
        component.round_tick()
        assert transport.sent == []  # nothing left to relay

    def test_same_ball_object_shared_across_peers(self):
        component, transport, *_ = build(fanout=3, peers=[1, 2, 3])
        component.broadcast()
        component.round_tick()
        balls = [ball for _, _, ball in transport.sent]
        assert balls[0] is balls[1] is balls[2]

    def test_relay_chain_increments_ttl_per_round(self):
        component, transport, *_ = build(ttl=5)
        event = make_event(src=9)
        component.receive_ball(make_ball([BallEntry(event, ttl=1)]))
        component.round_tick()
        assert transport.sent[0][2][0].ttl == 2
        # Receiving it again with the ttl we just relayed does not loop
        # it back up.
        component.receive_ball(make_ball([BallEntry(event, ttl=2)]))
        transport.clear()
        component.round_tick()
        assert transport.sent[0][2][0].ttl == 3

    def test_event_stops_being_relayed_at_ttl(self):
        component, transport, *_ = build(ttl=2)
        event = make_event(src=9)
        component.receive_ball(make_ball([BallEntry(event, ttl=1)]))
        component.round_tick()  # relayed at ttl 2
        transport.clear()
        # A later copy at the bound is not re-queued.
        component.receive_ball(make_ball([BallEntry(event, ttl=2)]))
        component.round_tick()
        assert transport.sent == []


class TestStats:
    def test_counters(self):
        component, *_ = build(fanout=2, peers=[1, 2])
        component.broadcast()
        component.receive_ball(make_ball([BallEntry(make_event(src=3), 0)]))
        component.round_tick()
        stats = component.stats
        assert stats.events_broadcast == 1
        assert stats.balls_received == 1
        assert stats.entries_received == 1
        assert stats.balls_sent == 2
        assert stats.rounds == 1
