"""Unit tests for EpToConfig (repro.core.config)."""

from __future__ import annotations

import pytest

from repro.core import EpToConfig
from repro.core.errors import ConfigurationError
from repro.core.params import min_fanout, min_ttl


class TestValidation:
    def test_valid_config(self):
        config = EpToConfig(fanout=5, ttl=10)
        assert config.fanout == 5
        assert config.clock == "global"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"fanout": 0, "ttl": 1},
            {"fanout": 1, "ttl": 0},
            {"fanout": 1, "ttl": 1, "round_interval": 0},
            {"fanout": 1, "ttl": 1, "clock": "vector"},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            EpToConfig(**kwargs)

    def test_frozen(self):
        config = EpToConfig(fanout=5, ttl=10)
        with pytest.raises(AttributeError):
            config.fanout = 6  # type: ignore[misc]


class TestWithOverrides:
    def test_overrides_selected_fields(self):
        config = EpToConfig(fanout=5, ttl=10)
        updated = config.with_overrides(ttl=3)
        assert updated.ttl == 3
        assert updated.fanout == 5
        assert config.ttl == 10  # original untouched

    def test_override_revalidates(self):
        config = EpToConfig(fanout=5, ttl=10)
        with pytest.raises(ConfigurationError):
            config.with_overrides(ttl=0)


class TestForSystemSize:
    def test_uses_theoretical_bounds(self):
        config = EpToConfig.for_system_size(200)
        assert config.fanout == min_fanout(200)
        assert config.ttl == min_ttl(200)

    def test_logical_clock_propagates(self):
        config = EpToConfig.for_system_size(200, clock="logical")
        assert config.clock == "logical"
        assert config.ttl == min_ttl(200, clock="logical")

    def test_churn_and_loss_inflate_fanout(self):
        lossy = EpToConfig.for_system_size(200, churn_rate=0.1, loss_rate=0.1)
        clean = EpToConfig.for_system_size(200)
        assert lossy.fanout > clean.fanout

    def test_extra_flags_forwarded(self):
        config = EpToConfig.for_system_size(
            200, tagged_delivery=True, expose_stability=True
        )
        assert config.tagged_delivery
        assert config.expose_stability
