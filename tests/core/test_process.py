"""Unit tests for the wired EpTO process (repro.core.process)."""

from __future__ import annotations

import random

import pytest

from repro.core import EpToConfig, EpToProcess
from repro.core.clock import LogicalClockOracle
from repro.core.errors import ConfigurationError
from repro.core.event import BallEntry, make_ball

from ..conftest import RecordingTransport, StaticPeerSampler, make_event


def build_process(
    node_id: int = 0,
    fanout: int = 2,
    ttl: int = 2,
    clock: str = "logical",
    tagged: bool = False,
    expose: bool = False,
):
    config = EpToConfig(
        fanout=fanout,
        ttl=ttl,
        clock=clock,
        tagged_delivery=tagged,
        expose_stability=expose,
    )
    transport = RecordingTransport()
    delivered: list = []
    tagged_out: list = []
    process = EpToProcess(
        node_id=node_id,
        config=config,
        peer_sampler=StaticPeerSampler([1, 2, 3]),
        transport=transport,
        on_deliver=delivered.append,
        on_out_of_order=tagged_out.append if tagged else None,
        time_source=(lambda: 0) if clock == "global" else None,
        rng=random.Random(0),
        system_size_hint=16 if expose else None,
    )
    return process, transport, delivered, tagged_out


class TestWiring:
    def test_broadcast_eventually_self_delivers(self):
        # Validity for an isolated process: its own event must deliver
        # even though nobody answers.
        process, _, delivered, _ = build_process(ttl=2)
        process.broadcast("mine")
        for _ in range(5):
            process.on_round()
        assert [e.payload for e in delivered] == ["mine"]

    def test_received_events_deliver_in_order(self):
        process, _, delivered, _ = build_process(ttl=1)
        ball = make_ball(
            [
                BallEntry(make_event(src=2, ts=9, payload="second"), 0),
                BallEntry(make_event(src=1, ts=3, payload="first"), 0),
            ]
        )
        process.on_ball(ball)
        for _ in range(4):
            process.on_round()
        assert [e.payload for e in delivered] == ["first", "second"]

    def test_on_ball_relays_next_round(self):
        process, transport, _, _ = build_process(ttl=3)
        process.on_ball(make_ball([BallEntry(make_event(src=5), 0)]))
        process.on_round()
        assert len(transport.sent) == 2  # fanout peers

    def test_counts(self):
        process, _, delivered, _ = build_process(ttl=1)
        process.broadcast()
        assert process.pending_count == 0  # not yet ordered
        process.on_round()
        assert process.pending_count == 1
        for _ in range(3):
            process.on_round()
        assert process.delivered_count == 1
        assert process.pending_count == 0

    def test_custom_oracle_injectable(self):
        oracle = LogicalClockOracle(ttl=1)
        config = EpToConfig(fanout=1, ttl=1, clock="logical")
        process = EpToProcess(
            node_id=0,
            config=config,
            peer_sampler=StaticPeerSampler([]),
            transport=RecordingTransport(),
            on_deliver=lambda e: None,
            oracle=oracle,
        )
        assert process.oracle is oracle


class TestConfigurationGuards:
    def test_global_clock_requires_time_source(self):
        with pytest.raises(ConfigurationError):
            EpToProcess(
                node_id=0,
                config=EpToConfig(fanout=1, ttl=1, clock="global"),
                peer_sampler=StaticPeerSampler([]),
                transport=RecordingTransport(),
                on_deliver=lambda e: None,
            )

    def test_tagged_delivery_requires_callback(self):
        with pytest.raises(ConfigurationError):
            EpToProcess(
                node_id=0,
                config=EpToConfig(
                    fanout=1, ttl=1, clock="logical", tagged_delivery=True
                ),
                peer_sampler=StaticPeerSampler([]),
                transport=RecordingTransport(),
                on_deliver=lambda e: None,
            )

    def test_expose_stability_requires_size_hint(self):
        with pytest.raises(ConfigurationError):
            EpToProcess(
                node_id=0,
                config=EpToConfig(
                    fanout=1, ttl=1, clock="logical", expose_stability=True
                ),
                peer_sampler=StaticPeerSampler([]),
                transport=RecordingTransport(),
                on_deliver=lambda e: None,
            )

    def test_peek_requires_extension(self):
        process, *_ = build_process(expose=False)
        with pytest.raises(ConfigurationError):
            process.peek()


class TestPeek:
    def test_peek_reports_pending_events(self):
        process, _, _, _ = build_process(ttl=10, expose=True)
        process.on_ball(make_ball([BallEntry(make_event(src=3, ts=1), 0)]))
        process.on_round()
        estimates = process.peek()
        assert len(estimates) == 1
        assert estimates[0].event.source_id == 3
        assert 0.0 <= estimates[0].probability_stable <= 1.0

    def test_peek_stability_rises_with_rounds(self):
        process, _, _, _ = build_process(ttl=30, fanout=3, expose=True)
        process.on_ball(make_ball([BallEntry(make_event(src=3, ts=1), 0)]))
        process.on_round()
        early = process.peek()[0].probability_stable
        for _ in range(10):
            process.on_round()
        late = process.peek()[0].probability_stable
        assert late >= early


class TestTaggedIntegration:
    def test_tagged_events_flow_through_process(self):
        process, _, delivered, tagged = build_process(ttl=1, tagged=True)
        process.on_ball(make_ball([BallEntry(make_event(src=2, ts=10), 0)]))
        for _ in range(3):
            process.on_round()
        assert len(delivered) == 1
        process.on_ball(make_ball([BallEntry(make_event(src=1, ts=5), 0)]))
        process.on_round()
        assert len(delivered) == 1
        assert len(tagged) == 1

    def test_tagged_flag_off_ignores_callback(self):
        # Callback supplied but config flag off: base behaviour.
        config = EpToConfig(fanout=1, ttl=1, clock="logical")
        tagged: list = []
        process = EpToProcess(
            node_id=0,
            config=config,
            peer_sampler=StaticPeerSampler([]),
            transport=RecordingTransport(),
            on_deliver=lambda e: None,
            on_out_of_order=tagged.append,
        )
        process.on_ball(make_ball([BallEntry(make_event(src=2, ts=10), 0)]))
        for _ in range(3):
            process.on_round()
        assert process.delivered_count == 1
        process.on_ball(make_ball([BallEntry(make_event(src=1, ts=5), 0)]))
        process.on_round()
        assert tagged == []
        assert process.ordering.stats.discarded_late == 1
