"""Unit tests for the ordering component (Algorithm 2)."""

from __future__ import annotations

import pytest

from repro.core.errors import OrderingInvariantError
from repro.core.event import BallEntry, make_ball
from repro.core.ordering import OrderingComponent

from ..conftest import ManualOracle, make_event


def build(ttl: int = 2, tagged: bool = False):
    """Wire an ordering component with a manual oracle."""
    oracle = ManualOracle(ttl=ttl)
    delivered: list = []
    tagged_out: list = []
    component = OrderingComponent(
        oracle=oracle,
        deliver=delivered.append,
        deliver_out_of_order=tagged_out.append if tagged else None,
    )
    return component, delivered, tagged_out


def entry(src=0, seq=0, ts=0, ttl=0, payload=None):
    return BallEntry(make_event(src=src, seq=seq, ts=ts, payload=payload), ttl=ttl)


class TestAgingAndStability:
    def test_event_delivered_once_stable(self):
        component, delivered, _ = build(ttl=2)
        component.order_events(make_ball([entry(ts=1)]))
        assert delivered == []  # ttl 0, not stable
        component.order_events(())  # age to 1
        component.order_events(())  # age to 2
        assert delivered == []
        component.order_events(())  # age to 3 > TTL
        assert len(delivered) == 1

    def test_incoming_ttl_accelerates_stability(self):
        component, delivered, _ = build(ttl=2)
        component.order_events(make_ball([entry(ts=1, ttl=0)]))
        # A later copy already aged past the TTL elsewhere.
        component.order_events(make_ball([entry(ts=1, ttl=3)]))
        assert len(delivered) == 1

    def test_empty_rounds_still_age(self):
        component, delivered, _ = build(ttl=1)
        component.order_events(make_ball([entry(ts=1)]))
        for _ in range(3):
            component.order_events(())
        assert len(delivered) == 1


class TestTotalOrderGuards:
    def test_delivery_in_key_order(self):
        component, delivered, _ = build(ttl=0)
        ball = make_ball(
            [
                entry(src=2, ts=5, ttl=9, payload="b"),
                entry(src=1, ts=5, ttl=9, payload="a"),
                entry(src=1, seq=1, ts=3, ttl=9, payload="first"),
            ]
        )
        component.order_events(ball)
        assert [e.payload for e in delivered] == ["first", "a", "b"]

    def test_stable_event_blocked_by_earlier_unstable(self):
        component, delivered, _ = build(ttl=5)
        # One ball: a stable late event and a still-aging earlier one.
        component.order_events(
            make_ball(
                [entry(src=2, ts=10, ttl=9), entry(src=1, ts=5, ttl=0)]
            )
        )
        assert delivered == []  # late event must wait for the early one
        component.order_events(())
        assert delivered == []
        # Age the early one to stability: both deliver, in order.
        component.order_events(make_ball([entry(src=1, ts=5, ttl=9)]))
        assert [e.source_id for e in delivered] == [1, 2]

    def test_late_event_discarded(self):
        component, delivered, _ = build(ttl=0)
        component.order_events(make_ball([entry(src=2, ts=10, ttl=1)]))
        assert len(delivered) == 1
        # An event ordered before the delivered one arrives too late.
        component.order_events(make_ball([entry(src=1, ts=5, ttl=1)]))
        assert len(delivered) == 1
        assert component.stats.discarded_late == 1

    def test_equal_ts_smaller_source_discarded_after_delivery(self):
        # The (ts, src) tie-break refinement: ts equality alone must
        # not re-admit an event that precedes the last delivered one.
        component, delivered, _ = build(ttl=0)
        component.order_events(make_ball([entry(src=5, ts=7, ttl=1)]))
        assert len(delivered) == 1
        component.order_events(make_ball([entry(src=3, ts=7, ttl=1)]))
        assert len(delivered) == 1  # (7, 3) < (7, 5): rejected

    def test_equal_ts_larger_source_still_delivered(self):
        component, delivered, _ = build(ttl=0)
        component.order_events(make_ball([entry(src=3, ts=7, ttl=1)]))
        component.order_events(make_ball([entry(src=5, ts=7, ttl=1)]))
        assert [e.source_id for e in delivered] == [3, 5]


class TestIntegrityGuards:
    def test_duplicate_delivery_prevented(self):
        component, delivered, _ = build(ttl=0)
        ball = make_ball([entry(src=1, ts=5, ttl=1)])
        component.order_events(ball)
        component.order_events(ball)  # duplicate arrives again
        assert len(delivered) == 1
        assert component.stats.discarded_duplicates >= 1

    def test_duplicate_while_pending_merges_instead(self):
        component, delivered, _ = build(ttl=3)
        component.order_events(make_ball([entry(src=1, ts=5, ttl=0)]))
        component.order_events(make_ball([entry(src=1, ts=5, ttl=2)]))
        assert component.received_count == 1  # merged, not duplicated

    def test_invariant_error_on_forced_regression(self):
        component, delivered, _ = build(ttl=0)
        component.order_events(make_ball([entry(src=2, ts=10, ttl=1)]))
        # Force an illegal internal call to prove the guard trips.
        with pytest.raises(OrderingInvariantError):
            component._mark_delivered(make_event(src=1, ts=5))


class TestDeliveredSetPruning:
    def test_memory_stays_bounded(self):
        component, delivered, _ = build(ttl=1)
        for i in range(1000):
            component.order_events(make_ball([entry(src=1, seq=i, ts=i + 1, ttl=2)]))
        assert len(delivered) == 1000
        # Only ids within the 2*TTL + 2 retention window are kept.
        window = 2 * component.oracle.ttl + 2
        assert len(component._delivered_ids) <= window + 2
        assert len(component._delivered_expiry) <= window + 2

    def test_pruned_duplicate_still_rejected(self):
        component, delivered, _ = build(ttl=1)
        old = entry(src=1, ts=1, ttl=2)
        component.order_events(make_ball([old]))
        # Push far past the retention window.
        for i in range(12):
            component.order_events(
                make_ball([entry(src=2, seq=i, ts=2 + i, ttl=2)])
            )
        assert (1, 0) not in component._delivered_ids  # pruned
        # The order-key test still rejects the stale duplicate.
        component.order_events(make_ball([old]))
        assert len(delivered) == 13

    def test_duplicate_within_window_not_redelivered(self):
        component, delivered, _ = build(ttl=3)
        dup = entry(src=1, ts=1, ttl=4)
        component.order_events(make_ball([dup]))
        assert len(delivered) == 1
        component.order_events(make_ball([dup]))
        assert len(delivered) == 1

    def test_out_of_window_duplicate_never_redelivered_in_order(self):
        # Documented boundary: a duplicate arriving after the retention
        # window is rejected by the order-key test (never delivered in
        # order twice); with tagged delivery enabled it surfaces on the
        # tagged channel instead, which is why real deployments size
        # the window to the event relay lifetime.
        component, delivered, tagged = build(ttl=1, tagged=True)
        dup = entry(src=1, ts=1, ttl=2)
        component.order_events(make_ball([dup]))
        for _ in range(10):  # sail past the 2*TTL + 2 = 4 round window
            component.order_events(())
        component.order_events(make_ball([dup]))
        assert len(delivered) == 1  # integrity of the ordered stream
        assert len(tagged) == 1  # boundary artifact, documented


class TestTaggedDelivery:
    def test_late_event_tagged_instead_of_dropped(self):
        component, delivered, tagged = build(ttl=0, tagged=True)
        component.order_events(make_ball([entry(src=2, ts=10, ttl=1)]))
        component.order_events(make_ball([entry(src=1, ts=5, ttl=1, payload="late")]))
        assert len(delivered) == 1
        assert [e.payload for e in tagged] == ["late"]
        assert component.stats.tagged_out_of_order == 1

    def test_tagged_duplicates_suppressed(self):
        component, _, tagged = build(ttl=0, tagged=True)
        component.order_events(make_ball([entry(src=2, ts=10, ttl=1)]))
        late = entry(src=1, ts=5, ttl=1)
        component.order_events(make_ball([late]))
        component.order_events(make_ball([late]))
        component.order_events(make_ball([late]))
        assert len(tagged) == 1

    def test_tag_dedup_expires_eventually(self):
        component, _, tagged = build(ttl=1, tagged=True)
        component.order_events(make_ball([entry(src=2, ts=10, ttl=2)]))
        late = entry(src=1, ts=5, ttl=1)
        component.order_events(make_ball([late]))
        assert len(component._tagged_ids) == 1
        for _ in range(3 * (2 * component.oracle.ttl + 2)):
            component.order_events(())
        assert len(component._tagged_ids) == 0

    def test_disabled_by_default(self):
        component, _, tagged = build(ttl=0, tagged=False)
        component.order_events(make_ball([entry(src=2, ts=10, ttl=1)]))
        component.order_events(make_ball([entry(src=1, ts=5, ttl=1)]))
        assert tagged == []
        assert component.stats.discarded_late == 1
