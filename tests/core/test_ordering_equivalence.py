"""Equivalence of the optimized ordering component and the seed one.

The frontier/heap rework in :mod:`repro.core.ordering` claims to be a
pure performance change: for every possible round schedule it must
produce the exact delivery sequence of the seed implementation
(preserved verbatim in :mod:`repro.core.ordering_baseline`). These
tests drive both components through identical randomized schedules —
duplicates, relayed copies with larger TTLs, stale events, tagged
delivery on and off — and compare them round by round.
"""

from __future__ import annotations

import random
from typing import List, Tuple

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.event import BallEntry, Event, make_ball
from repro.core.ordering import OrderingComponent
from repro.core.ordering_baseline import BaselineOrderingComponent

from ..conftest import ManualOracle


def _build_pair(ttl: int, tagged: bool):
    """Baseline and optimized components sharing oracle parameters."""
    pairs = []
    for cls in (BaselineOrderingComponent, OrderingComponent):
        delivered: List[Event] = []
        out_of_order: List[Event] = []
        component = cls(
            ManualOracle(ttl=ttl),
            delivered.append,
            out_of_order.append if tagged else None,
        )
        pairs.append((component, delivered, out_of_order))
    return pairs


def _random_schedule(rng: random.Random, ttl: int) -> List[Tuple[BallEntry, ...]]:
    """A random multi-round ball schedule exercising every merge path.

    Events are drawn from a small id space so duplicates and relayed
    copies (same event, different TTL) are frequent; timestamps overlap
    across rounds so late arrivals and ties on the order key occur.
    """
    sources = rng.randrange(2, 5)
    seqs = [0] * sources
    pool: List[Event] = []
    rounds = rng.randrange(5, 30)
    schedule = []
    for r in range(rounds):
        entries = []
        for _ in range(rng.randrange(0, 6)):
            if pool and rng.random() < 0.35:
                # A relayed copy of a known event, possibly aged further.
                event = rng.choice(pool[-12:])
            else:
                src = rng.randrange(sources)
                seq = seqs[src]
                seqs[src] += 1
                # Timestamps loosely follow the round number but reach
                # backwards often enough to trip the late-discard path.
                ts = max(0, r + rng.randrange(-ttl - 3, 3))
                event = Event(id=(src, seq), ts=ts, source_id=src, payload=None)
                pool.append(event)
            entries.append(BallEntry(event, ttl=rng.randrange(0, ttl + 3)))
        schedule.append(make_ball(entries))
    # Drain: enough empty rounds for everything pending to stabilize.
    schedule.extend(() for _ in range(2 * ttl + 4))
    return schedule


def _assert_equivalent(ttl: int, tagged: bool, schedule) -> None:
    (base, base_del, base_tag), (opt, opt_del, opt_tag) = _build_pair(ttl, tagged)
    for round_no, ball in enumerate(schedule):
        base.order_events(ball)
        opt.order_events(ball)
        assert opt_del == base_del, f"delivery diverged at round {round_no}"
        assert opt_tag == base_tag, f"tagged delivery diverged at round {round_no}"
        assert opt.received_count == base.received_count, (
            f"received set size diverged at round {round_no}"
        )
        assert opt.last_delivered_key == base.last_delivered_key
    assert opt.stats == base.stats


@pytest.mark.parametrize("tagged", [False, True], ids=["plain", "tagged"])
def test_equivalent_over_many_random_schedules(tagged):
    """Bit-identical delivery across >= 50 randomized schedules."""
    for seed in range(60):
        rng = random.Random(f"ordering-equivalence:{seed}:{tagged}")
        ttl = rng.randrange(1, 7)
        schedule = _random_schedule(rng, ttl)
        _assert_equivalent(ttl, tagged, schedule)


def test_equivalent_when_everything_arrives_at_once():
    """One giant ball, then silence: the all-at-once stabilization case."""
    events = [
        Event(id=(src, seq), ts=ts, source_id=src, payload=None)
        for src in range(3)
        for seq, ts in enumerate([5, 1, 3, 3, 9])
    ]
    ball = make_ball(BallEntry(e, ttl=i % 4) for i, e in enumerate(events))
    schedule = [ball] + [() for _ in range(12)]
    _assert_equivalent(3, True, schedule)


def test_equivalent_on_already_stable_arrivals():
    """Entries arriving with ttl already past the threshold."""
    ball = make_ball(
        [
            BallEntry(Event(id=(0, 0), ts=4, source_id=0), ttl=9),
            BallEntry(Event(id=(1, 0), ts=2, source_id=1), ttl=9),
        ]
    )
    schedule = [ball, (), ()]
    _assert_equivalent(2, False, schedule)


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_equivalence_property(data):
    """Hypothesis-driven schedules: same deliveries, stats, state sizes."""
    ttl = data.draw(st.integers(min_value=1, max_value=5), label="ttl")
    tagged = data.draw(st.booleans(), label="tagged")
    seed = data.draw(st.integers(min_value=0, max_value=2**32), label="seed")
    rng = random.Random(seed)
    schedule = _random_schedule(rng, ttl)
    _assert_equivalent(ttl, tagged, schedule)
