"""Unit tests for the delivery extensions (repro.core.delivery, §8.2/§8.4)."""

from __future__ import annotations

import pytest

from repro.core.delivery import (
    DeliveryLog,
    StabilityEstimator,
    TaggedEvent,
)
from repro.core.errors import ConfigurationError

from ..conftest import make_event, make_record


class TestStabilityEstimator:
    def test_zero_rounds_means_unstable(self):
        est = StabilityEstimator(n=100, fanout=10)
        assert est.probability_stable(0) == 0.0
        assert est.coverage_after(0) == pytest.approx(1 / 100)

    def test_monotone_in_rounds(self):
        est = StabilityEstimator(n=100, fanout=10)
        probs = [est.probability_stable(t) for t in range(15)]
        coverage = [est.coverage_after(t) for t in range(15)]
        assert probs == sorted(probs)
        assert coverage == sorted(coverage)

    def test_converges_to_one(self):
        est = StabilityEstimator(n=50, fanout=8)
        assert est.probability_stable(30) > 0.999
        assert est.coverage_after(30) == pytest.approx(1.0, abs=1e-6)

    def test_negative_rounds_clamped(self):
        est = StabilityEstimator(n=10, fanout=3)
        assert est.probability_stable(-1) == 0.0
        assert est.coverage_after(-5) == 0.0

    def test_beyond_horizon_clamped(self):
        est = StabilityEstimator(n=10, fanout=3, max_rounds=5)
        assert est.probability_stable(100) == est.probability_stable(5)

    def test_larger_fanout_stabilizes_faster(self):
        slow = StabilityEstimator(n=200, fanout=2)
        fast = StabilityEstimator(n=200, fanout=20)
        assert fast.probability_stable(5) > slow.probability_stable(5)

    def test_estimate_record(self):
        est = StabilityEstimator(n=100, fanout=10)
        estimate = est.estimate(make_record(ttl=8))
        assert estimate.ttl == 8
        assert 0.0 <= estimate.probability_stable <= 1.0
        assert 0.0 <= estimate.expected_coverage <= 1.0

    def test_estimate_all_sorted_by_stability(self):
        est = StabilityEstimator(n=100, fanout=10)
        records = [make_record(seq=i, ttl=i) for i in range(6)]
        estimates = est.estimate_all(records)
        probs = [e.probability_stable for e in estimates]
        assert probs == sorted(probs, reverse=True)

    @pytest.mark.parametrize("n,fanout", [(1, 3), (10, 0)])
    def test_rejects_bad_parameters(self, n, fanout):
        with pytest.raises(ConfigurationError):
            StabilityEstimator(n=n, fanout=fanout)


class TestDeliveryLog:
    def test_records_ordered_stream(self):
        log = DeliveryLog()
        log.on_deliver(make_event(payload="a"))
        log.on_deliver(make_event(seq=1, payload="b"))
        assert log.payloads == ["a", "b"]
        assert len(log) == 2

    def test_records_tagged_stream_separately(self):
        log = DeliveryLog()
        log.on_out_of_order(make_event(payload="late"))
        assert len(log) == 0
        assert len(log.tagged) == 1
        assert isinstance(log.tagged[0], TaggedEvent)
        assert not log.tagged[0].in_order
