"""Unit tests for the stability oracles (repro.core.clock, Alg. 3 & 4)."""

from __future__ import annotations

import pytest

from repro.core.clock import GlobalClockOracle, LogicalClockOracle, make_oracle
from repro.core.errors import ConfigurationError

from ..conftest import make_record


class TestGlobalClockOracle:
    def test_reads_time_source(self):
        time = {"now": 100}
        oracle = GlobalClockOracle(ttl=3, time_source=lambda: time["now"])
        assert oracle.get_clock() == 100
        time["now"] = 250
        assert oracle.get_clock() == 250

    def test_update_clock_is_noop(self):
        oracle = GlobalClockOracle(ttl=3, time_source=lambda: 5)
        oracle.update_clock(10_000)
        assert oracle.get_clock() == 5  # unchanged

    def test_deliverable_strictly_above_ttl(self):
        oracle = GlobalClockOracle(ttl=3, time_source=lambda: 0)
        assert not oracle.is_deliverable(make_record(ttl=3))
        assert oracle.is_deliverable(make_record(ttl=4))

    def test_rejects_bad_ttl(self):
        with pytest.raises(ConfigurationError):
            GlobalClockOracle(ttl=0, time_source=lambda: 0)


class TestLogicalClockOracle:
    def test_get_clock_increments(self):
        oracle = LogicalClockOracle(ttl=2)
        assert oracle.get_clock() == 1
        assert oracle.get_clock() == 2
        assert oracle.logical_clock == 2

    def test_update_clock_takes_max(self):
        oracle = LogicalClockOracle(ttl=2)
        oracle.update_clock(10)
        assert oracle.logical_clock == 10
        oracle.update_clock(4)  # behind: ignored
        assert oracle.logical_clock == 10

    def test_broadcast_after_update_advances(self):
        # A broadcast after observing ts=7 must carry ts > 7 (Lamport).
        oracle = LogicalClockOracle(ttl=2)
        oracle.update_clock(7)
        assert oracle.get_clock() == 8

    def test_initial_value(self):
        oracle = LogicalClockOracle(ttl=2, initial=1)
        assert oracle.logical_clock == 1
        assert oracle.get_clock() == 2

    def test_deliverable_strictly_above_ttl(self):
        oracle = LogicalClockOracle(ttl=5)
        assert not oracle.is_deliverable(make_record(ttl=5))
        assert oracle.is_deliverable(make_record(ttl=6))

    def test_rejects_negative_initial(self):
        with pytest.raises(ConfigurationError):
            LogicalClockOracle(ttl=1, initial=-1)


class TestMakeOracle:
    def test_builds_global(self):
        oracle = make_oracle("global", ttl=4, time_source=lambda: 1)
        assert isinstance(oracle, GlobalClockOracle)
        assert oracle.ttl == 4

    def test_builds_logical(self):
        oracle = make_oracle("logical", ttl=4)
        assert isinstance(oracle, LogicalClockOracle)

    def test_global_requires_time_source(self):
        with pytest.raises(ConfigurationError):
            make_oracle("global", ttl=4)

    def test_unknown_clock_rejected(self):
        with pytest.raises(ConfigurationError):
            make_oracle("vector", ttl=4)
