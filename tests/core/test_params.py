"""Unit tests for parameter derivation (repro.core.params, Lemmas 3-7)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import ConfigurationError
from repro.core.params import (
    DEFAULT_C,
    derive_parameters,
    min_fanout,
    min_ttl,
)


class TestMinFanout:
    def test_matches_theorem2_formula(self):
        n = 100
        expected = math.ceil(2 * math.e * math.log(n) / math.log(math.log(n)))
        assert min_fanout(n) == expected

    def test_paper_scale_values(self):
        # Sanity at the paper's sizes: logarithmic growth, small values.
        assert min_fanout(100) == 17
        assert 17 <= min_fanout(500) <= 20
        assert min_fanout(10_000) <= 24

    def test_capped_at_n_minus_1(self):
        assert min_fanout(2) == 1
        assert min_fanout(3) == 2
        assert min_fanout(4) <= 3

    def test_churn_inflates_fanout(self):
        base = min_fanout(1000)
        churned = min_fanout(1000, churn_rate=0.1)
        assert churned > base
        # Lemma 7: factor 1/(1 - churn)
        expected = math.ceil(
            2 * math.e * math.log(1000) / math.log(math.log(1000)) / 0.9
        )
        assert churned == expected

    def test_loss_inflates_fanout(self):
        assert min_fanout(1000, loss_rate=0.1) > min_fanout(1000)

    def test_combined_churn_and_loss(self):
        combined = min_fanout(1000, churn_rate=0.05, loss_rate=0.05)
        assert combined >= min_fanout(1000, churn_rate=0.05)
        assert combined >= min_fanout(1000, loss_rate=0.05)

    @pytest.mark.parametrize("bad", [-0.1, 1.0, 1.5])
    def test_rejects_bad_rates(self, bad):
        with pytest.raises(ConfigurationError):
            min_fanout(100, churn_rate=bad)
        with pytest.raises(ConfigurationError):
            min_fanout(100, loss_rate=bad)

    def test_rejects_tiny_system(self):
        with pytest.raises(ConfigurationError):
            min_fanout(1)

    @given(st.integers(min_value=4, max_value=100_000))
    def test_monotone_nondecreasing_in_n(self, n):
        # K grows (weakly) with the system size for n above the
        # full-mesh regime.
        assert min_fanout(n + 1) >= min_fanout(n) - 1  # allow ceil jitter


class TestMinTtl:
    def test_matches_lemma3_formula(self):
        n, c = 100, 2.0
        assert min_ttl(n, c=c) == math.ceil((c + 1) * math.log2(n))

    def test_paper_headline_ttl(self):
        # §6: "the TTL given by the theoretical analysis (TTL=15)" for
        # n = 100 — our DEFAULT_C is calibrated to reproduce it.
        assert min_ttl(100, c=DEFAULT_C) == 15

    def test_logical_clock_doubles(self):
        n = 256
        assert min_ttl(n, clock="logical") == 2 * min_ttl(n, clock="global")

    def test_latency_adds_one_round(self):
        n = 256
        assert (
            min_ttl(n, latency_bounded_by_round=True)
            == min_ttl(n, latency_bounded_by_round=False) + 1
        )

    def test_drift_ratio_scales(self):
        base = min_ttl(256)
        assert min_ttl(256, drift_ratio=2.0) == math.ceil(base * 2.0)

    def test_c_must_exceed_one(self):
        with pytest.raises(ConfigurationError):
            min_ttl(100, c=1.0)

    def test_drift_ratio_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            min_ttl(100, drift_ratio=0.5)

    def test_unknown_clock_rejected(self):
        with pytest.raises(ConfigurationError):
            min_ttl(100, clock="vector")

    @given(
        st.integers(min_value=2, max_value=100_000),
        st.floats(min_value=1.01, max_value=5.0),
    )
    def test_grows_logarithmically(self, n, c):
        ttl = min_ttl(n, c=c)
        assert ttl >= 1
        assert ttl <= (c + 1) * math.log2(n) + 1


class TestDeriveParameters:
    def test_combines_both(self):
        params = derive_parameters(500, clock="logical", churn_rate=0.05)
        assert params.fanout == min_fanout(500, churn_rate=0.05)
        assert params.ttl == min_ttl(500, clock="logical")
        assert params.clock == "logical"

    def test_hole_probability_bound_is_small(self):
        params = derive_parameters(1000, c=2.0)
        bound = params.hole_probability_bound()
        assert 0.0 <= bound < 1e-6

    def test_is_frozen(self):
        params = derive_parameters(100)
        with pytest.raises(AttributeError):
            params.fanout = 1  # type: ignore[misc]
