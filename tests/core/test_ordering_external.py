"""Unit tests for the anti-entropy delivery path (deliver_external).

Events fetched from a peer's delivery log bypass the TTL oracle but
still go through the duplicate and total-order guards; afterwards
``discard_obsolete_pending`` clears epidemic copies the repair made
obsolete. See docs/SYNC.md.
"""

from __future__ import annotations

from repro.core.event import BallEntry, make_ball
from repro.core.ordering import OrderingComponent

from ..conftest import ManualOracle, make_event


def build(ttl: int = 2, tagged: bool = False):
    oracle = ManualOracle(ttl=ttl)
    delivered: list = []
    tagged_out: list = []
    component = OrderingComponent(
        oracle=oracle,
        deliver=delivered.append,
        deliver_out_of_order=tagged_out.append if tagged else None,
    )
    return component, delivered, tagged_out


def entry(src=0, seq=0, ts=0, ttl=0, payload=None):
    return BallEntry(make_event(src=src, seq=seq, ts=ts, payload=payload), ttl=ttl)


class TestDeliverExternal:
    def test_bypasses_the_ttl_oracle(self):
        component, delivered, _ = build(ttl=5)
        event = make_event(src=1, ts=3, payload="fetched")
        assert component.deliver_external(event) is True
        assert delivered == [event]
        assert component.stats.delivered == 1
        assert component.last_delivered_key == event.order_key

    def test_respects_key_order_across_calls(self):
        component, delivered, _ = build()
        first = make_event(src=1, ts=1)
        second = make_event(src=2, ts=1)
        third = make_event(src=1, seq=1, ts=4)
        for event in (first, second, third):
            assert component.deliver_external(event) is True
        assert delivered == [first, second, third]

    def test_duplicate_of_epidemic_delivery_is_discarded(self):
        component, delivered, _ = build(ttl=1)
        component.order_events(make_ball([entry(src=1, ts=2, ttl=9)]))
        assert len(delivered) == 1
        assert component.deliver_external(make_event(src=1, ts=2)) is False
        assert component.stats.discarded_duplicates == 1
        assert len(delivered) == 1

    def test_late_event_is_discarded_not_delivered(self):
        component, delivered, _ = build()
        component.deliver_external(make_event(src=3, ts=9))
        assert component.deliver_external(make_event(src=1, ts=4)) is False
        assert component.stats.discarded_late == 1
        assert [e.ts for e in delivered] == [9]

    def test_late_event_feeds_the_tagged_path(self):
        component, delivered, tagged = build(tagged=True)
        component.deliver_external(make_event(src=3, ts=9))
        late = make_event(src=1, ts=4)
        component.deliver_external(late)
        assert tagged == [late]
        assert component.stats.tagged_out_of_order == 1

    def test_pending_epidemic_copy_is_popped(self):
        component, delivered, _ = build(ttl=5)
        # The epidemic path holds an immature copy of the same event.
        component.order_events(make_ball([entry(src=1, ts=2, ttl=0)]))
        assert delivered == []
        fetched = make_event(src=1, ts=2)
        assert component.deliver_external(fetched) is True
        assert delivered == [fetched]
        # Aging the (now stale) epidemic copy past the TTL must not
        # deliver it a second time.
        for _ in range(8):
            component.order_events(())
        assert len(delivered) == 1
        assert component.stats.delivered == 1


class TestDiscardObsoletePending:
    def test_clears_copies_below_the_order_mark(self):
        component, delivered, _ = build(ttl=5)
        component.order_events(
            make_ball([entry(src=1, ts=2, ttl=0), entry(src=2, ts=3, ttl=0)])
        )
        # The repair jumps the mark past both pending copies.
        component.deliver_external(make_event(src=4, ts=7))
        assert component.discard_obsolete_pending() == 2
        assert component.stats.discarded_late == 2
        # Nothing left to surface later.
        for _ in range(8):
            component.order_events(())
        assert [e.ts for e in delivered] == [7]

    def test_keeps_copies_above_the_order_mark(self):
        component, delivered, _ = build(ttl=1)
        component.order_events(make_ball([entry(src=1, ts=9, ttl=0)]))
        component.deliver_external(make_event(src=2, ts=5))
        assert component.discard_obsolete_pending() == 0
        # The surviving copy still matures and delivers in order.
        for _ in range(4):
            component.order_events(())
        assert [e.ts for e in delivered] == [5, 9]

    def test_noop_on_empty_pending_set(self):
        component, _, _ = build()
        assert component.discard_obsolete_pending() == 0
