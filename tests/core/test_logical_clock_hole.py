"""Deterministic reproduction of paper Figure 4 (concurrency hole).

The walkthrough in §5.1: with logical clocks and the *single* (Lemma 3)
TTL bound, a process ``q`` can deliver its own event ``e`` exactly when
a concurrent event ``e'`` — broadcast by ``p`` with the same logical
timestamp but higher precedence (``p.id`` precedes ``q.id``) — is still
in flight. Delivering ``e`` forecloses the in-order delivery of ``e'``
at ``q``: an unnecessary hole. Lemma 4's fix is doubling the TTL.

These tests script the exact message timeline of Figure 4 by shuttling
balls by hand between two processes, and verify:

* with ``TTL = 2`` the hole occurs (q misses ``e'``; order still holds);
* with the doubled TTL the hole disappears;
* with tagged delivery (§8.2) enabled, the dropped event reaches the
  application tagged instead of vanishing.
"""

from __future__ import annotations

from typing import List

from repro.core import EpToConfig, EpToProcess, Event

from ..conftest import RecordingTransport, StaticPeerSampler


class Duo:
    """Two hand-driven EpTO processes: p (id 0) precedes q (id 1)."""

    def __init__(self, ttl: int, tagged: bool = False) -> None:
        config = EpToConfig(
            fanout=1, ttl=ttl, clock="logical", tagged_delivery=tagged
        )
        self.delivered: dict[int, List[Event]] = {0: [], 1: []}
        self.tagged: dict[int, List[Event]] = {0: [], 1: []}
        self.transports = {0: RecordingTransport(), 1: RecordingTransport()}
        self.procs = {
            node_id: EpToProcess(
                node_id=node_id,
                config=config,
                peer_sampler=StaticPeerSampler([1 - node_id]),
                transport=self.transports[node_id],
                on_deliver=self.delivered[node_id].append,
                on_out_of_order=(
                    self.tagged[node_id].append if tagged else None
                ),
            )
            for node_id in (0, 1)
        }

    def round(self, node_id: int):
        """Run one round at *node_id*; return the balls it sent."""
        transport = self.transports[node_id]
        transport.clear()
        self.procs[node_id].on_round()
        return [ball for _, _, ball in transport.sent]

    def handover(self, dst: int, balls) -> None:
        """Deliver previously captured balls to *dst*."""
        for ball in balls:
            self.procs[dst].on_ball(ball)


def run_figure4_timeline(ttl: int, tagged: bool = False) -> Duo:
    """The exact Figure 4 schedule, parameterized by TTL.

    q broadcasts ``e`` at round 0. The ball carrying ``e`` reaches p
    only in round 2 — *just after* p broadcast ``e'``, so both carry
    logical timestamp 1 and ``e'`` precedes ``e``. We then let both
    processes run long enough for everything to stabilize.
    """
    duo = Duo(ttl=ttl, tagged=tagged)
    p, q = duo.procs[0], duo.procs[1]

    event_e = q.broadcast("e")  # ts = 1 at q
    assert event_e.ts == 1

    # Round 0: q relays e; the ball is delayed (withheld) for 2 rounds.
    delayed = duo.round(1)
    duo.round(0)

    # Round 1: both tick; nothing in flight.
    duo.round(1)
    duo.round(0)

    # Round 2 at p: p broadcasts e' *before* receiving e...
    event_e_prime = p.broadcast("e'")  # ts = 1 at p too (clock unsynced)
    assert event_e_prime.ts == 1
    assert event_e_prime.order_key < event_e.order_key  # e' precedes e
    # ...and only then the delayed ball lands.
    duo.handover(0, delayed)
    p_balls = duo.round(0)

    # Round 2 at q: q ages e past the TTL *before* hearing about e'.
    duo.round(1)
    # Now p's ball (carrying e' and the aged e) reaches q.
    duo.handover(1, p_balls)

    # Let both run several more rounds, shuttling everything.
    for _ in range(3 * ttl + 4):
        duo.handover(1, duo.round(0))
        duo.handover(0, duo.round(1))
    return duo


class TestFigure4:
    def test_hole_occurs_with_single_ttl(self):
        duo = run_figure4_timeline(ttl=2)
        q_payloads = [e.payload for e in duo.delivered[1]]
        p_payloads = [e.payload for e in duo.delivered[0]]
        # q delivered e but can no longer deliver e' — the hole.
        assert "e" in q_payloads
        assert "e'" not in q_payloads
        # p delivers both, in precedence order.
        assert p_payloads == ["e'", "e"]

    def test_total_order_never_violated_despite_hole(self):
        duo = run_figure4_timeline(ttl=2)
        # Common events must appear in the same relative order.
        p_keys = [e.order_key for e in duo.delivered[0]]
        q_keys = [e.order_key for e in duo.delivered[1]]
        common = set(p_keys) & set(q_keys)
        assert [k for k in p_keys if k in common] == [
            k for k in q_keys if k in common
        ]

    def test_doubled_ttl_closes_the_hole(self):
        # Lemma 4: doubling the TTL lets q learn e' before e stabilizes.
        duo = run_figure4_timeline(ttl=4)
        assert [e.payload for e in duo.delivered[0]] == ["e'", "e"]
        assert [e.payload for e in duo.delivered[1]] == ["e'", "e"]

    def test_tagged_delivery_surfaces_the_dropped_event(self):
        duo = run_figure4_timeline(ttl=2, tagged=True)
        assert [e.payload for e in duo.delivered[1]] == ["e"]
        assert [e.payload for e in duo.tagged[1]] == ["e'"]
        # p needed no tagging.
        assert duo.tagged[0] == []
