"""Property-based tests (hypothesis) for the ordering component.

These drive :class:`repro.core.ordering.OrderingComponent` with
adversarial schedules — arbitrary interleavings of event arrivals,
duplicated entries, arbitrary TTLs — and assert the deterministic
Table 1 invariants that must hold under *any* schedule:

* deliveries are strictly increasing in the total-order key;
* no event is delivered twice;
* only events that appeared in some ball are delivered;
* two components fed the same event set (in any order, any
  duplication) deliver identical sequences once everything stabilizes.
"""

from __future__ import annotations

from typing import List

from hypothesis import given, settings, strategies as st

from repro.core.event import Ball, BallEntry, Event, make_ball
from repro.core.ordering import OrderingComponent

from ..conftest import ManualOracle


# Strategy: a pool of distinct events (unique (src, seq), ts values
# chosen small to force heavy timestamp collisions / tie-breaking).
@st.composite
def event_pools(draw, max_events: int = 12) -> List[Event]:
    count = draw(st.integers(min_value=1, max_value=max_events))
    events = []
    seqs: dict[int, int] = {}
    for _ in range(count):
        src = draw(st.integers(min_value=0, max_value=4))
        seq = seqs.get(src, 0)
        seqs[src] = seq + 1
        ts = draw(st.integers(min_value=0, max_value=5))
        events.append(Event(id=(src, seq), ts=ts, source_id=src))
    return events


@st.composite
def schedules(draw):
    """A pool of events plus a random multi-round arrival schedule."""
    pool = draw(event_pools())
    rounds = draw(st.integers(min_value=1, max_value=8))
    schedule: List[Ball] = []
    for _ in range(rounds):
        indices = draw(
            st.lists(
                st.integers(min_value=0, max_value=len(pool) - 1),
                min_size=0,
                max_size=len(pool),
            )
        )
        entries = []
        for idx in indices:
            ttl = draw(st.integers(min_value=0, max_value=6))
            entries.append(BallEntry(pool[idx], ttl=ttl))
        schedule.append(make_ball(entries))
    return pool, schedule


def drain(component: OrderingComponent, rounds: int = 12) -> None:
    """Feed empty rounds until everything pending stabilizes."""
    for _ in range(rounds):
        component.order_events(())


@settings(max_examples=200, deadline=None)
@given(schedules())
def test_deliveries_strictly_increase(batch):
    pool, schedule = batch
    delivered: List[Event] = []
    component = OrderingComponent(ManualOracle(ttl=2), delivered.append)
    for ball in schedule:
        component.order_events(ball)
    drain(component)
    keys = [event.order_key for event in delivered]
    assert keys == sorted(keys)
    assert len(keys) == len(set(keys))


@settings(max_examples=200, deadline=None)
@given(schedules())
def test_no_duplicates_and_only_known_events(batch):
    pool, schedule = batch
    delivered: List[Event] = []
    component = OrderingComponent(ManualOracle(ttl=2), delivered.append)
    seen_ids = {entry.event.id for ball in schedule for entry in ball}
    for ball in schedule:
        component.order_events(ball)
    drain(component)
    ids = [event.id for event in delivered]
    assert len(ids) == len(set(ids))  # integrity: at most once
    assert set(ids) <= seen_ids  # integrity: only received events


@settings(max_examples=100, deadline=None)
@given(schedules(), st.randoms(use_true_random=False))
def test_two_replicas_agree_on_common_prefix_order(batch, shuffler):
    """Replicas fed the same events in different orders agree on order.

    Each replica receives every event of the pool (so there are no
    holes), but with independently shuffled per-round arrival and
    duplication. After draining, both must deliver identical sequences
    — the Total Order property in its strongest (agreement-complete)
    form.
    """
    pool, schedule = batch

    def run_replica(seed_shuffle) -> List[Event]:
        delivered: List[Event] = []
        component = OrderingComponent(ManualOracle(ttl=2), delivered.append)
        # Start from the given schedule, then guarantee completeness by
        # feeding every pool event once more with a stable TTL.
        balls = list(schedule)
        completion = [BallEntry(event, ttl=0) for event in pool]
        seed_shuffle.shuffle(completion)
        balls.append(make_ball(completion))
        for ball in balls:
            component.order_events(ball)
        drain(component)
        return delivered

    a = run_replica(shuffler)
    b = run_replica(shuffler)
    # Both replicas received all events before anything stabilized
    # (TTLs in the schedule are capped at 6 but stability needs ttl > 2
    # after the completion ball, well within drain) — so both must
    # deliver the same sequence.
    keys_a = [event.order_key for event in a]
    keys_b = [event.order_key for event in b]
    common = set(keys_a) & set(keys_b)
    filtered_a = [k for k in keys_a if k in common]
    filtered_b = [k for k in keys_b if k in common]
    assert filtered_a == filtered_b


@settings(max_examples=150, deadline=None)
@given(schedules(), st.data())
def test_external_deliveries_never_regress_the_frontier(batch, data):
    """`deliver_external` keeps every guard the epidemic path has.

    Anti-entropy (repro.sync) injects already-stable events between
    ordering rounds. Under any interleaving of epidemic balls and
    external deliveries:

    * ``last_delivered_key`` (the delivered frontier) is monotonically
      non-decreasing — an external delivery may only advance it;
    * an accepted external delivery advances the frontier exactly to
      the event's own key;
    * the combined delivered stream stays strictly key-increasing and
      duplicate-free across both paths.
    """
    pool, schedule = batch
    delivered: List[Event] = []
    component = OrderingComponent(ManualOracle(ttl=2), delivered.append)
    frontier = component.last_delivered_key
    for ball in schedule:
        component.order_events(ball)
        assert component.last_delivered_key >= frontier
        frontier = component.last_delivered_key
        for _ in range(data.draw(st.integers(min_value=0, max_value=2))):
            idx = data.draw(st.integers(min_value=0, max_value=len(pool) - 1))
            accepted = component.deliver_external(pool[idx])
            if accepted:
                assert component.last_delivered_key == pool[idx].order_key
            assert component.last_delivered_key >= frontier
            frontier = component.last_delivered_key
    drain(component)
    assert component.last_delivered_key >= frontier
    keys = [event.order_key for event in delivered]
    assert keys == sorted(keys)
    assert len(keys) == len(set(keys))  # strict increase, no duplicates
    ids = [event.id for event in delivered]
    assert len(ids) == len(set(ids))


@settings(max_examples=100, deadline=None)
@given(schedules())
def test_external_rejections_do_not_change_state(batch):
    """A rejected external delivery is a no-op on the delivered stream.

    Replaying every already-delivered event (duplicate path) and every
    key at or below the frontier (late path) must return ``False`` and
    leave both the frontier and the delivered sequence untouched.
    """
    pool, schedule = batch
    delivered: List[Event] = []
    component = OrderingComponent(ManualOracle(ttl=2), delivered.append)
    for ball in schedule:
        component.order_events(ball)
    drain(component)
    snapshot = list(delivered)
    frontier = component.last_delivered_key
    for event in snapshot:
        assert component.deliver_external(event) is False
        assert component.last_delivered_key == frontier
    assert delivered == snapshot


@settings(max_examples=100, deadline=None)
@given(schedules())
def test_tagged_stream_never_overlaps_ordered_stream(batch):
    """§8.2: an event is delivered in order or tagged, never both.

    Holds for any copy arriving within the delivered-id retention
    window of ``2*TTL + 2`` rounds — the longest a copy can still be
    circulating in a real deployment. The oracle TTL is sized so the
    whole generated schedule (at most 8 rounds plus the drain) fits in
    the window; behaviour *beyond* the window is pinned by
    ``test_ordering.py::TestDeliveredSetPruning``.
    """
    pool, schedule = batch
    delivered: List[Event] = []
    tagged: List[Event] = []
    # window = 2*9 + 2 = 20 rounds >= 8 schedule rounds + 12 drain.
    component = OrderingComponent(
        ManualOracle(ttl=9), delivered.append, deliver_out_of_order=tagged.append
    )
    for ball in schedule:
        component.order_events(ball)
    drain(component)
    assert set(e.id for e in delivered).isdisjoint(e.id for e in tagged)
