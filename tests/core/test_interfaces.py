"""Protocol conformance: every pluggable implementation satisfies its
declared interface (structural, via runtime_checkable protocols).

These tests pin the plug-in architecture itself: a new transport, PSS
or oracle that passes these checks will work with the core without
modification.
"""

from __future__ import annotations

import random

import pytest

from repro.core.clock import (
    GlobalClockOracle,
    LogicalClockOracle,
    StabilityOracle,
)
from repro.core.interfaces import PeerSampler, Transport
from repro.pss.base import MembershipDirectory
from repro.pss.cyclon import CyclonPss
from repro.pss.uniform import UniformViewPss
from repro.runtime.transport import AsyncNetwork, AsyncNodeTransport
from repro.sim.engine import Simulator
from repro.sim.network import SimNetwork

from ..conftest import ManualOracle, RecordingTransport, StaticPeerSampler


class TestTransportConformance:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: SimNetwork(Simulator()),
            lambda: AsyncNodeTransport(AsyncNetwork()),
            RecordingTransport,
        ],
        ids=["SimNetwork", "AsyncNodeTransport", "RecordingTransport"],
    )
    def test_satisfies_transport_protocol(self, factory):
        assert isinstance(factory(), Transport)


class TestPeerSamplerConformance:
    def test_uniform_view(self):
        directory = MembershipDirectory()
        pss = UniformViewPss(0, directory, random.Random(0))
        assert isinstance(pss, PeerSampler)

    def test_cyclon(self):
        pss = CyclonPss(0, 4, 2, send=lambda d, m: None, rng=random.Random(0))
        assert isinstance(pss, PeerSampler)

    def test_static_test_double(self):
        assert isinstance(StaticPeerSampler([1]), PeerSampler)


class TestOracleConformance:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: GlobalClockOracle(1, lambda: 0),
            lambda: LogicalClockOracle(1),
            lambda: ManualOracle(1),
        ],
        ids=["global", "logical", "manual"],
    )
    def test_satisfies_oracle_protocol(self, factory):
        assert isinstance(factory(), StabilityOracle)


class TestClusterHostableProcesses:
    def test_all_process_kinds_expose_hosting_surface(self):
        """Everything the cluster can host shares broadcast/on_ball/
        on_round — the contract `SimCluster.process_factory` relies on."""
        from repro.broadcast.balls_bins import BallsBinsProcess
        from repro.broadcast.fifo import FifoProcess
        from repro.broadcast.pbcast import StabilityOrderedProcess
        from repro.core.process import EpToProcess

        for cls in (EpToProcess, BallsBinsProcess, FifoProcess,
                    StabilityOrderedProcess):
            for method in ("broadcast", "on_ball", "on_round"):
                assert callable(getattr(cls, method)), (cls, method)
