"""Unit tests for the event model (repro.core.event)."""

from __future__ import annotations

import pytest

from repro.core.event import (
    BallEntry,
    Event,
    EventIdGenerator,
    EventRecord,
    ball_event_ids,
    make_ball,
)

from ..conftest import make_event


class TestEvent:
    def test_fields(self):
        event = Event(id=(3, 1), ts=42, source_id=3, payload="x")
        assert event.seq == 1
        assert event.ts == 42
        assert event.source_id == 3
        assert event.payload == "x"

    def test_order_key_components(self):
        event = Event(id=(3, 7), ts=42, source_id=3)
        assert event.order_key == (42, 3, 7)

    def test_id_must_match_source(self):
        with pytest.raises(ValueError):
            Event(id=(1, 0), ts=0, source_id=2)

    def test_immutable(self):
        event = make_event()
        with pytest.raises(AttributeError):
            event.ts = 99  # type: ignore[misc]

    def test_order_key_sorts_by_ts_first(self):
        early = make_event(src=9, ts=1)
        late = make_event(src=0, ts=2)
        assert early.order_key < late.order_key

    def test_order_key_breaks_ties_by_source(self):
        a = make_event(src=1, ts=5)
        b = make_event(src=2, ts=5)
        assert a.order_key < b.order_key

    def test_order_key_breaks_double_ties_by_seq(self):
        first = make_event(src=1, seq=0, ts=5)
        second = make_event(src=1, seq=1, ts=5)
        assert first.order_key < second.order_key

    def test_equality_is_structural(self):
        assert make_event(src=1, seq=2, ts=3) == make_event(src=1, seq=2, ts=3)
        assert make_event(src=1, seq=2, ts=3) != make_event(src=1, seq=2, ts=4)


class TestBallEntry:
    def test_negative_ttl_rejected(self):
        with pytest.raises(ValueError):
            BallEntry(make_event(), ttl=-1)

    def test_ball_is_immutable_tuple(self):
        ball = make_ball([BallEntry(make_event(), 0)])
        assert isinstance(ball, tuple)
        with pytest.raises(TypeError):
            ball[0] = None  # type: ignore[index]

    def test_ball_event_ids(self):
        ball = make_ball(
            [BallEntry(make_event(src=1), 0), BallEntry(make_event(src=2), 1)]
        )
        assert list(ball_event_ids(ball)) == [(1, 0), (2, 0)]


class TestEventRecord:
    def test_age_increments(self):
        record = EventRecord(make_event(), ttl=0)
        record.age()
        record.age()
        assert record.ttl == 2

    def test_merge_keeps_larger(self):
        record = EventRecord(make_event(), ttl=3)
        record.merge_ttl(5)
        assert record.ttl == 5
        record.merge_ttl(2)
        assert record.ttl == 5

    def test_to_entry_snapshots(self):
        record = EventRecord(make_event(), ttl=4)
        entry = record.to_entry()
        record.age()
        assert entry.ttl == 4  # snapshot unaffected by later aging


class TestEventIdGenerator:
    def test_sequential_ids(self):
        gen = EventIdGenerator(source_id=7)
        assert gen.next_id() == (7, 0)
        assert gen.next_id() == (7, 1)
        assert gen.issued == 2

    def test_independent_generators(self):
        a, b = EventIdGenerator(1), EventIdGenerator(2)
        assert a.next_id() == (1, 0)
        assert b.next_id() == (2, 0)
        assert a.next_id() == (1, 1)
