"""Unit tests for the lazy-push payload store (repro.lazy.store)."""

from __future__ import annotations

import pytest

from repro.core.event import Event
from repro.lazy.store import PayloadStore


def _event(src=1, seq=0, payload="p"):
    return Event(id=(src, seq), ts=10 + seq, source_id=src, payload=payload)


class TestPut:
    def test_put_stores_and_counts(self):
        store = PayloadStore(retention_rounds=4)
        assert store.put(_event(), 0)
        assert (1, 0) in store
        assert len(store) == 1
        assert store.stats.stored == 1

    def test_put_is_idempotent(self):
        store = PayloadStore(retention_rounds=4)
        event = _event()
        assert store.put(event, 0)
        assert not store.put(event, 1)
        assert len(store) == 1
        assert store.stats.stored == 1

    def test_invalid_retention_rejected(self):
        with pytest.raises(ValueError):
            PayloadStore(retention_rounds=0)


class TestServe:
    def test_serve_counts_hits_and_misses(self):
        store = PayloadStore(retention_rounds=4)
        event = _event(payload={"k": 1})
        store.put(event, 0)
        assert store.serve((1, 0)) == event
        assert store.serve((9, 9)) is None
        assert store.stats.served == 1
        assert store.stats.misses == 1

    def test_get_does_not_count_a_pull(self):
        store = PayloadStore(retention_rounds=4)
        store.put(_event(), 0)
        assert store.get((1, 0)) is not None
        assert store.get((9, 9)) is None
        assert store.stats.served == 0
        assert store.stats.misses == 0


class TestGc:
    def test_gc_evicts_only_expired_entries(self):
        store = PayloadStore(retention_rounds=3)
        store.put(_event(seq=0), 0)
        store.put(_event(seq=1), 5)
        assert store.gc(3) == 0  # round 0 entry still inside retention
        assert store.gc(4) == 1  # now more than retention_rounds old
        assert (1, 0) not in store
        assert (1, 1) in store
        assert store.stats.evicted == 1

    def test_gc_is_monotone_and_repeat_safe(self):
        store = PayloadStore(retention_rounds=2)
        for seq in range(5):
            store.put(_event(seq=seq), seq)
        assert store.gc(10) == 5
        assert store.gc(10) == 0
        assert len(store) == 0
