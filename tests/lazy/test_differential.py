"""Differential eager-vs-lazy total-order tests (ISSUE acceptance).

The lazy subsystem reorders *bytes*, never *events*: for the identical
seeded workload, a ``mode="lazy"`` cluster must deliver the same total
order as a ``mode="eager"`` one. Exact per-node sequence equality
cannot be demanded once loss or realistic overlays are in play — the
two modes draw different amounts of network randomness, and bootstrap
view lag at small n produces (identical-looking) early holes in *both*
modes — so the check is the total-order contract itself:

* within each mode, every node's sequence is a prefix-compatible
  subsequence of the longest sequence (no agreement violations);
* across modes, the longest sequences are identical (same events, same
  total order).

Run across 28 seeded configurations including loss and churn.
"""

from __future__ import annotations

import pytest

from repro.core import EpToConfig
from repro.metrics.checker import check_run
from repro.sim import ClusterConfig, FixedLatency, SimCluster, SimNetwork, Simulator

N = 8
EVENTS = 4
INTERVAL = 100


def _run_mode(mode, seed, loss=0.0, churn=False, pss="uniform"):
    sim = Simulator(seed=seed)
    network = SimNetwork(sim, latency=FixedLatency(5), loss_rate=loss)
    config = ClusterConfig(
        epto=EpToConfig(fanout=4, ttl=8, round_interval=INTERVAL, mode=mode),
        pss=pss,
        expected_size=N,
    )
    cluster = SimCluster(sim, network, config)
    cluster.add_nodes(N)
    # Broadcasts start after a few rounds so realistic overlays mix;
    # broadcasters are nodes 0..EVENTS-1.
    for i in range(EVENTS):
        sim.schedule_at(
            600 + i * INTERVAL,
            lambda nd=i: cluster.broadcast_from(nd, f"evt-{nd}"),
        )
    if churn:
        # Crash a non-broadcaster mid-workload (the same tick in both
        # modes: the churn schedule must not depend on traffic).
        sim.schedule_at(750, lambda: cluster.remove_node(N - 1))
    sim.run(until=600 + EVENTS * INTERVAL + 40 * INTERVAL)
    return cluster


def _is_subsequence(shorter, longer):
    it = iter(longer)
    return all(key in it for key in shorter)


def _mode_order(cluster):
    """Longest delivered sequence, after checking intra-mode agreement."""
    collector = cluster.collector
    sequences = [
        tuple(collector.sequence_of(nid)) for nid in cluster.alive_ids()
    ]
    longest = max(sequences, key=len)
    for sequence in sequences:
        assert _is_subsequence(sequence, longest), (
            "agreement violation inside one mode: "
            f"{sequence} is not a subsequence of {longest}"
        )
    report = check_run(
        collector,
        correct_nodes=collector.stable_nodes(since=0, until=10**9),
    )
    assert report.safety_ok
    return longest


CONFIGS = (
    # 16 clean/lossy uniform-PSS seeds ...
    [(seed, 0.0, False, "uniform") for seed in range(1, 9)]
    + [(seed, 0.05, False, "uniform") for seed in range(9, 17)]
    # ... 4 heavier-loss, 4 churn, 4 realistic-overlay configurations.
    + [(seed, 0.15, False, "uniform") for seed in range(17, 21)]
    + [(seed, 0.05, True, "uniform") for seed in range(21, 25)]
    + [(25, 0.0, False, "cyclon"), (26, 0.0, False, "hyparview")]
    + [(27, 0.0, False, "brahms"), (28, 0.05, True, "cyclon")]
)


@pytest.mark.parametrize(
    ("seed", "loss", "churn", "pss"),
    CONFIGS,
    ids=[f"seed{s}-loss{l}-churn{c}-{p}" for s, l, c, p in CONFIGS],
)
def test_lazy_delivers_the_same_total_order_as_eager(seed, loss, churn, pss):
    eager = _mode_order(_run_mode("eager", seed, loss, churn, pss))
    lazy = _mode_order(_run_mode("lazy", seed, loss, churn, pss))
    assert lazy == eager


def test_config_count_meets_the_acceptance_floor():
    assert len(CONFIGS) >= 20
