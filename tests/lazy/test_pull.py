"""Unit tests for the duplicate-suppressing pull manager (repro.lazy.pull)."""

from __future__ import annotations

import random

import pytest

from repro.lazy.pull import PullManager


def _manager(**kwargs):
    kwargs.setdefault("rng", random.Random(7))
    return PullManager(node_id=0, **kwargs)


class TestWant:
    def test_want_registers_once(self):
        pull = _manager()
        assert pull.want((1, 0), advertisers=[1])
        assert not pull.want((1, 0), advertisers=[2])
        assert pull.pending_count == 1
        assert pull.is_pending((1, 0))

    def test_duplicate_sightings_accumulate_advertisers(self):
        pull = _manager()
        pull.want((1, 0), advertisers=[1])
        pull.note_advertiser((1, 0), 2)
        pull.note_advertiser((1, 0), 2)  # dedup
        pull.note_advertiser((1, 0), 0)  # never self
        requests = pull.collect(0)
        assert len(requests) == 1
        pull.reject((1, 0), requests[0][0])
        # The retry rotates to the second advertiser.
        retry = pull.collect(1)
        assert retry[0][0] == 2

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            _manager(timeout_rounds=0)
        with pytest.raises(ValueError):
            _manager(max_ids_per_request=0)


class TestCollect:
    def test_collect_batches_per_advertiser(self):
        pull = _manager()
        pull.want((1, 0), advertisers=[5])
        pull.want((1, 1), advertisers=[5])
        pull.want((2, 0), advertisers=[6])
        requests = pull.collect(0)
        by_peer = {dst: req for dst, req in requests}
        assert set(by_peer) == {5, 6}
        assert set(by_peer[5].ids) == {(1, 0), (1, 1)}
        assert by_peer[6].ids == ((2, 0),)
        assert pull.stats.pulls_issued == 3
        assert pull.stats.requests_sent == 2

    def test_inflight_ids_are_not_rerequested(self):
        pull = _manager()
        pull.want((1, 0), advertisers=[5])
        assert len(pull.collect(0)) == 1
        # Still in flight: no duplicate request next round.
        assert pull.collect(1) == []

    def test_batch_cap_splits_requests(self):
        pull = _manager(max_ids_per_request=2)
        for seq in range(5):
            pull.want((1, seq), advertisers=[5])
        requests = pull.collect(0)
        assert len(requests) == 3
        assert sorted(len(req.ids) for _, req in requests) == [1, 2, 2]

    def test_no_advertisers_means_no_request(self):
        pull = _manager()
        pull.want((1, 0))
        assert pull.collect(0) == []
        # An advertiser showing up later unblocks the pull.
        pull.note_advertiser((1, 0), 3)
        assert pull.collect(1)[0][0] == 3

    def test_req_id_wraps_at_u32(self):
        pull = _manager()
        pull._next_req_id = 0xFFFFFFFF
        pull.want((1, 0), advertisers=[5])
        _, request = pull.collect(0)[0]
        assert request.req_id == 0xFFFFFFFF
        assert pull._next_req_id == 0


class TestTimeoutAndRetry:
    def test_timeout_expires_and_retries(self):
        pull = _manager(timeout_rounds=2)
        pull.want((1, 0), advertisers=[5, 6])
        assert pull.collect(0)[0][0] == 5
        assert pull.collect(1) == []  # not timed out yet
        retry = pull.collect(2)  # expired: rotate to the next advertiser
        assert retry[0][0] == 6
        assert pull.stats.pulls_retried == 1

    def test_reject_retries_before_timeout(self):
        pull = _manager(timeout_rounds=10)
        pull.want((1, 0), advertisers=[5, 6])
        pull.collect(0)
        pull.reject((1, 0), 5)
        assert pull.stats.pulls_failed == 1
        # No waiting out the long timeout: retry fires immediately.
        assert pull.collect(1)[0][0] == 6

    def test_single_advertiser_is_retried_again(self):
        pull = _manager(timeout_rounds=1)
        pull.want((1, 0), advertisers=[5])
        assert pull.collect(0)[0][0] == 5
        assert pull.collect(1)[0][0] == 5  # rotation of length 1


class TestSatisfy:
    def test_satisfy_retires_the_pull(self):
        pull = _manager()
        pull.want((1, 0), advertisers=[5])
        requests = pull.collect(0)
        assert pull.satisfy((1, 0))
        assert not pull.satisfy((1, 0))  # duplicate response
        assert pull.pending_count == 0
        assert pull.stats.pulls_served == 1
        pull.acknowledge(requests[0][1].req_id)
        assert pull.collect(1) == []

    def test_partial_response_keeps_siblings_pending(self):
        pull = _manager(timeout_rounds=1)
        pull.want((1, 0), advertisers=[5])
        pull.want((1, 1), advertisers=[5])
        pull.collect(0)
        pull.satisfy((1, 0))
        assert pull.is_pending((1, 1))
        # The sibling id still expires and retries on its own.
        assert pull.collect(2)[0][1].ids == ((1, 1),)
