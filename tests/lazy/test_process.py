"""Behavioral tests for lazy-mode clusters (repro.lazy.process).

Built on the simulator: a ``mode="lazy"`` :class:`SimCluster` ships
id-only balls, pulls payloads on demand, and must deliver the same
events — with their payloads intact — as the eager protocol, holding
ordered events in the gate only while their payload is in flight.
"""

from __future__ import annotations

from collections import defaultdict

import pytest

from repro.core import EpToConfig
from repro.core.errors import MembershipError
from repro.lazy.process import LazyEpToProcess
from repro.lazy.protocol import PayloadResponse
from repro.sim import ClusterConfig, FixedLatency, SimCluster, SimNetwork, Simulator
from repro.sync.config import SyncConfig


def build_lazy_cluster(n=6, pss="uniform", seed=11, fanout=3, ttl=6, retention=None):
    """A lazy-mode cluster whose per-node deliveries (full events) are
    recorded via a process factory, since the collector keeps keys only."""
    sim = Simulator(seed=seed)
    network = SimNetwork(sim, latency=FixedLatency(5))
    config = ClusterConfig(
        epto=EpToConfig(fanout=fanout, ttl=ttl, round_interval=100, mode="lazy"),
        pss=pss,
        expected_size=n,
    )
    delivered = defaultdict(list)

    def factory(*, node_id, pss, transport, on_deliver, time_source, rng):
        def recording(event):
            delivered[node_id].append(event)
            on_deliver(event)

        return LazyEpToProcess(
            node_id=node_id,
            config=config.epto,
            peer_sampler=pss,
            transport=transport,
            on_deliver=recording,
            time_source=time_source,
            rng=rng,
            system_size_hint=n,
            retention_rounds=retention,
        )

    cluster = SimCluster(sim, network, config, process_factory=factory)
    cluster.add_nodes(n)
    return sim, network, cluster, delivered


class TestDelivery:
    def test_lazy_cluster_delivers_payloads_intact(self):
        sim, _, cluster, delivered = build_lazy_cluster(n=6)
        payloads = {i: {"value": i, "blob": "x" * 50} for i in range(3)}
        for i, payload in payloads.items():
            sim.schedule_at(50 + i * 100, lambda p=payload, nd=i: cluster.broadcast_from(nd, p))
        sim.run(until=6000)
        assert cluster.collector.delivery_count == 3 * 6
        assert not cluster.collector.holes()
        for node_id in cluster.alive_ids():
            got = sorted(
                (event.source_id, event.payload["value"]) for event in delivered[node_id]
            )
            assert got == [(i, i) for i in range(3)]
            # Full payloads, not the id-ball's payload=None placeholders.
            assert all(
                event.payload == payloads[event.source_id]
                for event in delivered[node_id]
            )

    def test_pull_statistics_are_exercised(self):
        sim, _, cluster, _ = build_lazy_cluster(n=6)
        sim.schedule_at(50, lambda: cluster.broadcast_from(0, "stats"))
        sim.run(until=6000)
        totals = defaultdict(int)
        for node_id in cluster.alive_ids():
            for key, value in cluster.node(node_id).stats_snapshot().items():
                totals[key] += value
        assert totals["id_balls_sent"] > 0
        assert totals["pulls_issued"] >= 5  # every non-source pulled once
        assert totals["pulls_served"] >= 5
        assert totals["payload_bytes"] > 0
        assert totals["metadata_bytes"] > totals["payload_bytes"]

    def test_store_retention_gc_evicts_after_drain(self):
        sim, _, cluster, _ = build_lazy_cluster(n=5)
        sim.schedule_at(50, lambda: cluster.broadcast_from(0, "gc-me"))
        sim.run(until=20_000)  # long drain: far past any retention window
        stored = sum(len(cluster.node(nid).store) for nid in cluster.alive_ids())
        evicted = sum(
            cluster.node(nid).store.stats.evicted for nid in cluster.alive_ids()
        )
        assert stored == 0
        assert evicted >= 5


class TestPayloadGate:
    def test_gate_holds_deliveries_while_responses_are_lost(self):
        # Retention must outlive the engineered outage (the default
        # window would rightly evict the payload mid-blackout).
        sim, network, cluster, delivered = build_lazy_cluster(n=6, retention=500)
        original = network.send

        def dropping(src, dst, msg):
            if isinstance(msg, PayloadResponse):
                return
            original(src, dst, msg)

        network.send = dropping  # type: ignore[method-assign]
        sim.schedule_at(50, lambda: cluster.broadcast_from(0, "held-hostage"))
        sim.run(until=4000)
        # Ordering finished everywhere, but only the source (which holds
        # its own payload) could pass the gate.
        assert delivered[0] and delivered[0][0].payload == "held-hostage"
        held = sum(cluster.node(nid).held_count for nid in cluster.alive_ids())
        assert held >= 1
        assert cluster.collector.delivery_count < 6

        # Heal the network: retries pull the payload and the gate opens.
        network.send = original  # type: ignore[method-assign]
        sim.run(until=12_000)
        assert cluster.collector.delivery_count == 6
        for node_id in cluster.alive_ids():
            assert [event.payload for event in delivered[node_id]] == ["held-hostage"]
        retried = sum(
            cluster.node(nid).pull.stats.pulls_retried
            for nid in cluster.alive_ids()
        )
        assert retried >= 1


class TestModeGuards:
    def test_sync_with_lazy_mode_rejected(self, tmp_path):
        sim = Simulator(seed=3)
        network = SimNetwork(sim)
        config = ClusterConfig(
            epto=EpToConfig(fanout=2, ttl=3, round_interval=100, mode="lazy"),
        )
        with pytest.raises(MembershipError, match="lazy"):
            SimCluster(
                sim,
                network,
                config,
                storage_dir=tmp_path,
                sync=SyncConfig(),
            )

    def test_eager_cluster_has_no_lazy_surface(self):
        sim = Simulator(seed=3)
        network = SimNetwork(sim)
        cluster = SimCluster(
            sim,
            network,
            ClusterConfig(epto=EpToConfig(fanout=2, ttl=3, round_interval=100)),
        )
        cluster.add_nodes(2)
        assert not hasattr(cluster.node(0), "on_lazy_message")


class TestRealisticOverlays:
    @pytest.mark.parametrize("pss", ["cyclon", "hyparview", "brahms"])
    def test_lazy_mode_delivers_over_realistic_overlays(self, pss):
        sim, _, cluster, delivered = build_lazy_cluster(n=8, pss=pss, fanout=3, ttl=7)
        # Let the overlay mix before the workload starts (bootstrap
        # views lag at small n; Figure 9 measures exactly that).
        for i in range(3):
            sim.schedule_at(
                900 + i * 100, lambda nd=i: cluster.broadcast_from(nd, f"evt-{nd}")
            )
        sim.run(until=12_000)
        assert cluster.collector.delivery_count == 3 * 8
        for node_id in cluster.alive_ids():
            assert sorted(event.payload for event in delivered[node_id]) == [
                "evt-0",
                "evt-1",
                "evt-2",
            ]
