"""Tests for the per-cluster key ring (repro.auth.keyring)."""

from __future__ import annotations

import pytest

from repro.auth import KeyRing, derive_key
from repro.core.errors import AuthError


class TestDerivation:
    def test_deterministic(self):
        assert derive_key(b"m", 3, 0) == derive_key(b"m", 3, 0)

    def test_distinct_per_node_and_epoch_and_master(self):
        keys = {
            derive_key(b"m", 1, 0),
            derive_key(b"m", 2, 0),
            derive_key(b"m", 1, 1),
            derive_key(b"other", 1, 0),
        }
        assert len(keys) == 4

    def test_two_rings_same_master_agree(self):
        a, b = KeyRing("cluster-secret"), KeyRing("cluster-secret")
        assert a.key_for(7) == b.key_for(7)

    def test_str_master_is_utf8_encoded(self):
        assert KeyRing("s").key_for(1) == KeyRing(b"s").key_for(1)


class TestValidation:
    def test_empty_master_rejected(self):
        with pytest.raises(AuthError):
            KeyRing("")
        with pytest.raises(AuthError):
            KeyRing(b"")

    def test_negative_retention_rejected(self):
        with pytest.raises(AuthError):
            KeyRing("m", retain_epochs=-1)


class TestRotation:
    def test_rotate_changes_key_and_epoch(self):
        ring = KeyRing("m")
        old = ring.key_for(4)
        assert ring.rotate(4) == 1
        assert ring.epoch_of(4) == 1
        assert ring.key_for(4) != old

    def test_retention_window(self):
        ring = KeyRing("m", retain_epochs=1)
        assert ring.accepts(4, 0)
        ring.rotate(4)
        assert ring.accepts(4, 0)  # one behind: still verifiable
        assert ring.accepts(4, 1)
        ring.rotate(4)
        assert not ring.accepts(4, 0)  # two behind: aged out
        assert not ring.accepts(4, 3)  # future epochs never accepted

    def test_zero_retention_is_instant_cutover(self):
        ring = KeyRing("m", retain_epochs=0)
        ring.rotate(4)
        assert not ring.accepts(4, 0)

    def test_key_for_out_of_window_epoch_raises(self):
        ring = KeyRing("m", retain_epochs=0)
        ring.rotate(4)
        with pytest.raises(AuthError):
            ring.key_for(4, epoch=0)


class TestRevocation:
    def test_revoked_node_rejected_everywhere(self):
        ring = KeyRing("m")
        ring.revoke(9)
        assert ring.is_revoked(9)
        assert not ring.accepts(9, 0)
        with pytest.raises(AuthError):
            ring.key_for(9)
        with pytest.raises(AuthError):
            ring.rotate(9)

    def test_other_nodes_unaffected(self):
        ring = KeyRing("m")
        ring.revoke(9)
        assert ring.accepts(8, 0)
        ring.key_for(8)
