"""Tests for HMAC event signing/verification (repro.auth.authenticator)."""

from __future__ import annotations

import dataclasses

import pytest

from repro.auth import (
    MAC_LEN,
    VERDICT_BAD_SIGNATURE,
    VERDICT_OK,
    VERDICT_UNKNOWN_KEY,
    EventSignature,
    HmacAuthenticator,
    KeyRing,
    SignedBall,
)
from repro.core.event import BallEntry, Event, make_ball


def _event(src=1, seq=0, ts=10, payload=None):
    return Event(
        id=(src, seq),
        ts=ts,
        source_id=src,
        payload={"v": seq} if payload is None else payload,
    )


@pytest.fixture
def auth():
    return HmacAuthenticator(KeyRing("test-cluster"))


class TestSignVerify:
    def test_genuine_signature_verifies(self, auth):
        event = _event()
        signature = auth.sign(event)
        assert len(signature.mac) == MAC_LEN
        assert auth.verify(event, signature) == VERDICT_OK

    def test_deterministic(self, auth):
        event = _event()
        assert auth.sign(event) == auth.sign(event)

    def test_tampered_payload_rejected(self, auth):
        event = _event()
        signature = auth.sign(event)
        forged = dataclasses.replace(event, payload={"v": "evil"})
        assert auth.verify(forged, signature) == VERDICT_BAD_SIGNATURE

    def test_tampered_timestamp_rejected(self, auth):
        event = _event()
        signature = auth.sign(event)
        forged = dataclasses.replace(event, ts=event.ts + 1)
        assert auth.verify(forged, signature) == VERDICT_BAD_SIGNATURE

    def test_signature_does_not_transfer_between_sources(self, auth):
        # A relay holding node 1's signature cannot re-bind it to an
        # event under node 2's identity: the verify key follows the
        # claimed source.
        signature = auth.sign(_event(src=1))
        assert auth.verify(_event(src=2), signature) == VERDICT_BAD_SIGNATURE

    def test_truncated_mac_rejected(self, auth):
        event = _event()
        signature = auth.sign(event)
        clipped = EventSignature(epoch=signature.epoch, mac=signature.mac[:-1])
        assert auth.verify(event, clipped) == VERDICT_BAD_SIGNATURE


class TestEpochs:
    def test_signature_survives_one_rotation(self):
        ring = KeyRing("m", retain_epochs=1)
        auth = HmacAuthenticator(ring)
        event = _event()
        signature = auth.sign(event)
        ring.rotate(event.source_id)
        assert auth.verify(event, signature) == VERDICT_OK

    def test_signature_ages_out_after_two_rotations(self):
        ring = KeyRing("m", retain_epochs=1)
        auth = HmacAuthenticator(ring)
        event = _event()
        signature = auth.sign(event)
        ring.rotate(event.source_id)
        ring.rotate(event.source_id)
        assert auth.verify(event, signature) == VERDICT_UNKNOWN_KEY

    def test_new_epoch_signature_carries_epoch(self):
        ring = KeyRing("m")
        auth = HmacAuthenticator(ring)
        event = _event()
        ring.rotate(event.source_id)
        signature = auth.sign(event)
        assert signature.epoch == 1
        assert auth.verify(event, signature) == VERDICT_OK

    def test_revoked_source_is_unknown_key(self):
        ring = KeyRing("m")
        auth = HmacAuthenticator(ring)
        event = _event(src=5)
        signature = auth.sign(event)
        ring.revoke(5)
        assert auth.verify(event, signature) == VERDICT_UNKNOWN_KEY


class TestSignedBall:
    def test_length_mismatch_rejected(self, auth):
        from repro.core.errors import AuthError

        ball = make_ball([BallEntry(_event(seq=i), ttl=3) for i in range(2)])
        with pytest.raises(AuthError):
            SignedBall(entries=tuple(ball), signatures=(None,))

    def test_carries_optional_signatures(self, auth):
        ball = make_ball([BallEntry(_event(seq=i), ttl=3) for i in range(2)])
        signed = SignedBall(
            entries=tuple(ball),
            signatures=(auth.sign(ball[0].event), None),
        )
        assert signed.signatures[1] is None
        assert auth.verify(signed.entries[0].event, signed.signatures[0]) == VERDICT_OK
