"""Tests for per-fabric seal/admit (repro.auth.guard)."""

from __future__ import annotations

import dataclasses

import pytest

from repro.auth import BallGuard, HmacAuthenticator, KeyRing
from repro.core.event import BallEntry, Event, make_ball


def _event(src=1, seq=0, ts=10, payload=None):
    return Event(
        id=(src, seq),
        ts=ts,
        source_id=src,
        payload={"v": seq} if payload is None else payload,
    )


def _ball(*events, ttl=4):
    return make_ball([BallEntry(event, ttl=ttl) for event in events])


@pytest.fixture
def guard():
    return BallGuard(HmacAuthenticator(KeyRing("test-cluster")))


class TestSeal:
    def test_seals_only_own_entries(self, guard):
        own, relayed = _event(src=1, seq=0), _event(src=2, seq=0)
        guard.seal(1, _ball(own, relayed))
        assert guard.cached_signature(own.id) is not None
        assert guard.cached_signature(relayed.id) is None

    def test_sign_once_cache_pins_original_bytes(self, guard):
        # The origin seals before any relay can forward; a later seal of
        # a mutated copy under the same id must not overwrite the
        # genuine signature — that is what defeats equivocation.
        own = _event(src=1, seq=0)
        guard.seal(1, _ball(own))
        original = guard.cached_signature(own.id)
        mutated = dataclasses.replace(own, payload={"v": "evil"})
        guard.seal(1, _ball(mutated))
        assert guard.cached_signature(own.id) == original

    def test_attach_pairs_cached_signatures(self, guard):
        own, relayed = _event(src=1, seq=0), _event(src=2, seq=0)
        ball = _ball(own, relayed)
        guard.seal(1, ball)
        signed = guard.attach(ball)
        assert signed.signatures[0] is not None
        assert signed.signatures[1] is None


class TestAdmit:
    def test_sealed_ball_admitted_in_full(self, guard):
        events = [_event(src=i, seq=0) for i in (1, 2, 3)]
        ball = _ball(*events)
        for event in events:
            guard.seal(event.source_id, ball)
        admitted, counts = guard.admit_ball(ball)
        assert admitted == ball
        assert counts.rejected == 0

    def test_mutated_copy_under_cached_id_rejected(self, guard):
        own = _event(src=1, seq=0)
        guard.seal(1, _ball(own))
        forged = dataclasses.replace(own, payload={"v": "evil"})
        admitted, counts = guard.admit_ball(_ball(forged))
        assert admitted == ()
        assert counts.bad_signature == 1

    def test_unsigned_entry_counted_not_admitted(self, guard):
        admitted, counts = guard.admit_ball(_ball(_event(src=1)))
        assert admitted == ()
        assert counts.unsigned == 1

    def test_mixed_ball_admits_honest_remainder(self, guard):
        honest, unsigned = _event(src=1, seq=0), _event(src=2, seq=0)
        guard.seal(1, _ball(honest))
        admitted, counts = guard.admit_ball(_ball(honest, unsigned))
        assert [entry.event.id for entry in admitted] == [honest.id]
        assert counts.unsigned == 1

    def test_admit_signed_caches_for_onward_relay(self, guard):
        origin = BallGuard(guard.authenticator)
        own = _event(src=1, seq=0)
        ball = _ball(own)
        origin.seal(1, ball)
        wire = origin.attach(ball)

        admitted, counts = guard.admit_signed(wire)
        assert counts.rejected == 0 and len(admitted) == 1
        # The receiver can now relay the entry onward with the MAC.
        relayed = guard.attach(ball)
        assert relayed.signatures[0] == wire.signatures[0]

    def test_unknown_key_verdict_counted(self, guard):
        ring = guard.authenticator.keyring
        own = _event(src=7, seq=0)
        ball = _ball(own)
        guard.seal(7, ball)
        wire = guard.attach(ball)
        ring.revoke(7)
        receiver = BallGuard(guard.authenticator)
        admitted, counts = receiver.admit_signed(wire)
        assert admitted == ()
        assert counts.unknown_key == 1


class TestCache:
    def test_fifo_eviction_bounds_memory(self):
        guard = BallGuard(
            HmacAuthenticator(KeyRing("test-cluster")), cache_size=2
        )
        events = [_event(src=1, seq=i) for i in range(3)]
        for event in events:
            guard.seal(1, _ball(event))
        assert len(guard) == 2
        assert guard.cached_signature(events[0].id) is None
        assert guard.cached_signature(events[2].id) is not None
