"""End-to-end integration tests: Table 1 over full simulated runs.

Each test assembles a realistic deployment (PlanetLab-like latency,
drift, optionally loss/churn/Cyclon) with a multi-round workload and
checks the full specification. These are the library-level counterparts
of the paper's headline claim: across every experiment, *no hole and no
order violation was ever observed* at the theoretical parameters.
"""

from __future__ import annotations

import pytest

from repro.core import EpToConfig
from repro.experiments.common import ExperimentSpec, run_experiment
from repro.metrics import check_run
from repro.sim import (
    ChurnDriver,
    ClusterConfig,
    PlanetLabLatency,
    SimCluster,
    SimNetwork,
    Simulator,
)
from repro.workloads import ProbabilisticWorkload


def full_run(
    n=30,
    seed=1,
    clock="global",
    loss_rate=0.0,
    churn_rate=0.0,
    pss="uniform",
    rate=0.1,
    rounds=4,
):
    spec = ExperimentSpec(
        name=f"integration-{seed}",
        n=n,
        seed=seed,
        clock=clock,
        loss_rate=loss_rate,
        churn_rate=churn_rate,
        pss=pss,
        broadcast_rate=rate,
        broadcast_rounds=rounds,
        warmup_rounds=8 if pss == "cyclon" else 0,
    )
    return run_experiment(spec)


class TestHappyPath:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_no_holes_no_violations_across_seeds(self, seed):
        result = full_run(seed=seed)
        assert result.report.safety_ok
        assert result.holes == 0
        assert result.deliveries == result.events_broadcast * 30

    def test_logical_clock_full_run(self):
        result = full_run(clock="logical", seed=6)
        assert result.report.safety_ok
        assert result.holes == 0

    def test_delays_scale_with_ttl(self):
        # Doubling the TTL (logical clock) roughly doubles the delay.
        fast = full_run(seed=7, clock="global")
        slow = full_run(seed=7, clock="logical")
        assert slow.summary.p50 > 1.5 * fast.summary.p50


class TestAdverseConditions:
    def test_heavy_message_loss(self):
        result = full_run(seed=8, loss_rate=0.15)
        assert result.report.safety_ok
        assert result.holes == 0

    def test_churn(self):
        result = full_run(n=40, seed=9, churn_rate=0.05, rounds=4)
        assert result.report.safety_ok
        assert result.holes == 0
        assert result.stable_nodes < 40

    def test_churn_plus_loss_with_cyclon(self):
        result = full_run(
            n=40, seed=10, churn_rate=0.03, loss_rate=0.05, pss="cyclon"
        )
        assert result.report.safety_ok
        assert result.holes == 0

    def test_undersized_ttl_can_violate_agreement_not_order(self):
        """Starving the TTL may create holes (agreement is only
        probabilistic) but NEVER order violations (deterministic)."""
        spec = ExperimentSpec(
            name="starved",
            n=30,
            seed=11,
            ttl=2,  # far below the ~17 the theory wants
            broadcast_rate=0.1,
            broadcast_rounds=4,
        )
        result = run_experiment(spec)
        # Deterministic safety must survive even mis-parameterization.
        assert not result.report.order_violations
        assert not result.report.integrity_violations


class TestPartitionedNetwork:
    def test_partition_heals_and_system_catches_up(self):
        sim = Simulator(seed=12)
        network = SimNetwork(sim, latency=PlanetLabLatency())
        config = EpToConfig.for_system_size(20)
        cluster = SimCluster(sim, network, ClusterConfig(epto=config))
        cluster.add_nodes(20)
        delta = config.round_interval

        # Split 10/10, broadcast within the majority side.
        groups = {nid: ("a" if nid < 10 else "b") for nid in range(20)}
        network.set_partition(groups)
        cluster.broadcast_from(0, "during-partition")
        sim.run_for(3 * delta)
        network.heal_partition()
        cluster.broadcast_from(12, "after-heal")
        sim.run_for((config.ttl + 12) * delta)

        report = check_run(cluster.collector)
        # Total order must hold for whatever was delivered.
        assert not report.order_violations
        assert not report.integrity_violations
        # The post-heal event reaches everyone.
        after = [
            rec.event
            for rec in cluster.collector.broadcasts()
            if rec.event.payload == "after-heal"
        ][0]
        delivered_by = sum(
            1
            for nid in cluster.alive_ids()
            if after.id in cluster.collector.delivered_ids_of(nid)
        )
        assert delivered_by == 20


class TestDeterminismEndToEnd:
    def test_identical_runs_bit_for_bit(self):
        a = full_run(seed=13)
        b = full_run(seed=13)
        assert a.delays == b.delays
        assert a.messages_sent == b.messages_sent
        assert a.events_broadcast == b.events_broadcast


class TestDuplicationAdversary:
    def test_integrity_under_heavy_duplication(self):
        """EpTO's integrity property absorbs network-level duplicates:
        every ball delivered twice must not cause double deliveries."""
        sim = Simulator(seed=14)
        network = SimNetwork(sim, latency=PlanetLabLatency(), duplicate_rate=0.5)
        config = EpToConfig.for_system_size(20)
        cluster = SimCluster(sim, network, ClusterConfig(epto=config))
        cluster.add_nodes(20)
        ProbabilisticWorkload(sim, cluster, rate=0.1, rounds=3)
        sim.run(until=(3 + config.ttl + 14) * config.round_interval)

        assert network.stats.duplicated > 0
        report = check_run(cluster.collector)
        assert report.safety_ok  # in particular: no duplicate delivery
        assert report.agreement_ok
        collector = cluster.collector
        assert collector.delivery_count == collector.broadcast_count * 20
