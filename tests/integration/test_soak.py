"""Soak test: one long run through every adverse condition in sequence.

A chaos-style scenario stitching together everything the paper claims
EpTO survives, in one continuous simulation:

1. normal operation (PlanetLab latency, drift, steady workload);
2. a churn burst (10% of the population replaced per round);
3. a network partition that splits the system in half, then heals;
4. a loss spike (20% of all messages dropped);
5. quiet recovery.

Deterministic safety (integrity + total order) must hold across the
*entire* run, and after recovery the stable population must be
hole-free for every event that any of them delivered — the paper's
"well-behaving part of the network works smoothly" claim (§1.1),
exercised harder than any single experiment does.
"""

from __future__ import annotations

from repro.core import EpToConfig
from repro.metrics import check_run
from repro.sim import (
    ChurnDriver,
    ClusterConfig,
    PlanetLabLatency,
    SimCluster,
    SimNetwork,
    Simulator,
)
from repro.workloads import ProbabilisticWorkload


def test_soak_through_sequential_adversities():
    n = 40
    sim = Simulator(seed=2026)
    network = SimNetwork(sim, latency=PlanetLabLatency())
    # Provision for the worst phase (10% churn, 20% loss).
    config = EpToConfig.for_system_size(n, churn_rate=0.10, loss_rate=0.20)
    cluster = SimCluster(sim, network, ClusterConfig(epto=config))
    cluster.add_nodes(n)
    delta = config.round_interval

    # Steady background workload across all phases.
    total_workload_rounds = 20
    ProbabilisticWorkload(sim, cluster, rate=0.05, rounds=total_workload_rounds)

    # Phase 1: normal operation.
    sim.run_for(4 * delta)

    # Phase 2: churn burst.
    churn = ChurnDriver(sim, cluster, rate=0.10)
    sim.run_for(4 * delta)
    churn.stop()

    # Phase 3: partition (split current membership in half), then heal.
    alive = list(cluster.alive_ids())
    groups = {
        nid: ("left" if idx < len(alive) // 2 else "right")
        for idx, nid in enumerate(alive)
    }
    network.set_partition(groups)
    sim.run_for(4 * delta)
    network.heal_partition()

    # Phase 4: loss spike.
    network.loss_rate = 0.20
    sim.run_for(4 * delta)
    network.loss_rate = 0.0

    # Phase 5: recovery — drain generously (partition + loss can delay
    # stabilization well past the normal envelope).
    sim.run_for((config.ttl + 25) * delta)

    collector = cluster.collector
    assert collector.broadcast_count > 20  # the workload really ran

    # Deterministic safety for EVERYONE that delivered anything, ever —
    # including churned-out nodes and partition victims.
    full_report = check_run(collector)
    assert not full_report.order_violations
    assert not full_report.integrity_violations

    # The stable population (alive from start to finish) is the
    # "well-behaving part": validity holds and, because the partition
    # cuts both directions symmetrically and everything drained, their
    # common history must be hole-free relative to each other.
    stable = collector.stable_nodes(since=0, until=sim.now())
    assert len(stable) >= 5  # churn left a core standing
    stable_report = check_run(collector, correct_nodes=stable)
    assert stable_report.safety_ok

    # Post-recovery liveness: a fresh broadcast reaches every live node.
    probe = cluster.broadcast_from(cluster.random_alive(), "post-recovery-probe")
    sim.run_for((config.ttl + 10) * delta)
    delivered_by = sum(
        1
        for nid in cluster.alive_ids()
        if probe.id in collector.delivered_ids_of(nid)
    )
    assert delivered_by == cluster.size
