"""Unit tests for latency models (repro.sim.latency, paper Figure 5)."""

from __future__ import annotations

import random
import statistics

import pytest

from repro.core.errors import ConfigurationError
from repro.sim.latency import (
    EmpiricalLatency,
    FixedLatency,
    LogNormalLatency,
    PlanetLabLatency,
    UniformLatency,
    make_latency_model,
)


@pytest.fixture
def rng():
    return random.Random(55)


class TestFixedLatency:
    def test_constant(self, rng):
        model = FixedLatency(17)
        assert {model.sample(rng, 0, 1) for _ in range(10)} == {17}

    def test_rejects_below_one(self):
        with pytest.raises(ConfigurationError):
            FixedLatency(0)


class TestUniformLatency:
    def test_within_bounds(self, rng):
        model = UniformLatency(5, 20)
        samples = [model.sample(rng, 0, 1) for _ in range(500)]
        assert min(samples) >= 5
        assert max(samples) <= 20
        assert len(set(samples)) > 10

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ConfigurationError):
            UniformLatency(20, 5)


class TestLogNormalLatency:
    def test_always_at_least_one(self, rng):
        model = LogNormalLatency(mu=0.0, sigma=1.0)
        assert min(model.sample(rng, 0, 1) for _ in range(1000)) >= 1

    def test_cap_enforced(self, rng):
        model = LogNormalLatency(mu=6.0, sigma=1.0, cap=100)
        assert max(model.sample(rng, 0, 1) for _ in range(1000)) <= 100

    def test_rejects_nonpositive_sigma(self):
        with pytest.raises(ConfigurationError):
            LogNormalLatency(mu=1.0, sigma=0.0)


class TestEmpiricalLatency:
    def test_resamples_from_trace(self, rng):
        model = EmpiricalLatency([10, 20, 30])
        samples = {model.sample(rng, 0, 1) for _ in range(200)}
        assert samples == {10, 20, 30}

    def test_cleans_nonpositive_samples(self, rng):
        model = EmpiricalLatency([0, -5, 10])
        assert set(model.trace) == {1, 10}

    def test_rejects_empty_trace(self):
        with pytest.raises(ConfigurationError):
            EmpiricalLatency([])


class TestPlanetLabLatency:
    """The synthetic trace must match the paper's published statistics
    (Figure 5: mean ~157, std ~119, p5/p50/p95 = 15/125/366)."""

    @pytest.fixture(scope="class")
    def samples(self):
        model = PlanetLabLatency()
        rng = random.Random(5)
        return [model.sample(rng, 0, 1) for _ in range(40000)]

    def test_mean(self, samples):
        assert statistics.fmean(samples) == pytest.approx(157, rel=0.10)

    def test_std(self, samples):
        assert statistics.pstdev(samples) == pytest.approx(119, rel=0.12)

    def test_median(self, samples):
        assert statistics.median(samples) == pytest.approx(125, rel=0.10)

    def test_p5(self, samples):
        ordered = sorted(samples)
        p5 = ordered[int(0.05 * len(ordered))]
        assert 10 <= p5 <= 30  # paper: 15

    def test_p95(self, samples):
        ordered = sorted(samples)
        p95 = ordered[int(0.95 * len(ordered))]
        assert p95 == pytest.approx(366, rel=0.12)

    def test_heavy_tail_exists(self, samples):
        # Paper: "some processes have a very large latency, up to six
        # times the round duration (125)" -- i.e. beyond 700 ticks.
        assert max(samples) > 600

    def test_capped(self, samples):
        assert max(samples) <= PlanetLabLatency.CAP

    def test_rejects_bad_mixture_weight(self):
        with pytest.raises(ConfigurationError):
            PlanetLabLatency(p_near=1.0)


class TestFactory:
    def test_builds_by_name(self):
        assert isinstance(make_latency_model("fixed", ticks=5), FixedLatency)
        assert isinstance(make_latency_model("planetlab"), PlanetLabLatency)
        assert isinstance(
            make_latency_model("empirical", samples=[1, 2]), EmpiricalLatency
        )

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            make_latency_model("quantum")
