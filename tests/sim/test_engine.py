"""Unit tests for the discrete-event engine (repro.sim.engine)."""

from __future__ import annotations

import pytest

from repro.core.errors import SimulationError
from repro.sim.engine import PeriodicTask, Simulator


class TestScheduling:
    def test_actions_run_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(30, lambda: fired.append("late"))
        sim.schedule(10, lambda: fired.append("early"))
        sim.schedule(20, lambda: fired.append("middle"))
        sim.run()
        assert fired == ["early", "middle", "late"]

    def test_ties_break_by_insertion_order(self):
        sim = Simulator()
        fired = []
        for label in ("a", "b", "c"):
            sim.schedule(5, lambda label=label: fired.append(label))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_now_advances_with_execution(self):
        sim = Simulator()
        seen = []
        sim.schedule(7, lambda: seen.append(sim.now()))
        sim.schedule(11, lambda: seen.append(sim.now()))
        sim.run()
        assert seen == [7, 11]
        assert sim.now() == 11

    def test_actions_can_schedule_more_actions(self):
        sim = Simulator()
        fired = []

        def first():
            fired.append(("first", sim.now()))
            sim.schedule(5, lambda: fired.append(("second", sim.now())))

        sim.schedule(10, first)
        sim.run()
        assert fired == [("first", 10), ("second", 15)]

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1, lambda: None)
        sim.schedule(10, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(5, lambda: None)

    def test_zero_delay_runs_at_current_time(self):
        sim = Simulator()
        fired = []
        sim.schedule(10, lambda: sim.schedule(0, lambda: fired.append(sim.now())))
        sim.run()
        assert fired == [10]


class TestCancellation:
    def test_cancelled_action_never_runs(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(10, lambda: fired.append(1))
        handle.cancel()
        sim.run()
        assert fired == []
        assert handle.cancelled

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        handle = sim.schedule(10, lambda: None)
        handle.cancel()
        handle.cancel()
        assert handle.cancelled


class TestRunBounds:
    def test_run_until_stops_and_advances_clock(self):
        sim = Simulator()
        fired = []
        sim.schedule(10, lambda: fired.append(10))
        sim.schedule(100, lambda: fired.append(100))
        sim.run(until=50)
        assert fired == [10]
        assert sim.now() == 50
        sim.run()
        assert fired == [10, 100]

    def test_run_for_is_relative(self):
        sim = Simulator()
        sim.schedule(10, lambda: None)
        sim.run_for(25)
        assert sim.now() == 25
        sim.run_for(25)
        assert sim.now() == 50

    def test_max_events_guards_runaway_loops(self):
        sim = Simulator()

        def rearm():
            sim.schedule(1, rearm)

        sim.schedule(1, rearm)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_run_not_reentrant(self):
        sim = Simulator()
        errors = []

        def nested():
            try:
                sim.run()
            except SimulationError as exc:
                errors.append(exc)

        sim.schedule(1, nested)
        sim.run()
        assert len(errors) == 1

    def test_step_returns_false_when_empty(self):
        sim = Simulator()
        assert not sim.step()
        sim.schedule(1, lambda: None)
        assert sim.step()
        assert not sim.step()


class TestDeterminism:
    def test_same_seed_same_randomness(self):
        a, b = Simulator(seed=9), Simulator(seed=9)
        assert [a.rng.random() for _ in range(5)] == [
            b.rng.random() for _ in range(5)
        ]

    def test_fork_rng_is_reproducible_and_label_scoped(self):
        a, b = Simulator(seed=9), Simulator(seed=9)
        assert a.fork_rng("x").random() == b.fork_rng("x").random()
        assert a.fork_rng("x").random() != a.fork_rng("y").random()

    def test_executed_counter(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(i, lambda: None)
        sim.run()
        assert sim.executed == 5


class TestPeriodicTask:
    def test_fires_periodically(self):
        sim = Simulator()
        fired = []
        PeriodicTask(sim, lambda: fired.append(sim.now()), lambda: 10)
        sim.run(until=35)
        assert fired == [0, 10, 20, 30]

    def test_initial_delay(self):
        sim = Simulator()
        fired = []
        PeriodicTask(sim, lambda: fired.append(sim.now()), lambda: 10, initial_delay=5)
        sim.run(until=30)
        assert fired == [5, 15, 25]

    def test_stop_halts_refiring(self):
        sim = Simulator()
        fired = []
        task = PeriodicTask(sim, lambda: fired.append(sim.now()), lambda: 10)
        sim.schedule(25, task.stop)
        sim.run(until=100)
        assert fired == [0, 10, 20]
        assert task.stopped

    def test_variable_period(self):
        sim = Simulator()
        fired = []
        periods = iter([10, 20, 40, 100])
        PeriodicTask(sim, lambda: fired.append(sim.now()), lambda: next(periods))
        sim.run(until=75)
        assert fired == [0, 10, 30, 70]

    def test_minimum_period_is_one(self):
        sim = Simulator()
        fired = []
        task = PeriodicTask(sim, lambda: fired.append(sim.now()), lambda: 0)
        sim.run(until=3)
        task.stop()
        assert fired == [0, 1, 2, 3]
