"""Property-based tests for the discrete-event engine."""

from __future__ import annotations

from typing import List, Tuple

from hypothesis import given, settings, strategies as st

from repro.sim.engine import Simulator


@settings(max_examples=200, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1000), max_size=50))
def test_execution_times_are_monotone(delays):
    """Whatever the schedule, observed time never goes backwards."""
    sim = Simulator()
    observed: List[int] = []
    for delay in delays:
        sim.schedule(delay, lambda: observed.append(sim.now()))
    sim.run()
    assert observed == sorted(observed)
    assert len(observed) == len(delays)


@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=100), st.booleans()),
        max_size=30,
    )
)
def test_cancelled_never_run_others_always_run(schedule: List[Tuple[int, bool]]):
    sim = Simulator()
    ran: List[int] = []
    handles = []
    for idx, (delay, cancel) in enumerate(schedule):
        handles.append((sim.schedule(delay, lambda idx=idx: ran.append(idx)), cancel))
    for handle, cancel in handles:
        if cancel:
            handle.cancel()
    sim.run()
    expected = {idx for idx, (_, cancel) in enumerate(schedule) if not cancel}
    assert set(ran) == expected


@settings(max_examples=100, deadline=None)
@given(
    st.integers(min_value=0, max_value=2**32 - 1),
    st.lists(st.integers(min_value=0, max_value=500), min_size=1, max_size=30),
)
def test_runs_are_reproducible(seed, delays):
    """Identical (seed, schedule) -> identical event interleaving and RNG."""

    def run_once():
        sim = Simulator(seed=seed)
        trace: List[Tuple[int, float]] = []
        for delay in delays:
            sim.schedule(delay, lambda: trace.append((sim.now(), sim.rng.random())))
        sim.run()
        return trace

    assert run_once() == run_once()


@settings(max_examples=100, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=200), min_size=1, max_size=20),
    st.integers(min_value=0, max_value=250),
)
def test_run_until_partitions_execution(delays, cut):
    """run(until=t) then run() executes exactly the same set as run()."""
    sim = Simulator()
    ran: List[int] = []
    for delay in delays:
        sim.schedule(delay, lambda delay=delay: ran.append(delay))
    sim.run(until=cut)
    assert all(d <= cut for d in ran)
    sim.run()
    assert sorted(ran) == sorted(delays)
