"""Differential harness: flat engine must be bit-identical to the object engine.

The flat engine re-implements the entire simulated EpTO stack in indexed
arrays for speed; its only correctness argument is this file.  Every test
runs the *same* seeded scenario on both engines via
:mod:`repro.analysis.differential` and requires identical per-node
delivery sequences, identical global (node, event, tick) delivery logs
and identical network counters.

The explicit matrix below covers 45 seeded scenarios across clocks,
round phases, latency models, loss/duplication, churn, and five fault
schedules (including crash/respawn under both recovery modes).  CI can
trim the per-group seed count with ``EPTO_DIFF_SEEDS=<k>`` (the
``flat-equivalence`` job runs with ``EPTO_DIFF_SEEDS=2``); locally the
full matrix runs by default.  A hypothesis test then samples the
scenario space at random — because :class:`DifferentialScenario` is a
flat value object, any divergence shrinks to a minimal pasteable
reproducer automatically.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis.differential import (
    DifferentialScenario,
    assert_engines_equivalent,
    run_differential,
)


def _seeds(count: int, base: int) -> range:
    """A per-group seed range, trimmed by ``EPTO_DIFF_SEEDS`` if set."""
    cap = int(os.environ.get("EPTO_DIFF_SEEDS", "0"))
    if cap > 0:
        count = min(count, cap)
    return range(base, base + count)


def _matrix() -> list:
    """45 scenarios: (group, overrides) x seeds, ids stable across runs."""
    groups = [
        # name, seed count, seed base, scenario overrides
        ("baseline", 8, 100, {}),
        ("logical", 4, 200, {"clock": "logical"}),
        ("staggered", 4, 300, {"round_phase": "staggered"}),
        (
            "lossy-planetlab",
            4,
            400,
            {
                "latency": ("planetlab",),
                "loss_rate": 0.05,
                "duplicate_rate": 0.02,
            },
        ),
        (
            "nodrift-fixed",
            3,
            500,
            {"drift_fraction": 0.0, "latency": ("fixed", 3)},
        ),
        ("tight", 3, 600, {"n": 16, "fanout": 2, "ttl": 5}),
        ("wide", 2, 700, {"n": 40, "fanout": 6, "ttl": 10}),
        ("churn", 3, 800, {"churn_rate": 0.02}),
        ("fault-loss-burst", 3, 900, {"faults": "loss_burst"}),
        ("fault-crash-fresh", 3, 1000, {"faults": "crash"}),
        (
            "fault-crash-same-id",
            3,
            1100,
            {"faults": "crash", "recovery": "same_id"},
        ),
        ("fault-partition", 2, 1200, {"faults": "partition"}),
        (
            "fault-mixed-churn",
            3,
            1300,
            {"faults": "mixed", "churn_rate": 0.015, "loss_rate": 0.02},
        ),
    ]
    cases = []
    for name, count, base, overrides in groups:
        for seed in _seeds(count, base):
            scenario = DifferentialScenario(seed=seed, **overrides)
            cases.append(pytest.param(scenario, id=f"{name}-s{seed}"))
    return cases


@pytest.mark.parametrize("scenario", _matrix())
def test_engines_bit_identical(scenario: DifferentialScenario) -> None:
    assert_engines_equivalent(scenario)


def test_full_matrix_spans_required_coverage() -> None:
    """The acceptance floor: >=40 seeds and >=2 fault scenarios.

    Guarded against ``EPTO_DIFF_SEEDS`` trimming so the check reflects
    what a full local run exercises, not the CI subset.
    """
    saved = os.environ.pop("EPTO_DIFF_SEEDS", None)
    try:
        scenarios = [case.values[0] for case in _matrix()]
    finally:
        if saved is not None:
            os.environ["EPTO_DIFF_SEEDS"] = saved
    assert len({s.seed for s in scenarios}) >= 40
    fault_kinds = {s.faults for s in scenarios if s.faults != "none"}
    assert len(fault_kinds) >= 2


def test_divergence_report_is_actionable() -> None:
    """compare_runs output names the node and index of a planted diff."""
    scenario = DifferentialScenario(seed=41)
    from repro.analysis.differential import compare_runs, run_object_engine

    reference = run_object_engine(scenario)
    # Tamper with one node's sequence to simulate an engine bug.
    node = sorted(reference.sequences)[0]
    broken = dict(reference.sequences)
    broken[node] = tuple(reversed(broken[node]))
    candidate = type(reference)(
        sequences=broken,
        deliveries=reference.deliveries,
        network=reference.network,
        broadcasts=reference.broadcasts,
    )
    problems = compare_runs(reference, candidate)
    assert problems, "a tampered run must be reported as divergent"
    assert any(f"node {node}" in p for p in problems)


def test_clean_scenario_reports_no_problems() -> None:
    assert run_differential(DifferentialScenario(seed=42)) == []


_SCENARIOS = st.builds(
    DifferentialScenario,
    seed=st.integers(min_value=0, max_value=2**16),
    n=st.integers(min_value=8, max_value=28),
    fanout=st.integers(min_value=2, max_value=5),
    ttl=st.integers(min_value=4, max_value=10),
    clock=st.sampled_from(["global", "logical"]),
    round_phase=st.sampled_from(["synchronized", "staggered"]),
    drift_fraction=st.sampled_from([0.0, 0.01, 0.05]),
    latency=st.sampled_from(
        [("fixed", 2), ("uniform", 1, 15), ("planetlab",)]
    ),
    loss_rate=st.sampled_from([0.0, 0.05, 0.15]),
    duplicate_rate=st.sampled_from([0.0, 0.02]),
    broadcast_rate=st.sampled_from([0.05, 0.1, 0.2]),
    churn_rate=st.sampled_from([0.0, 0.0, 0.02]),
    faults=st.sampled_from(
        ["none", "loss_burst", "crash", "partition", "mixed"]
    ),
    recovery=st.sampled_from(["fresh", "same_id"]),
)


@settings(
    max_examples=int(os.environ.get("EPTO_DIFF_EXAMPLES", "15")),
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(scenario=_SCENARIOS)
def test_random_scenarios_agree(scenario: DifferentialScenario) -> None:
    """Random-walk the scenario space; hypothesis shrinks any divergence."""
    assert_engines_equivalent(scenario)
