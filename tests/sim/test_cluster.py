"""Integration-style tests for SimCluster wiring (repro.sim.cluster)."""

from __future__ import annotations

import pytest

from repro.core import EpToConfig
from repro.core.errors import MembershipError
from repro.pss.cyclon import CyclonPss
from repro.pss.uniform import UniformViewPss
from repro.sim import ClusterConfig, FixedLatency, SimCluster, SimNetwork, Simulator

from ..conftest import build_small_world


def build_cluster(n=6, pss="uniform", **config_kwargs):
    sim = Simulator(seed=11)
    network = SimNetwork(sim, latency=FixedLatency(5))
    config = ClusterConfig(
        epto=EpToConfig(fanout=3, ttl=4, round_interval=100), pss=pss, **config_kwargs
    )
    cluster = SimCluster(sim, network, config)
    cluster.add_nodes(n)
    return sim, network, cluster


class TestMembership:
    def test_add_nodes_assigns_sequential_ids(self):
        _, _, cluster = build_cluster(4)
        assert sorted(cluster.alive_ids()) == [0, 1, 2, 3]
        assert cluster.size == 4

    def test_remove_node_deregisters_everywhere(self):
        sim, network, cluster = build_cluster(4)
        cluster.remove_node(2)
        assert cluster.size == 3
        assert not network.is_registered(2)
        assert 2 not in cluster.directory
        with pytest.raises(MembershipError):
            cluster.node(2)

    def test_remove_unknown_rejected(self):
        _, _, cluster = build_cluster(2)
        with pytest.raises(MembershipError):
            cluster.remove_node(99)

    def test_removed_node_stops_gossiping(self):
        sim, network, cluster = build_cluster(4)
        sources = []
        original = network.send

        def spy(src, dst, msg):
            sources.append(src)
            original(src, dst, msg)

        network.send = spy  # type: ignore[method-assign]
        cluster.broadcast_from(0, "x")
        cluster.remove_node(0)
        sim.run(until=2000)
        # Node 0's round task stopped before its first tick: the queued
        # broadcast dies with it and node 0 never sends anything.
        assert 0 not in sources

    def test_random_alive(self):
        _, _, cluster = build_cluster(5)
        assert cluster.random_alive() in cluster.alive_ids()

    def test_random_alive_on_empty_rejected(self):
        sim = Simulator()
        network = SimNetwork(sim)
        cluster = SimCluster(
            sim, network, ClusterConfig(epto=EpToConfig(fanout=1, ttl=1))
        )
        with pytest.raises(MembershipError):
            cluster.random_alive()


class TestPssWiring:
    def test_uniform_pss_by_default(self):
        _, _, cluster = build_cluster(3, pss="uniform")
        assert isinstance(cluster.pss_of(0), UniformViewPss)

    def test_cyclon_pss_selected(self):
        _, _, cluster = build_cluster(6, pss="cyclon")
        assert isinstance(cluster.pss_of(0), CyclonPss)

    def test_cyclon_nodes_bootstrap_from_membership(self):
        _, _, cluster = build_cluster(8, pss="cyclon")
        # Later nodes see earlier ones at bootstrap.
        assert cluster.pss_of(7).view_fill > 0

    def test_invalid_pss_rejected(self):
        with pytest.raises(MembershipError):
            ClusterConfig(epto=EpToConfig(fanout=1, ttl=1), pss="oracle")

    def test_invalid_round_phase_rejected(self):
        with pytest.raises(MembershipError):
            ClusterConfig(epto=EpToConfig(fanout=1, ttl=1), round_phase="chaotic")


class TestEndToEnd:
    def test_single_broadcast_reaches_everyone(self):
        world = build_small_world(n=8)
        world.cluster.broadcast_from(0, "payload")
        world.quiesce()
        collector = world.cluster.collector
        assert collector.delivery_count == 8
        assert world.spec_report().safety_ok

    def test_concurrent_broadcasts_identically_ordered(self):
        world = build_small_world(n=8)
        for node_id in (0, 3, 5):
            world.cluster.broadcast_from(node_id, f"from-{node_id}")
        world.quiesce()
        sequences = {
            tuple(world.cluster.collector.sequence_of(nid))
            for nid in world.cluster.alive_ids()
        }
        assert len(sequences) == 1
        assert len(next(iter(sequences))) == 3

    def test_staggered_phase_still_safe(self):
        world = build_small_world(n=8, round_phase="staggered")
        for node_id in (0, 1, 2):
            world.cluster.broadcast_from(node_id, node_id)
        world.quiesce()
        report = world.spec_report()
        assert report.safety_ok and report.agreement_ok

    def test_logical_clock_end_to_end(self):
        world = build_small_world(n=8, clock="logical")
        world.cluster.broadcast_from(2, "l")
        world.quiesce()
        assert world.cluster.collector.delivery_count == 8
        assert world.spec_report().safety_ok

    def test_collector_lifetimes_tracked(self):
        world = build_small_world(n=4)
        world.cluster.remove_node(1)
        lifetime = world.cluster.collector.lifetime_of(1)
        assert lifetime is not None
        assert lifetime.left is not None

    def test_deterministic_given_seed(self):
        def run():
            world = build_small_world(n=6, seed=99)
            world.cluster.broadcast_from(0, "d")
            world.quiesce()
            return [
                (rec.node_id, rec.event_id, rec.time)
                for rec in world.cluster.collector.deliveries()
            ]

        assert run() == run()
