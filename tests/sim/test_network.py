"""Unit tests for the simulated network (repro.sim.network)."""

from __future__ import annotations

import pytest

from repro.core.errors import MembershipError
from repro.sim.engine import Simulator
from repro.sim.latency import FixedLatency, UniformLatency
from repro.sim.network import SimNetwork


def build(latency=None, loss_rate=0.0, seed=3):
    sim = Simulator(seed=seed)
    network = SimNetwork(sim, latency=latency, loss_rate=loss_rate)
    return sim, network


class TestDelivery:
    def test_message_arrives_after_latency(self):
        sim, network = build(latency=FixedLatency(25))
        inbox = []
        network.register(1, lambda src, msg: inbox.append((sim.now(), src, msg)))
        network.send(0, 1, "hello")
        sim.run()
        assert inbox == [(25, 0, "hello")]

    def test_latency_sampled_per_message(self):
        sim, network = build(latency=UniformLatency(1, 100))
        times = []
        network.register(1, lambda src, msg: times.append(sim.now()))
        for _ in range(50):
            network.send(0, 1, "x")
        sim.run()
        assert len(set(times)) > 5  # latencies actually vary

    def test_stats_track_deliveries(self):
        sim, network = build()
        network.register(1, lambda src, msg: None)
        network.send(0, 1, "a")
        network.send(0, 1, "b")
        sim.run()
        assert network.stats.sent == 2
        assert network.stats.delivered == 2
        assert network.stats.delivery_ratio == 1.0


class TestLoss:
    def test_loss_rate_zero_loses_nothing(self):
        sim, network = build(loss_rate=0.0)
        inbox = []
        network.register(1, lambda src, msg: inbox.append(msg))
        for i in range(100):
            network.send(0, 1, i)
        sim.run()
        assert len(inbox) == 100

    def test_loss_rate_drops_roughly_proportionally(self):
        sim, network = build(loss_rate=0.3)
        inbox = []
        network.register(1, lambda src, msg: inbox.append(msg))
        for i in range(2000):
            network.send(0, 1, i)
        sim.run()
        assert 1200 <= len(inbox) <= 1600  # ~1400 expected
        assert network.stats.dropped_loss == 2000 - len(inbox)

    def test_loss_rate_one_would_be_total(self):
        sim, network = build(loss_rate=0.999999)
        inbox = []
        network.register(1, lambda src, msg: inbox.append(msg))
        for i in range(50):
            network.send(0, 1, i)
        sim.run()
        assert len(inbox) == 0


class TestDeadDestinations:
    def test_send_to_unregistered_is_counted_not_raised(self):
        sim, network = build()
        network.send(0, 99, "void")
        sim.run()
        assert network.stats.dropped_dead == 1

    def test_death_mid_flight_loses_message(self):
        sim, network = build(latency=FixedLatency(50))
        inbox = []
        network.register(1, lambda src, msg: inbox.append(msg))
        network.send(0, 1, "x")
        sim.schedule(10, lambda: network.unregister(1))
        sim.run()
        assert inbox == []
        assert network.stats.dropped_dead == 1

    def test_reregistration_after_death(self):
        sim, network = build()
        network.register(1, lambda src, msg: None)
        network.unregister(1)
        network.register(1, lambda src, msg: None)
        assert network.is_registered(1)


class TestRegistration:
    def test_duplicate_registration_rejected(self):
        _, network = build()
        network.register(1, lambda src, msg: None)
        with pytest.raises(MembershipError):
            network.register(1, lambda src, msg: None)

    def test_unregister_unknown_rejected(self):
        _, network = build()
        with pytest.raises(MembershipError):
            network.unregister(42)

    def test_registered_count(self):
        _, network = build()
        network.register(1, lambda src, msg: None)
        network.register(2, lambda src, msg: None)
        assert network.registered_count == 2


class TestPartitions:
    def test_cross_partition_messages_dropped(self):
        sim, network = build()
        inbox = []
        network.register(1, lambda src, msg: inbox.append(msg))
        network.register(2, lambda src, msg: inbox.append(msg))
        network.set_partition({1: "a", 2: "b"})
        network.send(1, 2, "blocked")
        sim.run()
        assert inbox == []
        assert network.stats.dropped_partition == 1

    def test_same_group_messages_flow(self):
        sim, network = build()
        inbox = []
        network.register(1, lambda src, msg: None)
        network.register(2, lambda src, msg: inbox.append(msg))
        network.set_partition({1: "a", 2: "a"})
        network.send(1, 2, "ok")
        sim.run()
        assert inbox == ["ok"]

    def test_unlabelled_nodes_share_a_group(self):
        sim, network = build()
        inbox = []
        network.register(1, lambda src, msg: None)
        network.register(2, lambda src, msg: inbox.append(msg))
        network.set_partition({3: "x"})
        network.send(1, 2, "ok")
        sim.run()
        assert inbox == ["ok"]

    def test_heal_restores_connectivity(self):
        sim, network = build()
        inbox = []
        network.register(1, lambda src, msg: None)
        network.register(2, lambda src, msg: inbox.append(msg))
        network.set_partition({1: "a", 2: "b"})
        network.send(1, 2, "lost")
        network.heal_partition()
        network.send(1, 2, "found")
        sim.run()
        assert inbox == ["found"]

    def test_partition_checked_at_delivery_too(self):
        # A message in flight when the partition forms is dropped.
        sim, network = build(latency=FixedLatency(50))
        inbox = []
        network.register(1, lambda src, msg: None)
        network.register(2, lambda src, msg: inbox.append(msg))
        network.send(1, 2, "in-flight")
        sim.schedule(10, lambda: network.set_partition({1: "a", 2: "b"}))
        sim.run()
        assert inbox == []


class TestDuplication:
    def test_duplicate_rate_zero_is_default(self):
        sim, network = build()
        inbox = []
        network.register(1, lambda src, msg: inbox.append(msg))
        for i in range(100):
            network.send(0, 1, i)
        sim.run()
        assert len(inbox) == 100
        assert network.stats.duplicated == 0

    def test_duplicates_delivered_twice(self):
        sim = Simulator(seed=3)
        network = SimNetwork(sim, duplicate_rate=0.5)
        inbox = []
        network.register(1, lambda src, msg: inbox.append(msg))
        for i in range(1000):
            network.send(0, 1, i)
        sim.run()
        assert len(inbox) == 1000 + network.stats.duplicated
        assert 350 < network.stats.duplicated < 650

    def test_duplicate_has_independent_latency(self):
        sim = Simulator(seed=5)
        network = SimNetwork(
            sim, latency=UniformLatency(1, 100), duplicate_rate=1.0
        )
        times = []
        network.register(1, lambda src, msg: times.append(sim.now()))
        network.send(0, 1, "x")
        sim.run()
        assert len(times) == 2
