"""Determinism of the perf harness's simulated metrics.

``BENCH_core.json`` mixes machine-dependent wall times with seeded
*metrics* blocks. The metrics must be bit-identical across runs with
the same seed — otherwise the perf harness (and CI's check mode) could
not distinguish a real behavioural regression from noise. This runs
the harness twice as a subprocess, exactly as CI does, and compares
every metrics block.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
RUN_BENCH = REPO_ROOT / "benchmarks" / "perf" / "run_bench.py"


def _run_harness(output: Path) -> dict:
    subprocess.run(
        [
            sys.executable,
            str(RUN_BENCH),
            "--check",
            "--sizes",
            "256",
            "--seed",
            "13",
            "--output",
            str(output),
        ],
        check=True,
        capture_output=True,
        cwd=REPO_ROOT,
    )
    return json.loads(output.read_text())


def _metrics_only(results: dict) -> dict:
    scenarios = results["scenarios"]
    return {
        "ordering": {
            size: entry["metrics"]
            for size, entry in scenarios["ordering_round_loop"].items()
        },
        "encode_fanout": scenarios["encode_fanout"]["metrics"],
        "sim_macro": scenarios["sim_macro"]["metrics"],
    }


def test_same_seed_runs_produce_identical_metrics(tmp_path):
    first = _run_harness(tmp_path / "bench_a.json")
    second = _run_harness(tmp_path / "bench_b.json")
    assert _metrics_only(first) == _metrics_only(second)


def test_sim_macro_metrics_are_meaningful(tmp_path):
    results = _run_harness(tmp_path / "bench.json")
    macro = results["scenarios"]["sim_macro"]["metrics"]
    # Every broadcast reaches every one of the 24 nodes.
    assert macro["broadcasts"] == 40
    assert macro["deliveries"] == macro["broadcasts"] * 24
    assert macro["messages_sent"] > 0
    ordering = results["scenarios"]["ordering_round_loop"]["n256"]["metrics"]
    assert ordering["delivered"] > 0
