"""Unit tests for process drift models (repro.sim.drift, paper §5.3)."""

from __future__ import annotations

import random

import pytest

from repro.core.errors import ConfigurationError
from repro.sim.drift import BoundedDrift, NoDrift, UniformDrift


@pytest.fixture
def rng():
    return random.Random(21)


class TestNoDrift:
    def test_exact_period(self, rng):
        model = NoDrift()
        assert model.next_period(rng, 0, 125) == 125
        assert model.drift_ratio() == 1.0


class TestUniformDrift:
    def test_stays_within_fraction(self, rng):
        model = UniformDrift(0.01)
        periods = [model.next_period(rng, 0, 125) for _ in range(1000)]
        assert min(periods) >= 123  # 125 * 0.99 rounded
        assert max(periods) <= 127

    def test_varies(self, rng):
        model = UniformDrift(0.05)
        periods = {model.next_period(rng, 0, 125) for _ in range(200)}
        assert len(periods) > 3

    def test_zero_fraction_is_exact(self, rng):
        assert UniformDrift(0.0).next_period(rng, 0, 125) == 125

    def test_drift_ratio_formula(self):
        model = UniformDrift(0.25)
        assert model.drift_ratio() == pytest.approx(1.25 / 0.75)

    def test_never_below_one_tick(self, rng):
        model = UniformDrift(0.9)
        assert min(model.next_period(rng, 0, 1) for _ in range(100)) >= 1

    def test_rejects_bad_fraction(self):
        with pytest.raises(ConfigurationError):
            UniformDrift(1.0)
        with pytest.raises(ConfigurationError):
            UniformDrift(-0.1)


class TestBoundedDrift:
    def test_per_node_factor_is_stable(self, rng):
        model = BoundedDrift(0.8, 1.2, seed=4)
        first = model.next_period(rng, 7, 100)
        assert all(model.next_period(rng, 7, 100) == first for _ in range(10))

    def test_different_nodes_differ(self, rng):
        model = BoundedDrift(0.5, 1.5, seed=4)
        periods = {model.next_period(rng, node, 1000) for node in range(20)}
        assert len(periods) > 5

    def test_within_bounds(self, rng):
        model = BoundedDrift(0.9, 1.1, seed=4)
        for node in range(50):
            period = model.next_period(rng, node, 1000)
            assert 900 <= period <= 1100

    def test_drift_ratio(self):
        assert BoundedDrift(0.5, 2.0).drift_ratio() == 4.0

    def test_rejects_bad_bounds(self):
        with pytest.raises(ConfigurationError):
            BoundedDrift(1.5, 1.0)
        with pytest.raises(ConfigurationError):
            BoundedDrift(0.0, 1.0)
