"""Unit tests for the flat engine, its recording modes, and sharding.

Equivalence with the object engine lives in
``tests/sim/test_flat_equivalence.py``; this file pins down the flat
stack's own contracts — calendar semantics, the explicit feature
restrictions, the two recording modes, ``as_collector`` parity with the
metrics checkers, and the lockstep sharded driver (in-process and via
``multiprocessing``).
"""

from __future__ import annotations

import pytest

from repro.core.config import EpToConfig
from repro.core.errors import MembershipError, SimulationError
from repro.metrics import check_run
from repro.sim import ClusterConfig, FixedLatency, NoDrift, UniformDrift
from repro.sim.flat import FlatCluster, FlatEngine, FlatNetwork
from repro.sim.shard import ShardedSimulation


def _config(
    fanout: int = 4,
    ttl: int = 8,
    interval: int = 20,
    clock: str = "global",
    **kwargs,
) -> ClusterConfig:
    return ClusterConfig(
        epto=EpToConfig(
            fanout=fanout, ttl=ttl, round_interval=interval, clock=clock
        ),
        drift=kwargs.pop("drift", NoDrift()),
        **kwargs,
    )


# ----------------------------------------------------------------------
# FlatEngine calendar semantics
# ----------------------------------------------------------------------


def test_engine_runs_actions_in_time_then_fifo_order():
    sim = FlatEngine(seed=1)
    trace = []
    sim.schedule(5, lambda: trace.append("b"))
    sim.schedule(2, lambda: trace.append("a"))
    sim.schedule(5, lambda: trace.append("c"))  # same tick: FIFO
    sim.run()
    assert trace == ["a", "b", "c"]


def test_engine_same_tick_reentrant_schedule_runs_this_tick():
    """An action scheduling at delay 0 runs within the same tick."""
    sim = FlatEngine(seed=1)
    trace = []
    sim.schedule(3, lambda: (trace.append("outer"), sim.schedule(0, lambda: trace.append("inner"))))
    sim.run()
    assert trace == ["outer", "inner"]
    assert sim.now() == 3


def test_engine_cancel_and_past_scheduling():
    sim = FlatEngine(seed=1)
    trace = []
    handle = sim.schedule(4, lambda: trace.append("cancelled"))
    sim.schedule(6, lambda: trace.append("kept"))
    handle.cancel()
    assert handle.cancelled
    sim.run()
    assert trace == ["kept"]
    with pytest.raises(SimulationError):
        sim.schedule(-1, lambda: None)
    with pytest.raises(SimulationError):
        sim.schedule_at(2, lambda: None)  # now is already 6


def test_engine_run_until_advances_clock_even_when_drained():
    sim = FlatEngine(seed=1)
    sim.schedule(3, lambda: None)
    sim.run(until=50)
    assert sim.now() == 50
    assert sim.executed_count == 1


def test_engine_fork_rng_is_deterministic_per_label():
    a = FlatEngine(seed=7).fork_rng("node:3")
    b = FlatEngine(seed=7).fork_rng("node:3")
    c = FlatEngine(seed=7).fork_rng("node:4")
    draws = [a.random() for _ in range(5)]
    assert draws == [b.random() for _ in range(5)]
    assert draws != [c.random() for _ in range(5)]


# ----------------------------------------------------------------------
# Restrictions: unsupported features raise instead of diverging
# ----------------------------------------------------------------------


def test_cluster_rejects_cyclon_pss():
    sim = FlatEngine(seed=1)
    net = FlatNetwork(sim)
    with pytest.raises(MembershipError):
        FlatCluster(sim, net, _config(pss="cyclon"))


def test_cluster_rejects_tagged_delivery_and_stability():
    for override in ({"tagged_delivery": True}, {"expose_stability": True}):
        sim = FlatEngine(seed=1)
        net = FlatNetwork(sim)
        config = ClusterConfig(
            epto=EpToConfig(fanout=4, ttl=8, round_interval=20, **override),
            drift=NoDrift(),
        )
        with pytest.raises(MembershipError):
            FlatCluster(sim, net, config)


def test_cluster_rejects_unknown_record_mode():
    sim = FlatEngine(seed=1)
    net = FlatNetwork(sim)
    with pytest.raises(MembershipError):
        FlatCluster(sim, net, _config(), record="everything")


def test_engine_refuses_second_cluster():
    sim = FlatEngine(seed=1)
    net = FlatNetwork(sim)
    FlatCluster(sim, net, _config())
    with pytest.raises(SimulationError):
        FlatCluster(sim, net, _config())


def test_network_rejects_adversary():
    sim = FlatEngine(seed=1)
    net = FlatNetwork(sim)
    with pytest.raises(MembershipError):
        net.set_adversary(object())


# ----------------------------------------------------------------------
# Recording modes
# ----------------------------------------------------------------------


def _run_flat(record: str, seed: int = 11, n: int = 24, rounds: int = 36):
    config = _config(drift=UniformDrift(0.01))
    sim = FlatEngine(seed=seed)
    net = FlatNetwork(sim, latency=FixedLatency(3))
    cluster = FlatCluster(sim, net, config, record=record)
    cluster.add_nodes(n)
    interval = config.epto.round_interval
    for r in range(1, 7):
        node = r % n
        sim.schedule_at(r * interval, lambda nd=node: cluster.broadcast_from(nd))
    sim.run(until=rounds * interval)
    return cluster


def test_stats_mode_matches_sequences_mode_aggregates():
    full = _run_flat("sequences")
    stats = _run_flat("stats")
    assert stats.delivery_counts() == full.delivery_counts()
    assert stats.sequence_hashes() == full.sequence_hashes()
    assert sorted(stats.delivery_delays()) == sorted(full.delivery_delays())
    assert stats.delivered_total == full.delivered_total
    assert stats.broadcast_count() == full.broadcast_count()


def test_stats_mode_refuses_sequence_surfaces():
    stats = _run_flat("stats", rounds=4)
    for accessor in (stats.sequences, stats.deliveries, stats.as_collector):
        with pytest.raises(SimulationError):
            accessor()


def test_identical_hashes_iff_identical_sequences():
    cluster = _run_flat("sequences")
    sequences = cluster.sequences()
    hashes = cluster.sequence_hashes()
    by_hash = {}
    for node, seq in sequences.items():
        by_hash.setdefault((len(seq), hashes[node]), set()).add(seq)
    for key, distinct in by_hash.items():
        assert len(distinct) == 1, f"hash collision across sequences: {key}"


def test_as_collector_passes_table1_checks():
    """A flat run feeds the existing metrics pipeline unchanged."""
    cluster = _run_flat("sequences")
    collector = cluster.as_collector()
    assert collector.sequences() == cluster.sequences()
    report = check_run(collector)
    assert report.safety_ok, report.summary()


# ----------------------------------------------------------------------
# Sharded lockstep driver
# ----------------------------------------------------------------------

_SHARD_N = 48
_SHARD_ROUNDS = 30
_SHARD_PLAN = [
    (1, 0, "a"),
    (1, 17, "b"),
    (2, 40, "c"),
    (3, 17, "d"),
    (4, 5, None),
    (5, 33, "e"),
]


def _shard_config(clock: str = "global") -> ClusterConfig:
    return ClusterConfig(
        epto=EpToConfig(fanout=5, ttl=7, round_interval=20, clock=clock),
        drift=NoDrift(),
    )


def _reference_flat(clock: str = "global"):
    config = _shard_config(clock)
    sim = FlatEngine(seed=5)
    net = FlatNetwork(sim, latency=FixedLatency(3))
    cluster = FlatCluster(sim, net, config)
    interval = config.epto.round_interval
    for r, node, payload in _SHARD_PLAN:
        sim.schedule_at(
            r * interval,
            lambda nd=node, p=payload: cluster.broadcast_from(nd, p),
        )
    cluster.add_nodes(_SHARD_N)
    sim.run(until=_SHARD_ROUNDS * interval)
    return cluster


@pytest.mark.parametrize("clock", ["global", "logical"])
@pytest.mark.parametrize("shards", [1, 3])
def test_sharded_inline_matches_flat_reference(clock, shards):
    reference = _reference_flat(clock)
    sharded = ShardedSimulation(
        _SHARD_N, _shard_config(clock), seed=5, latency=3, shards=shards
    )
    result = sharded.run(_SHARD_ROUNDS, _SHARD_PLAN)
    assert result.sequences == reference.sequences()
    assert sorted(result.delays) == sorted(reference.delivery_delays())
    assert result.sent == reference.network.stats.sent
    assert result.delivered == reference.network.stats.delivered


def test_sharded_processes_matches_inline():
    inline = ShardedSimulation(
        _SHARD_N, _shard_config(), seed=5, latency=3, shards=4
    ).run(_SHARD_ROUNDS, _SHARD_PLAN, processes=0)
    procs = ShardedSimulation(
        _SHARD_N, _shard_config(), seed=5, latency=3, shards=4
    ).run(_SHARD_ROUNDS, _SHARD_PLAN, processes=2)
    assert procs.sequences == inline.sequences
    assert (procs.sent, procs.delivered) == (inline.sent, inline.delivered)


def test_sharded_stats_mode_merges_counts_and_hashes():
    full = ShardedSimulation(
        _SHARD_N, _shard_config(), seed=5, latency=3, shards=3
    ).run(_SHARD_ROUNDS, _SHARD_PLAN)
    stats = ShardedSimulation(
        _SHARD_N, _shard_config(), seed=5, latency=3, shards=3, record="stats"
    ).run(_SHARD_ROUNDS, _SHARD_PLAN)
    assert stats.counts == {n: len(s) for n, s in full.sequences.items()}
    assert sorted(stats.delays) == sorted(full.delays)


def test_sharded_rejects_lockstep_unsafe_configs():
    good = _shard_config()
    with pytest.raises(MembershipError):
        ShardedSimulation(
            16,
            ClusterConfig(
                epto=good.epto, drift=NoDrift(), round_phase="staggered"
            ),
        )
    with pytest.raises(MembershipError):
        ShardedSimulation(
            16, ClusterConfig(epto=good.epto, drift=UniformDrift(0.01))
        )
    with pytest.raises(MembershipError):
        ShardedSimulation(16, good, latency=good.epto.round_interval)
    with pytest.raises(MembershipError):
        ShardedSimulation(16, good, latency=0)
    with pytest.raises(MembershipError):
        ShardedSimulation(16, good, shards=17)


def test_sharded_rejects_out_of_window_broadcasts():
    sharded = ShardedSimulation(16, _shard_config(), shards=2)
    with pytest.raises(MembershipError):
        sharded.run(5, [(0, 3, None)])
    with pytest.raises(MembershipError):
        sharded.run(5, [(6, 3, None)])
