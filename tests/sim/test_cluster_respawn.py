"""SimCluster same-identity crash/respawn and the fan-out send path."""

from __future__ import annotations

import pytest

from repro.core import EpToConfig
from repro.core.errors import MembershipError
from repro.sim import ClusterConfig, SimCluster, SimNetwork, Simulator

from ..conftest import build_small_world, make_event


def build_cluster(n=6, seed=3):
    sim = Simulator(seed=seed)
    network = SimNetwork(sim)
    cluster = SimCluster(
        sim,
        network,
        ClusterConfig(epto=EpToConfig(fanout=3, ttl=6, round_interval=10)),
    )
    cluster.add_nodes(n)
    return sim, network, cluster


class TestCrashRespawn:
    def test_respawn_resumes_broadcast_sequence(self):
        sim, network, cluster = build_cluster()
        first = cluster.broadcast_from(2, "a")
        second = cluster.broadcast_from(2, "b")
        assert [first.seq, second.seq] == [0, 1]

        cluster.crash_node(2)
        assert 2 not in cluster.alive_ids()
        assert cluster.crashed_ids() == [2]

        respawned = cluster.respawn_node(2)
        assert respawned == 2
        assert 2 in cluster.alive_ids()
        assert cluster.crashed_ids() == []
        # The replacement never reissues a used (source, seq) id.
        third = cluster.broadcast_from(2, "c")
        assert third.id == (2, 2)

    def test_respawned_node_rejoins_the_protocol(self):
        world = build_small_world(n=6, seed=9, latency=1)
        world.cluster.crash_node(0)
        world.cluster.respawn_node(0)
        event = world.cluster.broadcast_from(0, "after-restart")
        world.quiesce()
        for node_id in world.cluster.alive_ids():
            assert event.id in world.cluster.collector.delivered_ids_of(node_id)

    def test_respawn_without_crash_is_rejected(self):
        _, _, cluster = build_cluster()
        with pytest.raises(MembershipError):
            cluster.respawn_node(1)
        cluster.crash_node(1)
        cluster.respawn_node(1)
        with pytest.raises(MembershipError):  # already respawned
            cluster.respawn_node(1)

    def test_crash_of_unknown_node_is_rejected(self):
        _, _, cluster = build_cluster()
        with pytest.raises(MembershipError):
            cluster.crash_node(99)


class TestRespawnHoldGate:
    """The respawn round-gate length is a named, documented parameter."""

    def _config(self, **overrides):
        return ClusterConfig(
            epto=EpToConfig(fanout=3, ttl=6, round_interval=10), **overrides
        )

    def test_default_hold_is_ttl_plus_named_slack(self):
        from repro.sim.cluster import RESPAWN_HOLD_SLACK_ROUNDS

        config = self._config()
        assert RESPAWN_HOLD_SLACK_ROUNDS == 6
        assert config.respawn_hold_slack == RESPAWN_HOLD_SLACK_ROUNDS
        assert config.respawn_hold_rounds() == 6 + RESPAWN_HOLD_SLACK_ROUNDS

    def test_slack_is_overridable_and_validated(self):
        assert self._config(respawn_hold_slack=0).respawn_hold_rounds() == 6
        assert self._config(respawn_hold_slack=10).respawn_hold_rounds() == 16
        with pytest.raises(MembershipError):
            self._config(respawn_hold_slack=-1)

    def test_gate_opens_after_exactly_hold_rounds(self):
        """`_gated_round` holds for the configured count, no magic left."""

        class _Process:
            def __init__(self):
                self.rounds = 0

            def on_round(self):
                self.rounds += 1

        class _Manager:
            caught_up = True

            class config:
                catch_up_rounds = 1000

        hold = self._config(respawn_hold_slack=4).respawn_hold_rounds()
        process = _Process()
        gated = SimCluster._gated_round(process, _Manager(), hold_rounds=hold)
        for _ in range(hold - 1):
            gated()
        assert process.rounds == 0  # still held
        gated()
        assert process.rounds == 1  # opens on round `hold` exactly
        gated()
        assert process.rounds == 2  # and stays open


class TestSendMany:
    def test_send_many_reaches_every_destination(self):
        sim, network, cluster = build_cluster(n=4)
        inboxes = {nid: [] for nid in range(4)}
        for nid in range(4):
            network.unregister(nid)
            network.register(nid, lambda src, msg, n=nid: inboxes[n].append(msg))
        ball = (make_event(src=0, seq=0),)
        network.send_many(0, [1, 2, 3], ball)
        sim.run_for(50)
        for dst in (1, 2, 3):
            assert inboxes[dst] == [ball]
        assert network.stats.sent == 3
