"""SimCluster same-identity crash/respawn and the fan-out send path."""

from __future__ import annotations

import pytest

from repro.core import EpToConfig
from repro.core.errors import MembershipError
from repro.sim import ClusterConfig, SimCluster, SimNetwork, Simulator

from ..conftest import build_small_world, make_event


def build_cluster(n=6, seed=3):
    sim = Simulator(seed=seed)
    network = SimNetwork(sim)
    cluster = SimCluster(
        sim,
        network,
        ClusterConfig(epto=EpToConfig(fanout=3, ttl=6, round_interval=10)),
    )
    cluster.add_nodes(n)
    return sim, network, cluster


class TestCrashRespawn:
    def test_respawn_resumes_broadcast_sequence(self):
        sim, network, cluster = build_cluster()
        first = cluster.broadcast_from(2, "a")
        second = cluster.broadcast_from(2, "b")
        assert [first.seq, second.seq] == [0, 1]

        cluster.crash_node(2)
        assert 2 not in cluster.alive_ids()
        assert cluster.crashed_ids() == [2]

        respawned = cluster.respawn_node(2)
        assert respawned == 2
        assert 2 in cluster.alive_ids()
        assert cluster.crashed_ids() == []
        # The replacement never reissues a used (source, seq) id.
        third = cluster.broadcast_from(2, "c")
        assert third.id == (2, 2)

    def test_respawned_node_rejoins_the_protocol(self):
        world = build_small_world(n=6, seed=9, latency=1)
        world.cluster.crash_node(0)
        world.cluster.respawn_node(0)
        event = world.cluster.broadcast_from(0, "after-restart")
        world.quiesce()
        for node_id in world.cluster.alive_ids():
            assert event.id in world.cluster.collector.delivered_ids_of(node_id)

    def test_respawn_without_crash_is_rejected(self):
        _, _, cluster = build_cluster()
        with pytest.raises(MembershipError):
            cluster.respawn_node(1)
        cluster.crash_node(1)
        cluster.respawn_node(1)
        with pytest.raises(MembershipError):  # already respawned
            cluster.respawn_node(1)

    def test_crash_of_unknown_node_is_rejected(self):
        _, _, cluster = build_cluster()
        with pytest.raises(MembershipError):
            cluster.crash_node(99)


class TestSendMany:
    def test_send_many_reaches_every_destination(self):
        sim, network, cluster = build_cluster(n=4)
        inboxes = {nid: [] for nid in range(4)}
        for nid in range(4):
            network.unregister(nid)
            network.register(nid, lambda src, msg, n=nid: inboxes[n].append(msg))
        ball = (make_event(src=0, seq=0),)
        network.send_many(0, [1, 2, 3], ball)
        sim.run_for(50)
        for dst in (1, 2, 3):
            assert inboxes[dst] == [ball]
        assert network.stats.sent == 3
