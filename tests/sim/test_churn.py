"""Unit tests for the churn driver (repro.sim.churn, paper §5.4)."""

from __future__ import annotations

import pytest

from repro.core import EpToConfig
from repro.core.errors import ConfigurationError
from repro.sim import (
    ChurnDriver,
    ClusterConfig,
    FixedLatency,
    SimCluster,
    SimNetwork,
    Simulator,
)


def build(n=20, rate=0.1, **kwargs):
    sim = Simulator(seed=17)
    network = SimNetwork(sim, latency=FixedLatency(5))
    cluster = SimCluster(
        sim,
        network,
        ClusterConfig(epto=EpToConfig(fanout=3, ttl=4, round_interval=100)),
    )
    cluster.add_nodes(n)
    driver = ChurnDriver(sim, cluster, rate=rate, **kwargs)
    return sim, cluster, driver


class TestChurnMechanics:
    def test_population_stays_constant(self):
        sim, cluster, driver = build(n=20, rate=0.1)
        sim.run(until=1000)
        assert cluster.size == 20
        assert driver.stats.removed == driver.stats.added
        assert driver.stats.removed > 0

    def test_rate_respected_per_step(self):
        sim, cluster, driver = build(n=20, rate=0.1)
        sim.run(until=150)  # one churn step (first at tick 1? start=0 -> 1)
        # ceil(0.1 * 20) = 2 per step.
        assert driver.stats.removed % 2 == 0
        assert driver.stats.removed >= 2

    def test_membership_actually_changes(self):
        sim, cluster, driver = build(n=10, rate=0.2)
        before = set(cluster.alive_ids())
        sim.run(until=2000)
        after = set(cluster.alive_ids())
        assert before != after
        assert len(after) == 10

    def test_zero_rate_is_noop(self):
        sim, cluster, driver = build(n=10, rate=0.0)
        before = set(cluster.alive_ids())
        sim.run(until=2000)
        assert set(cluster.alive_ids()) == before
        assert driver.stats.rounds == 0

    def test_stop_after_halts(self):
        sim, cluster, driver = build(n=20, rate=0.1, stop_after=300)
        sim.run(until=5000)
        removed_at_stop = driver.stats.removed
        sim.run_for(5000)
        assert driver.stats.removed == removed_at_stop

    def test_custom_period(self):
        sim, cluster, driver = build(n=20, rate=0.1, period=500)
        sim.run(until=1600)
        assert driver.stats.rounds == 4  # ticks 1, 501, 1001, 1501

    def test_explicit_stop(self):
        sim, cluster, driver = build(n=20, rate=0.1)
        driver.stop()
        sim.run(until=2000)
        assert driver.stats.removed == 0

    def test_rejects_bad_rate(self):
        sim = Simulator()
        network = SimNetwork(sim)
        cluster = SimCluster(
            sim, network, ClusterConfig(epto=EpToConfig(fanout=1, ttl=1))
        )
        with pytest.raises(ConfigurationError):
            ChurnDriver(sim, cluster, rate=1.0)


class TestChurnWithTraffic:
    def test_stable_nodes_deliver_in_total_order_under_churn(self):
        sim, cluster, driver = build(n=20, rate=0.05, stop_after=400)
        for node_id in list(cluster.alive_ids())[:3]:
            cluster.broadcast_from(node_id, node_id)
        sim.run(until=3000)
        collector = cluster.collector
        stable = collector.stable_nodes(since=0, until=3000)
        assert stable  # some nodes survived
        from repro.metrics import check_run

        report = check_run(collector, correct_nodes=stable)
        assert report.safety_ok

    def test_new_nodes_get_round_tasks(self):
        # Nodes added by churn keep the system alive: they gossip too.
        sim, cluster, driver = build(n=10, rate=0.2)
        sim.run(until=1000)
        newest = max(cluster.alive_ids())
        assert newest >= 10  # replacement nodes exist
        cluster.broadcast_from(newest, "new-node-event")
        driver.stop()
        sim.run_for(3000)
        delivered = cluster.collector.delivered_ids_of(newest)
        assert (newest, 0) in delivered  # it delivered its own event