"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, List, Tuple

import pytest

from repro.core import EpToConfig, Event, EventRecord
from repro.metrics import check_run
from repro.sim import ClusterConfig, FixedLatency, SimCluster, SimNetwork, Simulator


def make_event(
    src: int = 0, seq: int = 0, ts: int = 0, payload: Any = None
) -> Event:
    """Build a test event with sensible defaults."""
    return Event(id=(src, seq), ts=ts, source_id=src, payload=payload)


def make_record(src: int = 0, seq: int = 0, ts: int = 0, ttl: int = 0) -> EventRecord:
    """Build a mutable record around a test event."""
    return EventRecord(make_event(src=src, seq=seq, ts=ts), ttl=ttl)


class RecordingTransport:
    """Transport that captures every send for inspection."""

    def __init__(self) -> None:
        self.sent: List[Tuple[int, int, Any]] = []

    def send(self, src: int, dst: int, ball: Any) -> None:
        self.sent.append((src, dst, ball))

    def balls_to(self, dst: int) -> List[Any]:
        return [ball for _, d, ball in self.sent if d == dst]

    def clear(self) -> None:
        self.sent.clear()


class StaticPeerSampler:
    """Peer sampler returning a fixed list (truncated to k)."""

    def __init__(self, peers: List[int]) -> None:
        self.peers = peers
        self.calls: List[int] = []

    def sample(self, k: int) -> List[int]:
        self.calls.append(k)
        return self.peers[:k]


class ManualOracle:
    """Stability oracle fully controlled by the test."""

    def __init__(self, ttl: int = 2, clock: int = 0) -> None:
        self.ttl = ttl
        self.clock = clock
        self.updates: List[int] = []

    def is_deliverable(self, record: EventRecord) -> bool:
        return record.ttl > self.ttl

    def get_clock(self) -> int:
        return self.clock

    def update_clock(self, ts: int) -> None:
        self.updates.append(ts)


@pytest.fixture
def rng() -> random.Random:
    """A deterministic random generator."""
    return random.Random(1234)


@pytest.fixture
def transport() -> RecordingTransport:
    return RecordingTransport()


@dataclass
class SmallWorld:
    """A tiny fully-wired simulated deployment for integration tests."""

    sim: Simulator
    network: SimNetwork
    cluster: SimCluster
    config: EpToConfig

    def run_rounds(self, rounds: int) -> None:
        """Advance the simulation by *rounds* round intervals."""
        self.sim.run_for(rounds * self.config.round_interval)

    def quiesce(self, extra_rounds: int = 10) -> None:
        """Run long enough for all in-flight events to deliver."""
        self.run_rounds(self.config.ttl + 1 + extra_rounds)

    def spec_report(self):
        """Table 1 check over every node."""
        return check_run(self.cluster.collector)


def build_small_world(
    n: int = 8,
    seed: int = 7,
    latency: int = 10,
    loss_rate: float = 0.0,
    clock: str = "global",
    ttl: int | None = None,
    fanout: int | None = None,
    pss: str = "uniform",
    round_phase: str = "synchronized",
) -> SmallWorld:
    """Assemble a small simulated EpTO deployment for tests."""
    sim = Simulator(seed=seed)
    network = SimNetwork(sim, latency=FixedLatency(latency), loss_rate=loss_rate)
    config = EpToConfig.for_system_size(n, clock=clock, loss_rate=loss_rate)
    if ttl is not None:
        config = config.with_overrides(ttl=ttl)
    if fanout is not None:
        config = config.with_overrides(fanout=fanout)
    cluster = SimCluster(
        sim,
        network,
        ClusterConfig(epto=config, pss=pss, round_phase=round_phase),
    )
    cluster.add_nodes(n)
    return SmallWorld(sim=sim, network=network, cluster=cluster, config=config)
