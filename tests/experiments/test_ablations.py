"""Smoke tests for the ablation drivers at a miniature scale.

Full-size shape assertions live in ``benchmarks/``; these check the
drivers' mechanics (sweeps run, tables render, result accessors work).
"""

from __future__ import annotations

import pytest

from repro.experiments.ablations import (
    run_ablation_fanout,
    run_ablation_guards,
    run_ablation_phase,
    run_ablation_ttl,
    run_empirical_bounds,
)

from .test_figures import TINY


class TestTtlAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return run_ablation_ttl(TINY)

    def test_sweep_includes_theory_ttl(self, result):
        assert result.theory_ttl in result.results

    def test_safety_at_every_ttl(self, result):
        for res in result.results.values():
            assert not res.report.order_violations

    def test_render(self, result):
        assert "TTL" in result.render()


class TestFanoutAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return run_ablation_fanout(TINY)

    def test_theory_fanout_included(self, result):
        assert result.theory_fanout in result.results

    def test_coverage_accessor(self, result):
        for k in result.results:
            assert 0.0 <= result.coverage(k) <= 1.0

    def test_render(self, result):
        assert "coverage" in result.render()


class TestPhaseAblation:
    def test_both_phases_run_and_speedup_defined(self):
        result = run_ablation_phase(TINY)
        assert set(result.results) == {"synchronized", "staggered"}
        assert result.speedup() > 0
        assert "phase" in result.render()


class TestGuardAblation:
    def test_violation_accessor_and_render(self):
        result = run_ablation_guards(TINY, seeds=(40, 41))
        assert result.violations("epto") == 0
        assert "protocol" in result.render()


class TestEmpiricalBounds:
    def test_small_run(self):
        result = run_empirical_bounds(n=32, trials=30)
        assert result.sweep
        assert result.smallest_reliable >= 1
        assert "Wilson" in result.render()
