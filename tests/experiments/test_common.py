"""Tests for the experiment harness (repro.experiments.common)."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError
from repro.core.params import min_fanout, min_ttl
from repro.experiments.common import ExperimentSpec, run_experiment, run_sweep


def tiny_spec(**overrides):
    defaults = dict(
        name="tiny",
        n=12,
        seed=2,
        broadcast_rate=0.2,
        broadcast_rounds=2,
        latency="fixed",
    )
    defaults.update(overrides)
    if defaults.get("latency") == "fixed":
        from repro.sim.latency import FixedLatency

        defaults["latency"] = FixedLatency(10)
    return ExperimentSpec(**defaults)


class TestSpecResolution:
    def test_defaults_use_theoretical_bounds(self):
        spec = ExperimentSpec(name="x", n=100)
        assert spec.resolved_fanout() == min_fanout(100)
        assert spec.resolved_ttl() == min_ttl(100, latency_bounded_by_round=True)

    def test_overrides_win(self):
        spec = ExperimentSpec(name="x", n=100, fanout=5, ttl=4)
        assert spec.resolved_fanout() == 5
        assert spec.resolved_ttl() == 4

    def test_churn_and_loss_feed_fanout(self):
        spec = ExperimentSpec(name="x", n=100, churn_rate=0.1, loss_rate=0.1)
        assert spec.resolved_fanout() == min_fanout(
            100, churn_rate=0.1, loss_rate=0.1
        )

    def test_drain_rounds_default_covers_ttl(self):
        spec = ExperimentSpec(name="x", n=100)
        assert spec.resolved_drain_rounds() > spec.resolved_ttl()

    def test_with_overrides(self):
        spec = ExperimentSpec(name="x", n=100)
        changed = spec.with_overrides(n=200, clock="logical")
        assert changed.n == 200
        assert changed.clock == "logical"
        assert spec.n == 100

    def test_unknown_process_kind_rejected_at_run(self):
        with pytest.raises(ConfigurationError):
            run_experiment(tiny_spec(process_kind="raft"))


class TestRunExperiment:
    def test_complete_run_produces_metrics(self):
        result = run_experiment(tiny_spec())
        assert result.events_broadcast > 0
        assert result.deliveries == result.events_broadcast * 12
        assert result.summary is not None
        assert result.cdf[-1][1] == 100.0
        assert result.report.safety_ok
        assert result.holes == 0
        assert result.stable_nodes == 12

    def test_delays_positive(self):
        result = run_experiment(tiny_spec())
        assert all(d > 0 for d in result.delays)

    def test_reproducible_given_seed(self):
        a = run_experiment(tiny_spec(seed=5))
        b = run_experiment(tiny_spec(seed=5))
        assert a.delays == b.delays
        assert a.messages_sent == b.messages_sent

    def test_different_seeds_differ(self):
        a = run_experiment(tiny_spec(seed=5))
        b = run_experiment(tiny_spec(seed=6))
        assert a.delays != b.delays

    def test_loss_configured_network_drops(self):
        result = run_experiment(tiny_spec(loss_rate=0.2, seed=3))
        assert result.messages_dropped > 0
        assert result.report.safety_ok

    def test_churn_reduces_stable_nodes(self):
        result = run_experiment(
            tiny_spec(n=20, churn_rate=0.1, broadcast_rounds=3, seed=4)
        )
        assert result.stable_nodes < 20
        assert result.report.safety_ok

    def test_baseline_process_kind_runs(self):
        result = run_experiment(tiny_spec(process_kind="ballsbins"))
        assert result.deliveries > 0
        # Baseline delivers faster than EpTO would.
        epto = run_experiment(tiny_spec())
        assert result.summary.p50 < epto.summary.p50

    def test_fifo_process_kind_runs(self):
        result = run_experiment(tiny_spec(process_kind="fifo"))
        assert result.deliveries > 0

    def test_as_row_contains_headline_fields(self):
        row = run_experiment(tiny_spec()).as_row()
        for key in ("name", "n", "events", "holes", "p50"):
            assert key in row


class TestRunSweep:
    def test_runs_all_specs(self):
        results = run_sweep([tiny_spec(seed=1), tiny_spec(seed=2)])
        assert len(results) == 2
        assert results[0].spec.seed == 1
