"""Tests for the experiment registry and CLI (repro.experiments)."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError
from repro.experiments.cli import main
from repro.experiments.registry import REGISTRY, get_experiment
from repro.experiments.scale import PAPER, SMALL, get_scale


class TestRegistry:
    def test_every_design_md_figure_is_registered(self):
        # The experiment index of DESIGN.md §3: figures + ablations.
        figures = {
            "fig3",
            "fig5",
            "fig6",
            "fig7a",
            "fig7b",
            "fig7b-flat",
            "fig8",
            "fig9",
            "fig10",
        }
        ablations = {
            "ablation-ttl",
            "ablation-fanout",
            "ablation-phase",
            "ablation-guards",
            "ablation-empirical",
        }
        drills = {"drill", "service-drill"}
        benches = {"net-bench", "service-bench", "lazy-bench"}
        assert set(REGISTRY) == figures | ablations | drills | benches

    def test_scale_flag_matches_runner_signature(self):
        for entry in REGISTRY.values():
            import inspect

            params = inspect.signature(entry.runner).parameters
            assert ("scale" in params) == entry.takes_scale, entry.id

    def test_entries_have_descriptions_and_runners(self):
        for entry in REGISTRY.values():
            assert entry.description
            assert callable(entry.runner)

    def test_lookup(self):
        assert get_experiment("fig6").id == "fig6"
        with pytest.raises(KeyError):
            get_experiment("fig99")


class TestScalePresets:
    def test_lookup_by_name(self):
        assert get_scale("small") is SMALL
        assert get_scale("paper") is PAPER

    def test_env_var_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "paper")
        assert get_scale() is PAPER
        monkeypatch.delenv("REPRO_SCALE")
        assert get_scale() is SMALL

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            get_scale("huge")

    def test_paper_preset_matches_paper_numbers(self):
        assert PAPER.fig6_n == 100
        assert PAPER.fig7a_n == 500
        assert PAPER.fig7b_sizes[-1] == 10000
        assert PAPER.sweep_rates == (0.0, 0.01, 0.05, 0.10)


class TestCli:
    def test_fig3_runs_and_prints(self, capsys):
        assert main(["fig3"]) == 0
        output = capsys.readouterr().out
        assert "fig3" in output
        assert "c=2" in output

    def test_fig5_runs(self, capsys):
        assert main(["fig5"]) == 0
        assert "statistic" in capsys.readouterr().out

    def test_unknown_experiment_exits_nonzero(self):
        with pytest.raises(SystemExit):
            main(["figZZ"])

    def test_scale_flag_parsed(self, capsys):
        # fig3 ignores scale, but the flag must parse.
        assert main(["fig3", "--scale", "small"]) == 0


class TestFaultScenarioFlag:
    def scenario_file(self, tmp_path):
        from repro.faults.schedule import CrashNodes, FaultSchedule

        path = tmp_path / "scenario.json"
        schedule = FaultSchedule(
            [CrashNodes(at_round=3, nodes=(1,), recover_after=1)]
        )
        path.write_text(schedule.to_json())
        return path

    def test_drill_accepts_scenario_file(self, tmp_path, capsys):
        assert main(["drill", "--fault-scenario", str(self.scenario_file(tmp_path))]) == 0
        output = capsys.readouterr().out
        assert "actions=1" in output
        assert "safety:" in output
        assert "timeline:" in output

    def test_non_fault_experiment_rejects_scenario_file(self, tmp_path, capsys):
        code = main(["fig3", "--fault-scenario", str(self.scenario_file(tmp_path))])
        assert code == 2
        assert "does not take --fault-scenario" in capsys.readouterr().err


class TestSyncFlag:
    def patched_drill(self, monkeypatch, result):
        """Swap the drill runner for a stub returning *result*."""
        import dataclasses

        from repro.experiments import registry

        captured = {}

        def runner(**kwargs):
            captured.update(kwargs)
            return result

        entry = dataclasses.replace(registry.REGISTRY["drill"], runner=runner)
        monkeypatch.setitem(registry.REGISTRY, "drill", entry)
        return captured

    def test_non_sync_experiment_rejects_sync(self, capsys):
        assert main(["fig3", "--sync"]) == 2
        assert "does not take --sync" in capsys.readouterr().err

    def test_sync_flag_forwarded_to_the_runner(self, monkeypatch, capsys):
        class Result:
            exit_ok = True

            def render(self):
                return "stub"

        captured = self.patched_drill(monkeypatch, Result())
        assert main(["drill", "--sync"]) == 0
        assert captured.get("sync") is True
        captured.clear()
        assert main(["drill"]) == 0
        assert "sync" not in captured

    def test_failed_verdict_exits_nonzero(self, monkeypatch, capsys):
        class Result:
            exit_ok = False

            def render(self):
                return "verdict: FAILED"

        self.patched_drill(monkeypatch, Result())
        assert main(["drill", "--sync"]) == 1
        assert "verdict: FAILED" in capsys.readouterr().out
