"""Smoke tests for the flat-engine fig7b driver (paper-scale sweep)."""

from __future__ import annotations

from repro.experiments.cli import main
from repro.experiments.fig7b_flat import (
    Fig7bFlatResult,
    _events_per_round,
    run_fig7b_flat,
    run_fig7b_flat_point,
)
from repro.experiments.scale import ScalePreset

# A deliberately tiny preset so the sweep finishes in a couple of
# seconds; only the fig7b fields matter to this driver.
_TINY = ScalePreset(
    name="tiny",
    fig6_n=16,
    fig6_broadcast_rounds=2,
    fig7a_n=16,
    fig7a_rates=(0.05,),
    fig7a_broadcast_rounds=2,
    fig7b_sizes=(16, 48),
    fig7b_broadcast_rounds=3,
    sweep_n=16,
    sweep_rates=(0.0,),
    sweep_broadcast_rounds=2,
    cyclon_warmup_rounds=2,
)


def test_sweep_completes_with_total_order_at_every_point():
    result = run_fig7b_flat(scale=_TINY)
    assert isinstance(result, Fig7bFlatResult)
    assert set(result.rows) == {
        (n, clock) for n in (16, 48) for clock in ("global", "logical")
    }
    for (n, _clock), row in result.rows.items():
        assert row.complete, (row.deliveries, row.expected_deliveries)
        assert row.agreement_ok
        assert row.deliveries == row.events * n
        assert row.summary.p50 > 0
    assert result.exit_ok


def test_render_includes_table_and_cdf():
    result = run_fig7b_flat(scale=_TINY, clocks=("global",))
    text = result.render()
    assert "p50 delay" in text
    assert "16proc global" in text
    assert "OK" in text
    growth = result.median_growth_factor()
    assert growth == (
        result.rows[(48, "global")].summary.p50
        / result.rows[(16, "global")].summary.p50
    )


def test_point_is_reproducible_from_seed():
    a = run_fig7b_flat_point(24, "global", seed=9, broadcast_rounds=3)
    b = run_fig7b_flat_point(24, "global", seed=9, broadcast_rounds=3)
    assert a.summary.p50 == b.summary.p50
    assert a.deliveries == b.deliveries
    assert a.events == b.events


def test_event_budget_caps_the_paper_rate():
    # 5% of n until the budget bites, then flat.
    assert _events_per_round(16, 4) == 1
    assert _events_per_round(100, 4) == 4
    assert _events_per_round(10_000, 4) == 4
    assert _events_per_round(10_000, 32) == 32


def test_cli_runs_fig7b_flat(monkeypatch, capsys):
    # Route the registered runner through the tiny preset: the CLI
    # resolves --scale small, so patch the small preset's fig7b fields.
    import repro.experiments.fig7b_flat as mod

    monkeypatch.setattr(
        mod,
        "run_fig7b_flat",
        lambda **kw: run_fig7b_flat(scale=_TINY, clocks=("global",)),
    )
    import repro.experiments.registry as registry
    import dataclasses

    entry = dataclasses.replace(
        registry.REGISTRY["fig7b-flat"], runner=mod.run_fig7b_flat
    )
    monkeypatch.setitem(registry.REGISTRY, "fig7b-flat", entry)
    assert main(["fig7b-flat"]) == 0
    out = capsys.readouterr().out
    assert "fig7b-flat" in out
    assert "rounds/s" in out
