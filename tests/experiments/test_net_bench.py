"""Tests for the udp_e2e end-to-end network benchmark
(:mod:`repro.experiments.net_bench`).

The benchmark is the measurement instrument the committed
BENCH_core.json numbers come from, so these tests pin its *semantics*
— delivery/order gating, syscall accounting, CDF shape, fault-scenario
plumbing — never its timings (a loaded CI runner must not flake the
build).
"""

from __future__ import annotations

import pytest

from repro.experiments.net_bench import (
    ClusterRun,
    FanoutThroughput,
    NetBenchResult,
    _BLAST_CHUNK,
    _BLAST_FANOUT,
    _cluster_config,
    run_net_bench,
)
from repro.experiments.registry import get_experiment
from repro.faults.schedule import FaultSchedule, LossBurst
from repro.runtime import batchio

BLAST_ROUNDS = 2 * _BLAST_CHUNK  # two paired chunks: fast but real


@pytest.fixture(scope="module")
def clean_result() -> NetBenchResult:
    """One small clean run shared by the read-only assertions."""
    return run_net_bench(
        seed=5, sizes=(5,), events=3, blast_rounds=BLAST_ROUNDS
    )


class TestFanoutBlast:
    def test_records_both_sides(self, clean_result) -> None:
        fanout = clean_result.fanout
        assert fanout.datagrams == BLAST_ROUNDS * _BLAST_FANOUT
        assert fanout.batched_seconds > 0
        assert fanout.unbatched_seconds > 0
        assert fanout.speedup == pytest.approx(
            fanout.unbatched_seconds / fanout.batched_seconds
        )
        assert fanout.bytes_per_datagram > 0

    def test_batched_tier_is_platform_best(self, clean_result) -> None:
        assert clean_result.fanout.batched_tier == batchio.best_send_tier()

    def test_syscall_accounting(self, clean_result) -> None:
        fanout = clean_result.fanout
        # Unbatched: one sendto per datagram, exactly.
        assert fanout.unbatched_syscalls == fanout.datagrams
        if batchio.HAS_SENDMMSG:
            # Batched: one sendmmsg per fan-out round.
            assert fanout.batched_syscalls == BLAST_ROUNDS
            assert fanout.batched_syscalls < fanout.unbatched_syscalls


class TestClusterRuns:
    def test_clean_run_delivers_and_orders(self, clean_result) -> None:
        (run,) = clean_result.runs
        assert run.scenario == "clean"
        assert run.n == 5
        assert run.delivered and run.ordered
        assert clean_result.exit_ok

    def test_wire_accounting(self, clean_result) -> None:
        (run,) = clean_result.runs
        assert run.datagrams_sent > 0
        assert run.syscalls_send > 0
        assert run.bytes_sent > 0
        # Loopback without injected faults loses nothing.
        assert run.bytes_received == run.bytes_sent
        # Batching: a whole fan-out per syscall, so send syscalls per
        # node-round must beat one-per-datagram.
        if batchio.HAS_SENDMMSG:
            assert run.syscalls_send < run.datagrams_sent

    def test_delay_cdf_shape(self, clean_result) -> None:
        (run,) = clean_result.runs
        assert run.delays_ms, "every broadcast must yield delay samples"
        cdf = run.delay_cdf()
        values = [ms for ms, _ in cdf]
        percents = [pct for _, pct in cdf]
        assert values == sorted(values)
        assert percents == sorted(percents)
        assert percents[-1] == pytest.approx(100.0)
        summary = run.delay_summary
        assert summary is not None
        assert summary.p50 <= summary.p95 <= summary.maximum

    def test_render_mentions_verdict_and_speedup(self, clean_result) -> None:
        text = clean_result.render()
        assert "verdict: OK" in text
        assert "speedup" in text
        assert "n=5 [clean]" in text


class TestFaultScenario:
    def test_schedule_adds_fault_runs(self) -> None:
        schedule = FaultSchedule(
            [LossBurst(at_round=1.0, rate=0.3, duration=2.0)]
        )
        result = run_net_bench(
            seed=5,
            sizes=(5,),
            events=3,
            blast_rounds=BLAST_ROUNDS,
            schedule=schedule,
        )
        assert [run.scenario for run in result.runs] == ["clean", "faults"]
        assert all(run.delivered and run.ordered for run in result.runs)
        assert result.exit_ok


class TestConfigAndRegistry:
    def test_cluster_config_scales_fanout(self) -> None:
        assert _cluster_config(5).fanout == 3  # floor
        assert _cluster_config(16).fanout == 5
        assert _cluster_config(100).fanout == 6  # cap
        for n in (5, 16, 100):
            config = _cluster_config(n)
            assert config.ttl == 2 * config.fanout

    def test_registered_with_fault_plumbing(self) -> None:
        entry = get_experiment("net-bench")
        assert entry.runner is run_net_bench
        assert entry.takes_faults
        assert entry.takes_scale

    def test_exit_ok_gates_on_order_not_timing(self) -> None:
        fanout = FanoutThroughput(
            datagrams=1,
            batched_tier="sendto",
            batched_seconds=999.0,  # terrible timing must not gate
            batched_syscalls=1,
            unbatched_seconds=1.0,
            unbatched_syscalls=1,
            bytes_per_datagram=1,
        )
        good = ClusterRun(
            n=2, scenario="clean", events=1, delivered=True, ordered=True,
            seconds=1.0, rounds=1.0, datagrams_sent=1, datagrams_delivered=1,
            syscalls_send=1, syscalls_recv=1, bytes_sent=1, bytes_received=1,
            delays_ms=[1.0],
        )
        bad = ClusterRun(
            n=2, scenario="clean", events=1, delivered=True, ordered=False,
            seconds=1.0, rounds=1.0, datagrams_sent=1, datagrams_delivered=1,
            syscalls_send=1, syscalls_recv=1, bytes_sent=1, bytes_received=1,
            delays_ms=[1.0],
        )
        assert NetBenchResult(fanout, [good], False).exit_ok
        assert not NetBenchResult(fanout, [bad], False).exit_ok
        assert "verdict: FAILED" in NetBenchResult(fanout, [bad], False).render()
