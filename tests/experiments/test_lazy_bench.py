"""Tests for the eager-vs-lazy dissemination benchmark
(:mod:`repro.experiments.lazy_bench`).

Like the other bench tests these pin semantics — delivery/agreement
gating, byte accounting, speedup wiring — never wall-clock numbers.
The committed BENCH_core.json carries the preset-scale run; here a
deliberately small comparison keeps the suite fast.
"""

from __future__ import annotations

import pytest

from repro.experiments.lazy_bench import SPEEDUP_FLOOR, run_lazy_bench
from repro.experiments.registry import get_experiment


@pytest.fixture(scope="module")
def bench_result():
    """One small comparison shared by the read-only assertions."""
    return run_lazy_bench(seed=23, n=16, fanout=4, rounds=3, payload_size=128)


class TestLazyBench:
    def test_both_sides_deliver_with_agreement(self, bench_result) -> None:
        assert bench_result.eager.delivered
        assert bench_result.lazy.delivered
        assert bench_result.eager.safety_ok
        assert bench_result.lazy.safety_ok
        assert bench_result.eager.events == bench_result.lazy.events

    def test_lazy_push_cuts_payload_bytes_on_wire(self, bench_result) -> None:
        # The acceptance gate: >= 2x fewer payload bytes. Even this
        # small comparison clears the floor by a wide margin because
        # eager re-ships every payload TTL x fanout times.
        assert bench_result.speedup >= SPEEDUP_FLOOR
        assert bench_result.lazy.payload_bytes < bench_result.eager.payload_bytes
        assert bench_result.exit_ok

    def test_byte_split_is_populated_on_both_sides(self, bench_result) -> None:
        for side in (bench_result.eager, bench_result.lazy):
            assert side.metadata_bytes > 0
            assert side.payload_bytes > 0
            assert side.total_bytes == side.metadata_bytes + side.payload_bytes

    def test_as_dict_carries_the_gated_speedup(self, bench_result) -> None:
        data = bench_result.as_dict()
        assert data["speedup"] == round(bench_result.speedup, 2)
        assert data["eager"]["payload_bytes"] > data["lazy"]["payload_bytes"]
        assert data["delay_penalty"] == round(bench_result.delay_penalty, 2)

    def test_render_charts_delay_vs_bytes(self, bench_result) -> None:
        text = bench_result.render()
        assert "eager" in text and "lazy" in text
        assert "payload" in text
        assert "p95" in text

    def test_registered_under_the_cli(self) -> None:
        entry = get_experiment("lazy-bench")
        assert entry.runner is run_lazy_bench
        assert entry.takes_scale
