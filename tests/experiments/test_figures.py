"""Smoke tests for the per-figure drivers at a tiny test scale.

Each driver runs at a miniature preset (far below even the "small"
benchmark scale) and is checked for the qualitative *shape* the paper
reports — the full-size shape checks live in ``benchmarks/``.
"""

from __future__ import annotations

import pytest

from repro.experiments.fig3_bounds import run_fig3
from repro.experiments.fig5_latency import (
    PAPER_MEAN,
    PAPER_P50,
    PAPER_P95,
    run_fig5,
)
from repro.experiments.fig6_baseline import run_fig6
from repro.experiments.fig7_scalability import run_fig7a, run_fig7b
from repro.experiments.fig8_churn import run_fig8
from repro.experiments.fig9_cyclon import run_fig9
from repro.experiments.fig10_loss import run_fig10
from repro.experiments.scale import ScalePreset

#: Miniature preset so the whole figure suite smoke-runs in seconds.
TINY = ScalePreset(
    name="tiny",
    fig6_n=24,
    fig6_broadcast_rounds=3,
    fig7a_n=24,
    fig7a_rates=(0.2, 0.4),
    fig7a_broadcast_rounds=3,
    fig7b_sizes=(12, 24),
    fig7b_broadcast_rounds=2,
    sweep_n=24,
    sweep_rates=(0.0, 0.1),
    sweep_broadcast_rounds=2,
    cyclon_warmup_rounds=6,
)


class TestFig3:
    def test_curves_produced_for_each_c(self):
        result = run_fig3(cs=(2.0, 3.0), sizes=(10, 100, 1000))
        assert set(result.fixed_process) == {2.0, 3.0}
        assert len(result.fixed_process[2.0]) == 3

    def test_any_weaker_than_fixed(self):
        result = run_fig3(cs=(2.0,), sizes=(100,))
        _, fixed_val = result.fixed_process[2.0][0]
        _, any_val = result.any_process[2.0][0]
        assert any_val >= fixed_val

    def test_table_renders(self):
        assert "c=2" in run_fig3().table()


class TestFig5:
    def test_summary_matches_paper_statistics(self):
        result = run_fig5(draws=20000)
        assert result.summary.mean == pytest.approx(PAPER_MEAN, rel=0.12)
        assert result.summary.p50 == pytest.approx(PAPER_P50, rel=0.12)
        assert result.summary.p95 == pytest.approx(PAPER_P95, rel=0.12)

    def test_table_renders(self):
        assert "statistic" in run_fig5(draws=2000).table()


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig6(TINY)

    def test_four_configurations(self, result):
        assert len(result.results) == 4

    def test_ordering_costs_more_than_baseline(self, result):
        assert result.ordering_cost_factor() > 1.5

    def test_reduced_ttl_cheaper_than_theory_ttl(self, result):
        theory = result.results["global clock"].summary.p50
        reduced = result.results["global clock TTL=5"].summary.p50
        assert reduced < theory

    def test_epto_runs_are_safe_and_hole_free(self, result):
        for label, res in result.results.items():
            if "baseline" in label:
                continue
            assert res.report.safety_ok, label
            assert res.holes == 0, label

    def test_render(self, result):
        text = result.render()
        assert "baseline (no order)" in text


class TestFig7:
    def test_fig7a_rate_has_small_impact(self):
        result = run_fig7a(TINY, clocks=("global",))
        medians = [res.summary.p50 for res in result.results.values()]
        assert max(medians) < 1.5 * min(medians)
        assert all(res.holes == 0 for res in result.results.values())

    def test_fig7b_grows_sublinearly(self):
        result = run_fig7b(TINY, clocks=("global",))
        growth = result.median_growth_factor("global")
        assert growth < 2.0  # 2x size -> way below 2x delay
        assert "n" in result.table()


class TestChurnSweeps:
    def test_fig8_zero_holes_for_stable_nodes(self):
        result = run_fig8(TINY)
        for rate, res in result.results.items():
            assert res.report.safety_ok, rate
            assert res.holes == 0, rate
        assert result.results[0.1].stable_nodes < TINY.sweep_n

    def test_fig9_uses_cyclon(self):
        result = run_fig9(TINY)
        assert result.pss == "cyclon"
        for rate, res in result.results.items():
            assert res.report.safety_ok, rate

    def test_renders(self):
        assert "churn" in run_fig8(TINY).render()


class TestFig10:
    def test_loss_sweep_shapes(self):
        result = run_fig10(TINY)
        lossless = result.results[0.0]
        lossy = result.results[0.1]
        assert lossless.messages_dropped == 0
        assert lossy.messages_dropped > 0
        for res in result.results.values():
            assert res.report.safety_ok
            assert res.holes == 0
        assert "loss" in result.render()
