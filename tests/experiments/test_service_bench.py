"""Tests for the multi-topic service benchmark and fault drill
(:mod:`repro.experiments.service_bench` /
:mod:`repro.experiments.service_drill`).

Like the net-bench tests, these pin semantics — delivery/order gating,
scenario parsing, at-risk accounting — never wall-clock numbers.
"""

from __future__ import annotations

import pytest

from repro.core.errors import FaultInjectionError
from repro.experiments.registry import get_experiment
from repro.experiments.service_bench import run_service_bench
from repro.experiments.service_drill import (
    DEFAULT_SCENARIO,
    load_scenario,
    run_service_drill,
)


@pytest.fixture(scope="module")
def bench_result():
    """One small comparison shared by the read-only assertions."""
    return run_service_bench(seed=17, n=4, topics=2, events=3)


class TestServiceBench:
    def test_both_sides_deliver_in_order(self, bench_result) -> None:
        assert bench_result.multiplexed.delivered
        assert bench_result.multiplexed.ordered
        assert bench_result.separate.delivered
        assert bench_result.separate.ordered
        assert bench_result.exit_ok

    def test_multiplexing_reduces_datagrams(self, bench_result) -> None:
        # The committed BENCH_core.json gates this at >= 1.0; at equal
        # payload volume the separate side cannot beat the batcher.
        assert bench_result.speedup >= 1.0
        assert (
            bench_result.multiplexed.datagrams
            < bench_result.separate.datagrams
        )

    def test_cross_topic_frames_share_envelopes(self, bench_result) -> None:
        assert bench_result.multiplexed.frames_per_datagram > 1.0
        # One cluster per topic: nothing to share an envelope with.
        assert bench_result.separate.frames_per_datagram == pytest.approx(1.0)

    def test_socket_accounting(self, bench_result) -> None:
        assert bench_result.multiplexed.sockets == 4
        assert bench_result.separate.sockets == 8

    def test_as_dict_carries_the_gated_speedup(self, bench_result) -> None:
        data = bench_result.as_dict()
        assert data["speedup"] == round(bench_result.speedup, 2)
        assert data["multiplexed"]["envelopes"] > 0

    def test_render_mentions_both_sides(self, bench_result) -> None:
        text = bench_result.render()
        assert "multiplexed" in text and "separate" in text
        assert "verdict: OK" in text

    def test_registered(self) -> None:
        assert get_experiment("service-bench").runner is run_service_bench


class TestScenarioParsing:
    def test_default_scenario_parses(self) -> None:
        plans = load_scenario(DEFAULT_SCENARIO)
        assert {plan.topic for plan in plans} == {1, 2}
        heavy = next(plan for plan in plans if plan.topic == 1)
        assert heavy.publisher == 0

    def test_topics_mapping_required(self) -> None:
        with pytest.raises(FaultInjectionError):
            load_scenario({"actions": []})

    def test_topic_ids_must_be_integers(self) -> None:
        with pytest.raises(FaultInjectionError):
            load_scenario({"topics": {"kv": {"actions": []}}})

    def test_unsupported_kinds_rejected(self) -> None:
        with pytest.raises(FaultInjectionError):
            load_scenario(
                {
                    "topics": {
                        "1": {
                            "actions": [
                                {
                                    "kind": "latency_spike",
                                    "at_round": 1.0,
                                    "factor": 4.0,
                                    "duration": 2.0,
                                }
                            ]
                        }
                    }
                }
            )

    def test_crashes_need_explicit_victims(self) -> None:
        with pytest.raises(FaultInjectionError):
            load_scenario(
                {
                    "topics": {
                        "1": {
                            "actions": [
                                {"kind": "crash", "at_round": 1.0, "fraction": 0.5}
                            ]
                        }
                    }
                }
            )


class TestServiceDrill:
    def test_trimmed_drill_passes(self) -> None:
        # Partition one topic's pinned publisher; the other topic must
        # stay clean on the same sockets. Short windows keep it fast.
        scenario = {
            "topics": {
                "1": {
                    "publisher": 0,
                    "actions": [
                        {
                            "kind": "partition",
                            "at_round": 4.0,
                            "groups": {"0": "isolated"},
                            "heal_after": 6.0,
                        }
                    ],
                },
                "2": {"actions": []},
            }
        }
        result = run_service_drill(
            seed=9, n=6, scenario=scenario, round_interval=20
        )
        assert result.exit_ok, result.render()
        by_topic = {v.topic: v for v in result.verdicts}
        assert by_topic[1].at_risk > 0
        assert by_topic[1].isolated_hosts == (0,)
        assert by_topic[2].at_risk == 0
        assert by_topic[2].report.ok
        assert "verdict: OK" in result.render()

    def test_registered(self) -> None:
        assert get_experiment("service-drill").runner is run_service_drill
