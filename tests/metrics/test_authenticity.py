"""Tests for content fingerprinting and the authenticity checker
(repro.metrics.collector fingerprints, repro.metrics.checker)."""

from __future__ import annotations

import dataclasses

from repro.core.event import Event
from repro.faults import check_survivors
from repro.metrics import (
    DeliveryCollector,
    check_authenticity,
    check_run,
    event_fingerprint,
)


def _event(src=1, seq=0, ts=10, payload=None):
    return Event(
        id=(src, seq),
        ts=ts,
        source_id=src,
        payload={"v": seq} if payload is None else payload,
    )


class TestFingerprinting:
    def test_fingerprint_tracks_content(self):
        event = _event()
        same = _event()
        forged = dataclasses.replace(event, payload={"v": "evil"})
        assert event_fingerprint(event) == event_fingerprint(same)
        assert event_fingerprint(event) != event_fingerprint(forged)

    def test_collector_records_fingerprints_only_when_enabled(self):
        event = _event()
        off = DeliveryCollector()
        off.record_broadcast(event, 0)
        off.record_delivery(2, event, 1)
        assert off.deliveries()[0].fingerprint is None
        assert off.genuine_fingerprint(event.id) is None

        on = DeliveryCollector(fingerprints=True)
        on.record_broadcast(event, 0)
        on.record_delivery(2, event, 1)
        assert on.deliveries()[0].fingerprint == event_fingerprint(event)
        assert on.genuine_fingerprint(event.id) == event_fingerprint(event)


class TestCheckAuthenticity:
    def _collector(self):
        collector = DeliveryCollector(fingerprints=True)
        event = _event()
        collector.record_broadcast(event, 0)
        return collector, event

    def test_clean_run_ok(self):
        collector, event = self._collector()
        collector.record_delivery(2, event, 5)
        collector.record_delivery(3, event, 5)
        report = check_authenticity(collector)
        assert report.ok
        assert report.checked_deliveries == 2

    def test_forged_content_detected(self):
        collector, event = self._collector()
        forged = dataclasses.replace(event, payload={"v": "evil"})
        collector.record_delivery(2, forged, 5)
        report = check_authenticity(collector)
        assert len(report.forged_deliveries) == 1
        assert not report.ok

    def test_never_broadcast_id_detected(self):
        collector, _ = self._collector()
        collector.record_delivery(2, _event(src=9, seq=99), 5)
        report = check_authenticity(collector)
        assert len(report.forged_deliveries) == 1

    def test_equivocation_across_nodes_detected(self):
        collector, event = self._collector()
        variant = dataclasses.replace(event, payload={"v": "variant"})
        collector.record_delivery(2, event, 5)
        collector.record_delivery(3, variant, 5)
        report = check_authenticity(collector)
        assert len(report.equivocated_events) == 1

    def test_hostile_nodes_excluded_via_correct_set(self):
        collector, event = self._collector()
        forged = dataclasses.replace(event, payload={"v": "evil"})
        collector.record_delivery(2, event, 5)
        collector.record_delivery(66, forged, 5)  # the adversary itself
        assert not check_authenticity(collector).ok
        assert check_authenticity(collector, correct_nodes={2}).ok

    def test_non_fingerprinting_collector_checks_nothing(self):
        collector = DeliveryCollector()
        event = _event()
        collector.record_broadcast(event, 0)
        collector.record_delivery(2, event, 5)
        report = check_authenticity(collector)
        assert report.ok and report.checked_deliveries == 0


class TestCheckRunExcludeNodes:
    def test_excluded_node_double_delivery_tolerated(self):
        collector = DeliveryCollector()
        event = _event()
        collector.record_broadcast(event, 0)
        collector.record_delivery(2, event, 5)
        # Node 7's journal rewound after a scramble: it re-delivers.
        collector.record_delivery(7, event, 5)
        collector.record_delivery(7, event, 9)

        assert not check_run(collector, correct_nodes={2, 7}).safety_ok
        report = check_run(collector, correct_nodes={2, 7}, exclude_nodes={7})
        assert report.safety_ok
        assert report.checked_nodes == 1


class TestSurvivorContentChecks:
    def test_broadcasts_enable_forgery_and_equivocation_checks(self):
        event = _event()
        forged = dataclasses.replace(event, payload={"v": "evil"})
        deliveries = {2: [event], 3: [forged]}

        plain = check_survivors(deliveries, survivors=[2, 3])
        assert plain.ok  # no content reference, nothing to compare

        checked = check_survivors(
            deliveries, survivors=[2, 3], broadcasts={event.id: event}
        )
        assert len(checked.forged_deliveries) == 1
        assert len(checked.equivocation_violations) == 1
        assert not checked.ok

    def test_byzantine_nodes_excluded_from_all_checks(self):
        event = _event()
        forged = dataclasses.replace(event, payload={"v": "evil"})
        report = check_survivors(
            {2: [event], 66: [forged]},
            survivors=[2, 66],
            byzantine=[66],
            broadcasts={event.id: event},
        )
        assert report.ok
        assert report.checked_nodes == 1
