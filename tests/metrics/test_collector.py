"""Tests for the delivery collector (repro.metrics.collector)."""

from __future__ import annotations

import pytest

from repro.metrics.collector import DeliveryCollector

from ..conftest import make_event


@pytest.fixture
def collector():
    return DeliveryCollector()


class TestRecording:
    def test_counts(self, collector):
        e = make_event(src=1, ts=5)
        collector.record_broadcast(e, time=10)
        collector.record_delivery(0, e, time=40)
        collector.record_delivery(1, e, time=50)
        assert collector.broadcast_count == 1
        assert collector.delivery_count == 2

    def test_sequences_in_delivery_order(self, collector):
        a = make_event(src=1, ts=1)
        b = make_event(src=2, ts=2)
        collector.record_broadcast(a, 0)
        collector.record_broadcast(b, 0)
        collector.record_delivery(0, a, 10)
        collector.record_delivery(0, b, 20)
        assert collector.sequence_of(0) == (a.order_key, b.order_key)
        assert collector.sequence_of(99) == ()

    def test_delivered_ids(self, collector):
        e = make_event(src=1)
        collector.record_broadcast(e, 0)
        collector.record_delivery(3, e, 5)
        assert collector.delivered_ids_of(3) == {e.id}
        assert collector.delivered_ids_of(4) == set()


class TestDelays:
    def test_delay_per_pair(self, collector):
        e = make_event(src=1)
        collector.record_broadcast(e, time=100)
        collector.record_delivery(0, e, time=150)
        collector.record_delivery(1, e, time=175)
        assert sorted(collector.delivery_delays()) == [50, 75]

    def test_unknown_broadcast_skipped(self, collector):
        collector.record_delivery(0, make_event(src=9), time=10)
        assert collector.delivery_delays() == []


class TestLifetimes:
    def test_stable_nodes_window(self, collector):
        collector.record_node_added(0, 0)
        collector.record_node_added(1, 0)
        collector.record_node_removed(1, 500)
        collector.record_node_added(2, 300)
        assert collector.stable_nodes(since=100, until=1000) == {0}
        assert collector.stable_nodes(since=100, until=400) == {0, 1}
        assert collector.stable_nodes(since=350, until=400) == {0, 1, 2}

    def test_lifetime_of(self, collector):
        collector.record_node_added(7, 10)
        assert collector.lifetime_of(7).joined == 10
        assert collector.lifetime_of(7).left is None
        collector.record_node_removed(7, 90)
        assert collector.lifetime_of(7).left == 90
        assert collector.lifetime_of(99) is None


class TestHoles:
    def test_no_holes_when_everyone_delivers_everything(self, collector):
        events = [make_event(src=s, ts=s) for s in (1, 2, 3)]
        for e in events:
            collector.record_broadcast(e, 0)
        for node in (0, 1):
            for e in events:
                collector.record_delivery(node, e, 10)
        assert collector.holes() == []

    def test_hole_detected_for_skipped_event(self, collector):
        a = make_event(src=1, ts=1)
        b = make_event(src=2, ts=2)
        collector.record_broadcast(a, 0)
        collector.record_broadcast(b, 0)
        collector.record_delivery(0, a, 10)
        collector.record_delivery(0, b, 10)
        collector.record_delivery(1, b, 10)  # node 1 missed `a`
        assert collector.holes() == [(1, a.id)]

    def test_trailing_misses_are_not_holes(self, collector):
        # Node 1 simply hasn't caught up past event a; no event after
        # its frontier counts as a hole.
        a = make_event(src=1, ts=1)
        b = make_event(src=2, ts=2)
        collector.record_broadcast(a, 0)
        collector.record_broadcast(b, 0)
        collector.record_delivery(0, a, 10)
        collector.record_delivery(0, b, 10)
        collector.record_delivery(1, a, 10)
        assert collector.holes() == []

    def test_vanished_events_do_not_count(self, collector):
        # An event nobody delivered (broadcaster churned out) is not a
        # hole: agreement is conditional on some delivery happening.
        ghost = make_event(src=9, ts=1)
        b = make_event(src=2, ts=2)
        collector.record_broadcast(ghost, 0)
        collector.record_broadcast(b, 0)
        for node in (0, 1):
            collector.record_delivery(node, b, 10)
        assert collector.holes() == []

    def test_restricting_to_node_subset(self, collector):
        a = make_event(src=1, ts=1)
        b = make_event(src=2, ts=2)
        for e in (a, b):
            collector.record_broadcast(e, 0)
        collector.record_delivery(0, a, 10)
        collector.record_delivery(0, b, 10)
        collector.record_delivery(1, b, 10)  # hole at 1
        assert collector.holes(nodes={0}) == []
        assert collector.holes(nodes={0, 1}) == [(1, a.id)]

    def test_undelivered_events_counts_trailing_too(self, collector):
        a = make_event(src=1, ts=1)
        b = make_event(src=2, ts=2)
        for e in (a, b):
            collector.record_broadcast(e, 0)
        collector.record_delivery(1, a, 10)
        missing = collector.undelivered_events({1})
        assert (1, b.id) in missing
