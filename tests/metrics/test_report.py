"""Tests for plain-text report rendering (repro.metrics.report)."""

from __future__ import annotations

from repro.metrics.cdf import cdf_points
from repro.metrics.report import format_ascii_cdf, format_cdf_series, format_table


class TestFormatTable:
    def test_alignment_and_rule(self):
        table = format_table(["name", "n"], [["alpha", 1], ["b", 200]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert set(lines[1]) <= {"-", " "}
        # All rows share the same width.
        assert len({len(line) for line in lines}) == 1

    def test_wide_cells_stretch_columns(self):
        table = format_table(["x"], [["very-long-cell-value"]])
        assert "very-long-cell-value" in table

    def test_empty_rows(self):
        table = format_table(["a", "b"], [])
        assert len(table.splitlines()) == 2


class TestFormatCdfSeries:
    def test_percentile_extraction(self):
        series = {"fast": cdf_points([1, 2, 3, 4]), "slow": cdf_points([10, 20, 30, 40])}
        rendered = format_cdf_series(series, percentiles=(50, 100))
        lines = rendered.splitlines()
        assert "p50" in lines[0] and "p100" in lines[0]
        fast_row = next(line for line in lines if "fast" in line)
        assert "2" in fast_row and "4" in fast_row

    def test_empty_series_renders_dashes(self):
        rendered = format_cdf_series({"none": []}, percentiles=(50,))
        assert "-" in rendered.splitlines()[-1]


class TestAsciiCdf:
    def test_empty(self):
        assert format_ascii_cdf([]) == "(empty)"

    def test_shape(self):
        plot = format_ascii_cdf(cdf_points(list(range(1, 101))), width=40, height=8)
        lines = plot.splitlines()
        assert len(lines) == 10  # grid + axis + labels
        assert any("*" in line for line in lines)
