"""Tests for plain-text report rendering (repro.metrics.report)."""

from __future__ import annotations

from repro.metrics.cdf import cdf_points
from repro.metrics.report import format_ascii_cdf, format_cdf_series, format_table


class TestFormatTable:
    def test_alignment_and_rule(self):
        table = format_table(["name", "n"], [["alpha", 1], ["b", 200]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert set(lines[1]) <= {"-", " "}
        # All rows share the same width.
        assert len({len(line) for line in lines}) == 1

    def test_wide_cells_stretch_columns(self):
        table = format_table(["x"], [["very-long-cell-value"]])
        assert "very-long-cell-value" in table

    def test_empty_rows(self):
        table = format_table(["a", "b"], [])
        assert len(table.splitlines()) == 2

    def test_cells_are_right_justified(self):
        table = format_table(["value"], [[7]])
        assert table.splitlines()[-1] == "    7"

    def test_non_string_cells_are_stringified(self):
        table = format_table(["x", "y"], [[None, 1.25]])
        last = table.splitlines()[-1]
        assert "None" in last and "1.25" in last


class TestFormatCdfSeries:
    def test_percentile_extraction(self):
        series = {"fast": cdf_points([1, 2, 3, 4]), "slow": cdf_points([10, 20, 30, 40])}
        rendered = format_cdf_series(series, percentiles=(50, 100))
        lines = rendered.splitlines()
        assert "p50" in lines[0] and "p100" in lines[0]
        fast_row = next(line for line in lines if "fast" in line)
        assert "2" in fast_row and "4" in fast_row

    def test_empty_series_renders_dashes(self):
        rendered = format_cdf_series({"none": []}, percentiles=(50,))
        assert "-" in rendered.splitlines()[-1]

    def test_single_sample_series_fills_every_percentile(self):
        rendered = format_cdf_series(
            {"one": cdf_points([42])}, percentiles=(10, 50, 100)
        )
        row = rendered.splitlines()[-1]
        assert row.split() == ["one", "42", "42", "42"]

    def test_tied_samples_report_the_tied_value(self):
        rendered = format_cdf_series(
            {"ties": cdf_points([5, 5, 5, 9])}, percentiles=(25, 75, 100)
        )
        row = rendered.splitlines()[-1]
        assert row.split() == ["ties", "5", "5", "9"]

    def test_level_below_first_step_takes_first_value(self):
        # One sample = one point at cum 100; every level resolves to it.
        rendered = format_cdf_series({"s": [(3.0, 100.0)]}, percentiles=(1,))
        assert rendered.splitlines()[-1].split() == ["s", "3"]


class TestAsciiCdf:
    def test_empty(self):
        assert format_ascii_cdf([]) == "(empty)"

    def test_shape(self):
        plot = format_ascii_cdf(cdf_points(list(range(1, 101))), width=40, height=8)
        lines = plot.splitlines()
        assert len(lines) == 10  # grid + axis + labels
        assert any("*" in line for line in lines)

    def test_single_point_renders(self):
        plot = format_ascii_cdf(cdf_points([5]), width=20, height=4)
        assert "*" in plot

    def test_all_zero_values_avoid_division_by_zero(self):
        # max_x falls back to 1.0 when the largest sample is 0.
        plot = format_ascii_cdf(cdf_points([0, 0, 0]), width=20, height=4)
        assert "*" in plot
