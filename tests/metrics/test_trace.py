"""Tests for trace export/import and timelines (repro.metrics.trace)."""

from __future__ import annotations

import json

import pytest

from repro.metrics.checker import check_run
from repro.metrics.collector import DeliveryCollector
from repro.metrics.trace import (
    TraceError,
    export_trace,
    load_trace,
    round_timeline,
)

from ..conftest import build_small_world, make_event


@pytest.fixture
def recorded_collector():
    collector = DeliveryCollector()
    collector.record_node_added(0, 0)
    collector.record_node_added(1, 0)
    collector.record_node_removed(1, 500)
    a = make_event(src=0, ts=1, payload={"k": 1})
    b = make_event(src=1, ts=2, payload="text")
    collector.record_broadcast(a, 10)
    collector.record_broadcast(b, 130)
    collector.record_delivery(0, a, 260)
    collector.record_delivery(0, b, 270)
    collector.record_delivery(1, a, 265)
    return collector


class TestExportImport:
    def test_roundtrip_preserves_analysis(self, recorded_collector, tmp_path):
        path = tmp_path / "trace.jsonl"
        lines = export_trace(recorded_collector, path)
        assert lines == 7  # 2 nodes + 2 broadcasts + 3 deliveries
        loaded = load_trace(path)
        assert loaded.broadcast_count == 2
        assert loaded.delivery_count == 3
        assert sorted(loaded.delivery_delays()) == sorted(
            recorded_collector.delivery_delays()
        )
        assert loaded.sequence_of(0) == recorded_collector.sequence_of(0)
        assert loaded.lifetime_of(1).left == 500

    def test_loaded_trace_passes_checker(self, recorded_collector, tmp_path):
        path = tmp_path / "trace.jsonl"
        export_trace(recorded_collector, path)
        report = check_run(load_trace(path), correct_nodes={0})
        assert report.safety_ok

    def test_non_json_payload_survives_via_repr(self, tmp_path):
        collector = DeliveryCollector()
        event = make_event(src=0, ts=1, payload=object())
        collector.record_broadcast(event, 0)
        path = tmp_path / "trace.jsonl"
        export_trace(collector, path)
        loaded = load_trace(path)
        payload = loaded.broadcasts()[0].event.payload
        assert "__repr__" in payload

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "broadcast"\n', encoding="utf-8")
        with pytest.raises(TraceError):
            load_trace(path)

    def test_unknown_kind_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"kind": "mystery"}) + "\n", encoding="utf-8")
        with pytest.raises(TraceError):
            load_trace(path)

    def test_delivery_of_unknown_event_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps({"kind": "delivery", "time": 1, "node": 0, "id": [9, 9]})
            + "\n",
            encoding="utf-8",
        )
        with pytest.raises(TraceError):
            load_trace(path)

    def test_out_of_order_lines_tolerated(self, tmp_path):
        # Deliveries may precede their broadcast in file order.
        path = tmp_path / "shuffled.jsonl"
        path.write_text(
            "\n".join(
                [
                    json.dumps(
                        {"kind": "delivery", "time": 50, "node": 0, "id": [0, 0]}
                    ),
                    json.dumps(
                        {
                            "kind": "broadcast",
                            "time": 10,
                            "id": [0, 0],
                            "ts": 1,
                            "src": 0,
                            "payload": None,
                        }
                    ),
                ]
            )
            + "\n",
            encoding="utf-8",
        )
        loaded = load_trace(path)
        assert loaded.delivery_delays() == [40]


class TestRoundTimeline:
    def test_buckets_by_interval(self, recorded_collector):
        timeline = round_timeline(recorded_collector, round_interval=125)
        by_index = {stats.round_index: stats for stats in timeline}
        assert by_index[0].broadcasts == 1  # t=10
        assert by_index[1].broadcasts == 1  # t=130
        assert by_index[2].deliveries == 3  # t=260..270
        # Timeline is dense from 0 to the last active interval.
        assert [s.round_index for s in timeline] == list(range(3))

    def test_empty_collector(self):
        assert round_timeline(DeliveryCollector(), 125) == []

    def test_bad_interval_rejected(self, recorded_collector):
        with pytest.raises(TraceError):
            round_timeline(recorded_collector, 0)

    def test_full_simulation_trace_roundtrip(self, tmp_path):
        world = build_small_world(n=6)
        world.cluster.broadcast_from(0, "traced")
        world.quiesce()
        path = tmp_path / "run.jsonl"
        export_trace(world.cluster.collector, path)
        loaded = load_trace(path)
        assert loaded.delivery_count == world.cluster.collector.delivery_count
        timeline = round_timeline(loaded, world.config.round_interval)
        assert sum(s.deliveries for s in timeline) == 6
