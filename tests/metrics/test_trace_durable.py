"""Tests for rebuilding collectors from durable delivery logs."""

from __future__ import annotations

import pytest

from repro.core.event import Event
from repro.metrics.trace import TraceError, load_delivery_log, load_delivery_logs
from repro.storage.journal import DeliveryJournal


def event(ts: int, src: int, seq: int, payload=None) -> Event:
    return Event(id=(src, seq), ts=ts, source_id=src, payload=payload)


def write_journal(directory, events, **kwargs):
    journal = DeliveryJournal(directory, fsync="never", **kwargs)
    for ev in events:
        journal.record_delivery(ev)
    journal.record_broadcast(events[-1])
    journal.close()


class TestLoadDeliveryLog:
    def test_one_node_round_trip(self, tmp_path):
        node_dir = tmp_path / "node-4"
        events = [event(1, 0, 0, "a"), event(2, 1, 0, "b"), event(3, 0, 1, "c")]
        write_journal(node_dir, events)

        collector = load_delivery_log(node_dir)
        # node id inferred from the directory name; markers skipped.
        assert collector.delivery_count == 3
        assert collector.broadcast_count == 3
        assert [d.node_id for d in collector.deliveries()] == [4, 4, 4]
        assert [d.event_id for d in collector.deliveries()] == [e.id for e in events]

    def test_explicit_node_id_and_log_dir(self, tmp_path):
        write_journal(tmp_path / "anywhere", [event(1, 0, 0)])
        collector = load_delivery_log(tmp_path / "anywhere" / "log", node_id=9)
        assert [d.node_id for d in collector.deliveries()] == [9]

    def test_corrupt_sealed_segment_stops_without_raising(self, tmp_path):
        # Corruption in a *sealed* segment survives open-time tail
        # repair; the loader must stop there, not crash or skip ahead.
        node_dir = tmp_path / "node-0"
        events = [event(i + 1, 0, i, f"v{i}") for i in range(6)]
        write_journal(node_dir, events, segment_max_bytes=64)
        segments = sorted((node_dir / "log").glob("seg-*.log"))
        assert len(segments) >= 2
        data = bytearray(segments[0].read_bytes())
        data[10] ^= 0xFF  # first record's payload: CRC mismatch
        segments[0].write_bytes(bytes(data))

        collector = load_delivery_log(node_dir)
        assert collector.delivery_count == 0  # stopped at the corruption

    def test_missing_log_raises(self, tmp_path):
        with pytest.raises(TraceError):
            load_delivery_log(tmp_path / "node-1")


class TestLoadDeliveryLogs:
    def test_merges_all_nodes(self, tmp_path):
        shared = [event(1, 0, 0, "x"), event(2, 1, 0, "y")]
        write_journal(tmp_path / "node-0", shared)
        write_journal(tmp_path / "node-1", shared)

        collector = load_delivery_logs(tmp_path)
        assert collector.delivery_count == 4
        assert collector.broadcast_count == 2  # shared events deduplicated
        assert sorted({d.node_id for d in collector.deliveries()}) == [0, 1]

    def test_empty_root_raises(self, tmp_path):
        with pytest.raises(TraceError):
            load_delivery_logs(tmp_path)
