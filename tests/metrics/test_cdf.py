"""Tests for CDF helpers (repro.metrics.cdf)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.metrics.cdf import DelaySummary, cdf_at, cdf_points, percentile


class TestPercentile:
    def test_bounds(self):
        data = [1, 2, 3, 4, 5]
        assert percentile(data, 0) == 1
        assert percentile(data, 100) == 5

    def test_median_odd(self):
        assert percentile([5, 1, 3], 50) == 3

    def test_interpolation(self):
        assert percentile([0, 10], 50) == 5.0
        assert percentile([0, 10], 25) == 2.5

    def test_single_sample(self):
        assert percentile([7], 99) == 7

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1], 101)

    @given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1))
    def test_percentile_within_sample_range(self, data):
        for p in (0, 25, 50, 75, 100):
            value = percentile(data, p)
            assert min(data) <= value <= max(data)

    @given(st.lists(st.integers(min_value=0, max_value=1000), min_size=2))
    def test_monotone_in_p(self, data):
        values = [percentile(data, p) for p in range(0, 101, 10)]
        assert values == sorted(values)

    def test_all_ties_every_percentile_is_the_value(self):
        data = [7, 7, 7, 7]
        for p in (0, 1, 50, 99, 100):
            assert percentile(data, p) == 7.0

    def test_tied_neighbours_skip_interpolation(self):
        # rank lands between two equal values: no blending, exact value.
        assert percentile([1, 5, 5, 9], 50) == 5.0

    def test_interpolation_returns_float_even_for_int_samples(self):
        assert isinstance(percentile([1, 2, 3], 50), float)

    def test_negative_percentile_rejected(self):
        with pytest.raises(ValueError):
            percentile([1], -0.1)

    def test_fractional_percentiles_interpolate(self):
        # rank = 0.015 between 0 and 100.
        assert percentile([0, 100], 1.5) == pytest.approx(1.5)


class TestCdfPoints:
    def test_empty(self):
        assert cdf_points([]) == []

    def test_distinct_values_collapse(self):
        points = cdf_points([1, 1, 2])
        assert points == [(1.0, pytest.approx(66.666, rel=1e-3)), (2.0, 100.0)]

    def test_last_point_is_100(self):
        points = cdf_points([3, 1, 4, 1, 5])
        assert points[-1][1] == 100.0

    def test_monotone(self):
        points = cdf_points([5, 3, 8, 1, 9, 2])
        values = [v for v, _ in points]
        cums = [c for _, c in points]
        assert values == sorted(values)
        assert cums == sorted(cums)

    def test_cdf_at(self):
        data = [10, 20, 30, 40]
        assert cdf_at(data, 5) == 0.0
        assert cdf_at(data, 20) == 50.0
        assert cdf_at(data, 100) == 100.0
        assert cdf_at([], 1) == 0.0

    def test_single_sample_is_one_point_at_100(self):
        assert cdf_points([42]) == [(42.0, 100.0)]

    def test_all_identical_samples_collapse_to_one_point(self):
        assert cdf_points([3, 3, 3, 3, 3]) == [(3.0, 100.0)]

    @given(st.lists(st.integers(min_value=0, max_value=50), min_size=1))
    def test_points_agree_with_cdf_at(self, data):
        for value, cum in cdf_points(data):
            assert cum == pytest.approx(cdf_at(data, value))


class TestDelaySummary:
    def test_basic_statistics(self):
        summary = DelaySummary.from_samples([10, 20, 30])
        assert summary.count == 3
        assert summary.mean == pytest.approx(20)
        assert summary.minimum == 10
        assert summary.maximum == 30
        assert summary.p50 == 20

    def test_std_population(self):
        summary = DelaySummary.from_samples([2, 4])
        assert summary.std == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            DelaySummary.from_samples([])

    def test_as_row_keys(self):
        row = DelaySummary.from_samples([1, 2, 3]).as_row()
        assert set(row) == {
            "count", "mean", "std", "min", "p5", "p50", "p95", "p99", "max"
        }

    def test_single_sample_degenerates_cleanly(self):
        summary = DelaySummary.from_samples([13])
        assert summary.count == 1
        assert summary.std == 0.0
        assert (
            summary.minimum
            == summary.p5
            == summary.p50
            == summary.p95
            == summary.p99
            == summary.maximum
            == 13.0
        )

    def test_all_ties_have_zero_spread(self):
        summary = DelaySummary.from_samples([4, 4, 4, 4])
        assert summary.std == 0.0
        assert summary.p5 == summary.p99 == 4.0

    def test_as_row_rounds_to_one_decimal(self):
        row = DelaySummary.from_samples([1, 2]).as_row()
        assert row["mean"] == 1.5
        assert row["std"] == 0.5
        assert row["p50"] == 1.5
