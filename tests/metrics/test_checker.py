"""Tests for the Table 1 specification checker (repro.metrics.checker).

Includes the two canonical runs of paper Figure 1: run A (order
preserved, agreement violated — legal in EpTO) and run B (agreement
preserved, order violated — illegal).
"""

from __future__ import annotations

import pytest

from repro.metrics.checker import (
    check_integrity,
    check_pairwise_order,
    check_run,
    check_total_order,
    check_validity,
)
from repro.metrics.collector import DeliveryCollector

from ..conftest import make_event


def record_run(deliveries_by_node, broadcasts):
    """Build a collector from explicit broadcast and delivery plans."""
    collector = DeliveryCollector()
    for node in deliveries_by_node:
        collector.record_node_added(node, 0)
    for event in broadcasts:
        collector.record_broadcast(event, 0)
    for node, events in deliveries_by_node.items():
        for t, event in enumerate(events):
            collector.record_delivery(node, event, 10 + t)
    return collector


@pytest.fixture
def figure1_events():
    # e, e', e'' broadcast by p (0), q (1), r (2) respectively.
    e = make_event(src=0, ts=1, payload="e")
    e1 = make_event(src=1, ts=2, payload="e'")
    e2 = make_event(src=2, ts=3, payload="e''")
    return e, e1, e2


class TestFigure1Runs:
    def test_run_a_order_without_agreement_is_legal(self, figure1_events):
        """Figure 1a: r misses e — a hole, but a valid EpTO run."""
        e, e1, e2 = figure1_events
        collector = record_run(
            {0: [e, e1, e2], 1: [e, e1, e2], 2: [e1, e2]},
            broadcasts=[e, e1, e2],
        )
        report = check_run(collector)
        assert not report.order_violations
        assert not report.integrity_violations
        assert report.holes == [(2, e.id)]
        assert report.safety_ok
        assert not report.agreement_ok

    def test_run_b_agreement_without_order_is_illegal(self, figure1_events):
        """Figure 1b: r delivers e'' before e' — a total order violation."""
        e, e1, e2 = figure1_events
        collector = record_run(
            {0: [e, e1, e2], 1: [e, e1, e2], 2: [e, e2, e1]},
            broadcasts=[e, e1, e2],
        )
        report = check_run(collector)
        assert report.order_violations  # run B must be flagged
        assert not report.holes
        assert not report.safety_ok

    def test_pairwise_checker_flags_run_b(self, figure1_events):
        e, e1, e2 = figure1_events
        seq_p = [e.order_key, e1.order_key, e2.order_key]
        seq_r = [e.order_key, e2.order_key, e1.order_key]
        conflicts = check_pairwise_order(seq_p, seq_r)
        assert (e1.order_key, e2.order_key) in conflicts

    def test_pairwise_checker_accepts_run_a(self, figure1_events):
        e, e1, e2 = figure1_events
        seq_p = [e.order_key, e1.order_key, e2.order_key]
        seq_r = [e1.order_key, e2.order_key]  # subsequence: fine
        assert check_pairwise_order(seq_p, seq_r) == []


class TestIntegrity:
    def test_duplicate_delivery_flagged(self):
        e = make_event(src=0, ts=1)
        collector = record_run({0: [e, e]}, broadcasts=[e])
        violations = check_integrity(collector)
        assert any("twice" in v for v in violations)

    def test_spurious_event_flagged(self):
        e = make_event(src=0, ts=1)
        ghost = make_event(src=9, ts=9)
        collector = record_run({0: [e]}, broadcasts=[e])
        collector.record_delivery(0, ghost, 99)
        violations = check_integrity(collector)
        assert any("never-broadcast" in v for v in violations)

    def test_clean_run_passes(self):
        e = make_event(src=0, ts=1)
        collector = record_run({0: [e], 1: [e]}, broadcasts=[e])
        assert check_integrity(collector) == []


class TestTotalOrder:
    def test_non_increasing_keys_flagged(self):
        a = make_event(src=0, ts=5)
        b = make_event(src=1, ts=2)
        collector = record_run({0: [a, b]}, broadcasts=[a, b])
        assert check_total_order(collector.sequences())

    def test_increasing_keys_pass(self):
        a = make_event(src=0, ts=2)
        b = make_event(src=1, ts=5)
        collector = record_run({0: [a, b], 1: [a, b]}, broadcasts=[a, b])
        assert check_total_order(collector.sequences()) == []


class TestValidity:
    def test_correct_node_missing_own_event_flagged(self):
        mine = make_event(src=0, ts=1)
        collector = record_run({0: [], 1: [mine]}, broadcasts=[mine])
        violations = check_validity(collector, correct_nodes={0})
        assert len(violations) == 1

    def test_faulty_nodes_exempt(self):
        mine = make_event(src=0, ts=1)
        collector = record_run({0: [], 1: [mine]}, broadcasts=[mine])
        assert check_validity(collector, correct_nodes={1}) == []

    def test_satisfied_validity(self):
        mine = make_event(src=0, ts=1)
        collector = record_run({0: [mine]}, broadcasts=[mine])
        assert check_validity(collector, correct_nodes={0}) == []


class TestReport:
    def test_summary_format(self, figure1_events):
        e, e1, e2 = figure1_events
        collector = record_run({0: [e, e1, e2]}, broadcasts=[e, e1, e2])
        report = check_run(collector)
        summary = report.summary()
        assert "safety=OK" in summary
        assert "holes=0" in summary

    def test_default_correct_nodes_are_delivering_nodes(self, figure1_events):
        e, e1, e2 = figure1_events
        collector = record_run({0: [e, e1, e2], 5: [e, e1, e2]},
                               broadcasts=[e, e1, e2])
        report = check_run(collector)
        assert report.checked_nodes == 2
