"""Tests for the Pbcast-style stability-only baseline (repro.broadcast.pbcast)."""

from __future__ import annotations

from repro.broadcast.pbcast import StabilityOrderedProcess
from repro.core import EpToConfig
from repro.core.event import BallEntry, make_ball
from repro.experiments.common import ExperimentSpec, run_experiment
from repro.sim import NoDrift

from ..conftest import RecordingTransport, StaticPeerSampler, make_event


def build_process(ttl=2, fanout=2):
    config = EpToConfig(fanout=fanout, ttl=ttl, clock="logical")
    delivered: list = []
    process = StabilityOrderedProcess(
        node_id=0,
        config=config,
        peer_sampler=StaticPeerSampler([1, 2]),
        transport=RecordingTransport(),
        on_deliver=delivered.append,
    )
    return process, delivered


class TestStabilityDelivery:
    def test_delivers_after_stability_delay(self):
        process, delivered = build_process(ttl=2)
        process.on_ball(make_ball([BallEntry(make_event(src=1, ts=5), 0)]))
        process.on_round()
        process.on_round()
        assert delivered == []
        process.on_round()  # aged past TTL
        assert len(delivered) == 1

    def test_stable_batch_delivered_in_timestamp_order(self):
        process, delivered = build_process(ttl=1)
        ball = make_ball(
            [
                BallEntry(make_event(src=2, ts=9), 0),
                BallEntry(make_event(src=1, ts=3), 0),
            ]
        )
        process.on_ball(ball)
        for _ in range(3):
            process.on_round()
        assert [e.ts for e in delivered] == [3, 9]

    def test_no_min_queued_guard_by_design(self):
        # A stable late event is delivered even though an earlier,
        # still-aging event is pending — the rule EpTO forbids.
        process, delivered = build_process(ttl=2)
        process.on_ball(make_ball([BallEntry(make_event(src=2, ts=10), 1)]))
        process.on_round()  # received: ts=10 at ttl 2
        process.on_ball(make_ball([BallEntry(make_event(src=1, ts=1), 0)]))
        process.on_round()  # ts=10 ages to 3 > TTL; ts=1 only at ttl 1
        assert [e.ts for e in delivered] == [10]
        assert process.pending_count == 1

    def test_no_late_discard_by_design(self):
        # A late-arriving earlier event is STILL delivered after it
        # stabilizes — out of order, which is exactly the failure mode
        # the ordering-guard ablation measures.
        process, delivered = build_process(ttl=1)
        process.on_ball(make_ball([BallEntry(make_event(src=2, ts=10), 0)]))
        for _ in range(3):
            process.on_round()
        assert [e.ts for e in delivered] == [10]
        process.on_ball(make_ball([BallEntry(make_event(src=1, ts=1), 0)]))
        for _ in range(3):
            process.on_round()
        assert [e.ts for e in delivered] == [10, 1]  # order violation

    def test_duplicates_not_redelivered(self):
        process, delivered = build_process(ttl=1)
        ball = make_ball([BallEntry(make_event(src=1, ts=1), 0)])
        process.on_ball(ball)
        for _ in range(3):
            process.on_round()
        assert len(delivered) == 1
        process.on_ball(ball)
        for _ in range(3):
            process.on_round()
        assert len(delivered) == 1


class TestVersusEpto:
    def test_order_holds_under_synchrony(self):
        """Under Pbcast's own assumptions (latency below the round
        duration, no drift) stability-only delivery is totally ordered."""
        from repro.sim.latency import FixedLatency

        spec = ExperimentSpec(
            name="pbcast-sync",
            n=16,
            seed=21,
            process_kind="pbcast",
            latency=FixedLatency(10),
            drift_fraction=0.0,
            broadcast_rate=0.2,
            broadcast_rounds=3,
        )
        result = run_experiment(spec)
        assert result.deliveries > 0
        assert not result.report.order_violations

    def test_order_can_break_under_asynchrony_where_epto_holds(self):
        """Same adversarial conditions (heavy-tailed latency far above
        the round duration): EpTO keeps total order, the Pbcast-style
        rule does not — the paper's §7 distinction."""
        from repro.sim.latency import PlanetLabLatency

        violations = {"epto": 0, "pbcast": 0}
        for kind in violations:
            for seed in range(5):
                spec = ExperimentSpec(
                    name=f"async-{kind}-{seed}",
                    n=24,
                    seed=30 + seed,
                    process_kind=kind,
                    latency=PlanetLabLatency(),
                    ttl=4,  # tight stability delay vs ~3x-delta tails
                    broadcast_rate=0.2,
                    broadcast_rounds=4,
                )
                result = run_experiment(spec)
                violations[kind] += len(result.report.order_violations)
        assert violations["epto"] == 0
        assert violations["pbcast"] > 0
