"""Tests for the unordered balls-and-bins baseline (repro.broadcast)."""

from __future__ import annotations

import pytest

from repro.broadcast.balls_bins import BallsBinsProcess
from repro.core import EpToConfig
from repro.core.event import BallEntry, make_ball
from repro.sim import ClusterConfig, FixedLatency, SimCluster, SimNetwork, Simulator

from ..conftest import RecordingTransport, StaticPeerSampler, make_event


def build_process(ttl=3, fanout=2):
    config = EpToConfig(fanout=fanout, ttl=ttl, clock="logical")
    transport = RecordingTransport()
    delivered: list = []
    process = BallsBinsProcess(
        node_id=0,
        config=config,
        peer_sampler=StaticPeerSampler([1, 2]),
        transport=transport,
        on_deliver=delivered.append,
    )
    return process, transport, delivered


class TestFirstSightDelivery:
    def test_delivers_on_arrival_not_round(self):
        process, _, delivered = build_process()
        process.on_ball(make_ball([BallEntry(make_event(src=1), 0)]))
        assert len(delivered) == 1  # immediately, before any round

    def test_never_delivers_twice(self):
        process, _, delivered = build_process()
        ball = make_ball([BallEntry(make_event(src=1), 0)])
        process.on_ball(ball)
        process.on_ball(ball)
        process.on_round()
        process.on_ball(ball)
        assert len(delivered) == 1

    def test_own_broadcast_delivered_at_next_round(self):
        process, _, delivered = build_process()
        process.broadcast("mine")
        assert delivered == []  # queued in nextBall
        process.on_round()
        assert [e.payload for e in delivered] == ["mine"]

    def test_expired_events_still_delivered_once(self):
        # Unlike EpTO, the baseline delivers events even at the TTL
        # boundary (they are just not relayed further).
        process, transport, delivered = build_process(ttl=2)
        process.on_ball(make_ball([BallEntry(make_event(src=1), 2)]))
        assert len(delivered) == 1
        process.on_round()
        assert transport.sent == []  # not relayed

    def test_no_order_guarantee_by_design(self):
        process, _, delivered = build_process()
        late = make_event(src=2, ts=100)
        early = make_event(src=1, ts=1)
        process.on_ball(make_ball([BallEntry(late, 0)]))
        process.on_ball(make_ball([BallEntry(early, 0)]))
        assert [e.ts for e in delivered] == [100, 1]  # arrival order


class TestRelaying:
    def test_relays_like_epto(self):
        process, transport, _ = build_process(ttl=3, fanout=2)
        process.on_ball(make_ball([BallEntry(make_event(src=1), 0)]))
        process.on_round()
        assert len(transport.sent) == 2
        assert transport.sent[0][2][0].ttl == 1


class TestClusterIntegration:
    def test_baseline_faster_than_epto(self):
        """The whole point of Figure 6: first-sight delivery beats
        TTL-aged delivery by a multiple."""

        def run(kind):
            sim = Simulator(seed=4)
            network = SimNetwork(sim, latency=FixedLatency(10))
            config = EpToConfig(fanout=4, ttl=8, round_interval=100)

            def factory(*, node_id, pss, transport, on_deliver, time_source, rng):
                return BallsBinsProcess(
                    node_id=node_id,
                    config=config,
                    peer_sampler=pss,
                    transport=transport,
                    on_deliver=on_deliver,
                    time_source=time_source,
                    rng=rng,
                )

            cluster = SimCluster(
                sim,
                network,
                ClusterConfig(epto=config),
                process_factory=factory if kind == "baseline" else None,
            )
            cluster.add_nodes(12)
            cluster.broadcast_from(0, "race")
            sim.run(until=10_000)
            delays = cluster.collector.delivery_delays()
            assert len(delays) == 12
            return max(delays)

        assert run("baseline") * 2 < run("epto")
