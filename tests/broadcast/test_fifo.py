"""Tests for the per-source FIFO epidemic baseline (repro.broadcast.fifo)."""

from __future__ import annotations

from repro.broadcast.fifo import FifoProcess
from repro.core import EpToConfig
from repro.core.event import BallEntry, make_ball

from ..conftest import RecordingTransport, StaticPeerSampler, make_event


def build_process(ttl=3, fanout=2):
    config = EpToConfig(fanout=fanout, ttl=ttl, clock="logical")
    delivered: list = []
    process = FifoProcess(
        node_id=0,
        config=config,
        peer_sampler=StaticPeerSampler([1, 2]),
        transport=RecordingTransport(),
        on_deliver=delivered.append,
    )
    return process, delivered


class TestPerSourceFifo:
    def test_in_order_arrival_delivers_immediately(self):
        process, delivered = build_process()
        process.on_ball(make_ball([BallEntry(make_event(src=1, seq=0), 0)]))
        process.on_ball(make_ball([BallEntry(make_event(src=1, seq=1), 0)]))
        assert [e.seq for e in delivered] == [0, 1]

    def test_gap_blocks_later_events_from_same_source(self):
        process, delivered = build_process()
        process.on_ball(make_ball([BallEntry(make_event(src=1, seq=1), 0)]))
        assert delivered == []  # seq 0 missing
        assert process.blocked_count == 1
        process.on_ball(make_ball([BallEntry(make_event(src=1, seq=0), 0)]))
        assert [e.seq for e in delivered] == [0, 1]
        assert process.blocked_count == 0

    def test_gap_does_not_block_other_sources(self):
        process, delivered = build_process()
        process.on_ball(make_ball([BallEntry(make_event(src=1, seq=1), 0)]))
        process.on_ball(make_ball([BallEntry(make_event(src=2, seq=0), 0)]))
        assert [(e.source_id, e.seq) for e in delivered] == [(2, 0)]

    def test_duplicates_ignored(self):
        process, delivered = build_process()
        entry = BallEntry(make_event(src=1, seq=0), 0)
        process.on_ball(make_ball([entry]))
        process.on_ball(make_ball([entry]))
        assert len(delivered) == 1

    def test_own_broadcasts_fifo(self):
        process, delivered = build_process()
        process.broadcast("a")
        process.broadcast("b")
        process.on_round()
        assert [e.payload for e in delivered] == ["a", "b"]

    def test_out_of_order_batch_reassembled(self):
        process, delivered = build_process()
        entries = [
            BallEntry(make_event(src=3, seq=2), 0),
            BallEntry(make_event(src=3, seq=0), 0),
            BallEntry(make_event(src=3, seq=1), 0),
        ]
        process.on_ball(make_ball(entries))
        assert [e.seq for e in delivered] == [0, 1, 2]

    def test_no_total_order_across_sources(self):
        # FIFO is strictly weaker than EpTO: cross-source order follows
        # arrival, not timestamps.
        process, delivered = build_process()
        process.on_ball(make_ball([BallEntry(make_event(src=2, seq=0, ts=50), 0)]))
        process.on_ball(make_ball([BallEntry(make_event(src=1, seq=0, ts=1), 0)]))
        assert [e.source_id for e in delivered] == [2, 1]
