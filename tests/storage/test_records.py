"""Tests for the durable log record codec (repro.storage.records)."""

from __future__ import annotations

import pytest

from repro.core.errors import StorageError
from repro.core.event import Event
from repro.storage.records import (
    BroadcastMarker,
    DeliveryRecord,
    decode_record,
    encode_record,
)


def event(ts: int, src: int, seq: int, payload=None) -> Event:
    return Event(id=(src, seq), ts=ts, source_id=src, payload=payload)


class TestRoundTrip:
    def test_delivery_record(self):
        record = DeliveryRecord(event(7, 3, 2, {"op": "put", "k": "a"}))
        assert decode_record(encode_record(record)) == record

    def test_broadcast_marker(self):
        assert decode_record(encode_record(BroadcastMarker(41))) == BroadcastMarker(41)

    def test_null_payload(self):
        record = DeliveryRecord(event(1, 0, 0, None))
        assert decode_record(encode_record(record)) == record


class TestErrors:
    def test_non_serializable_payload_rejected(self):
        record = DeliveryRecord(event(1, 0, 0, object()))
        with pytest.raises(StorageError):
            encode_record(record)

    def test_unknown_record_type_rejected(self):
        with pytest.raises(StorageError):
            encode_record("not a record")  # type: ignore[arg-type]

    def test_empty_payload_rejected(self):
        with pytest.raises(StorageError):
            decode_record(b"")

    def test_unknown_kind_rejected(self):
        with pytest.raises(StorageError):
            decode_record(b"\x09rest")

    def test_truncated_delivery_rejected(self):
        good = encode_record(DeliveryRecord(event(7, 3, 2, "x")))
        with pytest.raises(StorageError):
            decode_record(good[:-1])

    def test_corrupt_json_rejected(self):
        good = encode_record(DeliveryRecord(event(7, 3, 2, "xy")))
        with pytest.raises(StorageError):
            decode_record(good[:-4] + b"\xff\xfe\xfd\xfc")
