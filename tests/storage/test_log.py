"""Tests for the segmented append-only delivery log (repro.storage.log)."""

from __future__ import annotations

import struct
import zlib

import pytest

from repro.core.errors import StorageError
from repro.core.event import Event
from repro.storage.log import DeliveryLog
from repro.storage.records import BroadcastMarker, DeliveryRecord


def event(ts: int, src: int, seq: int, payload=None) -> Event:
    return Event(id=(src, seq), ts=ts, source_id=src, payload=payload)


def deliveries(n: int, src: int = 1) -> list:
    return [DeliveryRecord(event(ts, src, ts, {"n": ts})) for ts in range(n)]


class TestRoundTrip:
    def test_append_then_read(self, tmp_path):
        log = DeliveryLog(tmp_path)
        records = deliveries(5) + [BroadcastMarker(9)]
        for record in records:
            log.append(record)
        assert list(log.records()) == records
        assert log.last_read.clean
        assert log.last_read.records == 6
        log.close()

    def test_reopen_reads_previous_records(self, tmp_path):
        log = DeliveryLog(tmp_path)
        for record in deliveries(3):
            log.append(record)
        log.close()
        reopened = DeliveryLog(tmp_path)
        assert list(reopened.records()) == deliveries(3)
        reopened.append(BroadcastMarker(1))
        assert list(reopened.records()) == deliveries(3) + [BroadcastMarker(1)]
        reopened.close()

    def test_delivered_events_filters_markers(self, tmp_path):
        log = DeliveryLog(tmp_path)
        log.append(BroadcastMarker(0))
        log.append(DeliveryRecord(event(4, 2, 0)))
        log.append(BroadcastMarker(1))
        assert [r.event.ts for r in log.delivered_events()] == [4]
        log.close()


class TestRotation:
    def test_segments_rotate_and_read_in_order(self, tmp_path):
        log = DeliveryLog(tmp_path, segment_max_bytes=64)
        records = deliveries(20)
        for record in records:
            log.append(record)
        assert len(log.segments()) > 1
        assert log.stats.segments_created >= 1
        assert list(log.records()) == records
        log.close()

    def test_truncate_upto_removes_only_covered_sealed_segments(self, tmp_path):
        log = DeliveryLog(tmp_path, segment_max_bytes=64)
        records = deliveries(20)
        for record in records:
            log.append(record)
        before = log.segments()
        assert len(before) >= 3
        # Cover everything: every sealed segment goes, the active stays.
        removed = log.truncate_upto(records[-1].event.order_key)
        assert removed == len(before) - 1
        assert log.segments() == [before[-1]]
        # Surviving suffix is still readable and appendable.
        log.append(BroadcastMarker(99))
        tail = list(log.records())
        assert tail[-1] == BroadcastMarker(99)
        log.close()

    def test_truncate_upto_keeps_uncovered_segments(self, tmp_path):
        log = DeliveryLog(tmp_path, segment_max_bytes=64)
        records = deliveries(20)
        for record in records:
            log.append(record)
        removed = log.truncate_upto(records[4].event.order_key)
        kept = [r for r in log.records() if isinstance(r, DeliveryRecord)]
        # No record above the watermark may be deleted.
        assert [r.event.ts for r in kept[-15:]] == [r.event.ts for r in records[-15:]]
        assert removed < 20
        log.close()


class TestFailureHandling:
    def test_torn_tail_is_repaired_on_open(self, tmp_path):
        log = DeliveryLog(tmp_path)
        for record in deliveries(4):
            log.append(record)
        log.close()
        active = log.segments()[-1]
        with open(active, "ab") as fh:
            fh.write(b"\x00\x00\x00\x40partial-frame")  # length says 64, body short

        reopened = DeliveryLog(tmp_path)
        assert reopened.stats.torn_bytes_repaired > 0
        assert list(reopened.records()) == deliveries(4)
        assert reopened.last_read.clean
        # Appends land on the repaired boundary, not after garbage.
        reopened.append(BroadcastMarker(5))
        assert list(reopened.records()) == deliveries(4) + [BroadcastMarker(5)]
        reopened.close()

    def test_reader_stops_at_torn_tail_without_raising(self, tmp_path):
        # Tear the active segment *after* opening, so the read path
        # (not the open-time repair) has to absorb the partial frame.
        log = DeliveryLog(tmp_path)
        for record in deliveries(4):
            log.append(record)
        active = log.segments()[-1]
        active.write_bytes(active.read_bytes()[:-3])
        got = list(log.records())
        assert got == deliveries(3)
        assert not log.last_read.clean
        assert log.last_read.stopped_reason == "torn"
        log.close()

    def test_reader_stops_at_interior_corruption(self, tmp_path):
        log = DeliveryLog(tmp_path, segment_max_bytes=64)
        records = deliveries(20)
        for record in records:
            log.append(record)
        segments = log.segments()
        assert len(segments) >= 3
        # Flip one payload byte in the *first* segment: CRC must catch it.
        first = segments[0]
        data = bytearray(first.read_bytes())
        data[10] ^= 0xFF
        first.write_bytes(bytes(data))

        got = list(log.records())
        report = log.last_read
        assert not report.clean
        assert report.stopped_reason == "crc"
        assert report.stopped_at[0] == first.name
        # Never skips ahead: nothing after the corruption is yielded,
        # and the untouched later segments are reported, not read.
        assert got == records[: len(got)]
        assert report.segments_unread == [p.name for p in segments[1:]]
        log.close()

    def test_reader_stops_at_undecodable_record(self, tmp_path):
        # Inject after open (open-time repair would trim a bad tail):
        # a frame with a valid CRC over an unknown record kind.
        log = DeliveryLog(tmp_path)
        for record in deliveries(2):
            log.append(record)
        payload = b"\x09junk"
        frame = struct.pack("!II", len(payload), zlib.crc32(payload)) + payload
        with open(log.segments()[-1], "ab") as fh:
            fh.write(frame)

        assert list(log.records()) == deliveries(2)
        assert log.last_read.stopped_reason == "decode"
        log.close()


class TestGuards:
    def test_unknown_fsync_policy_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            DeliveryLog(tmp_path, fsync="sometimes")

    def test_tiny_segment_cap_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            DeliveryLog(tmp_path, segment_max_bytes=4)

    def test_append_after_close_raises(self, tmp_path):
        log = DeliveryLog(tmp_path)
        log.close()
        assert log.closed
        with pytest.raises(StorageError):
            log.append(BroadcastMarker(0))

    def test_fsync_always_counts_syncs(self, tmp_path):
        log = DeliveryLog(tmp_path, fsync="always")
        for record in deliveries(3):
            log.append(record)
        assert log.stats.fsyncs >= 3
        log.close()
