"""Acceptance drill: crash -> same-id respawn -> recovery from disk.

The ISSUE acceptance scenario, run deterministically in the simulator:
a journaled node crashes mid-run, is respawned under the same identity
within the TTL window, recovers its replica from snapshot + log-suffix
replay, and converges with the rest of the cluster — zero duplicate
applies anywhere.

Scheduling note: EpTO delivers an event right at the end of its relay
window (TTL rounds after broadcast), so a crashed node permanently
misses any event whose window closes during its outage — an inherent
property of TTL-bounded epidemics, not of the storage layer. The
drill therefore keeps a broadcast gap around the outage: everything
in flight at the crash is still circulating at the respawn.
"""

from __future__ import annotations

from repro.core.config import EpToConfig
from repro.metrics.checker import check_run
from repro.sim.cluster import ClusterConfig, SimCluster
from repro.sim.engine import Simulator
from repro.sim.network import SimNetwork
from repro.smr.machine import KeyValueStore
from repro.smr.replica import ReplicatedService

N = 8
SEED = 11
CRASHED = 3


def run_drill(tmp_path):
    sim = Simulator(seed=SEED)
    network = SimNetwork(sim)
    config = ClusterConfig(
        epto=EpToConfig(fanout=4, ttl=12, round_interval=10),
        expected_size=N,
    )
    cluster = SimCluster(sim, network, config, storage_dir=tmp_path)
    cluster.add_nodes(N)
    service = ReplicatedService(cluster, KeyValueStore, journal_commands=True)

    sent = []

    def submit(node_id: int, index: int) -> None:
        sent.append(service.submit(node_id, ["put", f"c{index}", index]))

    # Phase 1: early traffic (the victim broadcasts too). Delivered —
    # and journaled — before the crash; the TTL expires during the
    # outage, so after the respawn these events exist *only* in the
    # victim's durable snapshot and log.
    for i in range(4):
        sim.schedule_at(5 + i * 10, lambda i=i: submit(i % N, i))
    # Checkpoint the victim's replica mid-stream, so recovery
    # exercises snapshot restore *plus* log-suffix replay.
    sim.schedule_at(
        145,
        lambda: cluster.journals[CRASHED].save_snapshot(
            service.replica(CRASHED).snapshot()
        ),
    )
    # Phase 2: traffic that is still in flight across the whole
    # outage (windows end well after the respawn).
    for i in range(4, 8):
        sim.schedule_at(95 + (i - 4) * 10, lambda i=i: submit((i + 1) % N, i))
    sim.schedule_at(185, lambda: cluster.crash_node(CRASHED))
    # Phase 3: traffic broadcast while the victim is down.
    for i in range(8, 10):
        sim.schedule_at(188 + (i - 8) * 5, lambda i=i: submit((i % N + 4) % N, i))
    sim.schedule_at(195, lambda: cluster.respawn_node(CRASHED))
    # Phase 4: traffic after the recovery.
    for i in range(10, 16):
        sim.schedule_at(260 + (i - 10) * 10, lambda i=i: submit(i % N, i))

    sim.run(until=320 + 3 * 12 * 10)  # drain: 3 full TTLs
    return cluster, service, sent


class TestRecoveryDrill:
    def test_crash_respawn_recovers_and_converges(self, tmp_path):
        cluster, service, sent = run_drill(tmp_path)

        # Recovery ran from disk: snapshot restore plus log suffix.
        (recovered,) = cluster.recoveries[CRASHED]
        assert recovered.snapshot_index == 1
        assert recovered.replayed > 0
        assert recovered.last_delivered_key is not None
        assert recovered.applied_count == 4  # all of phase 1 was durable

        # All 16 commands reached everyone; replicas converged —
        # including the recovered one, whose phase-1 state came purely
        # from disk (those events had expired from the epidemic).
        assert len(sent) == 16
        assert service.converged()
        for node_id in cluster.alive_ids():
            replica = service.replica(node_id)
            commands = replica.journal
            # Zero duplicate applies: every command applied exactly once.
            assert len(commands) == len({tuple(c) for c in commands})
            assert replica.applied_count == len(sent)

        # The journal agrees: durable history = recovered + live, with
        # nothing recorded twice.
        journal = cluster.journals[CRASHED]
        assert recovered.applied_count + journal.stats.recorded == len(sent)

        # Deterministic safety on the delivery record; the recovered
        # node's post-respawn keys stay above the watermark, so
        # per-node total order holds across the restart.
        report = check_run(
            cluster.collector,
            correct_nodes=[n for n in range(N) if n != CRASHED],
        )
        assert report.safety_ok, report

    def test_recovered_node_resumes_broadcast_sequence(self, tmp_path):
        cluster, service, sent = run_drill(tmp_path)
        # The victim broadcast pre-crash and post-respawn: no
        # (source, seq) id may ever be reused across incarnations.
        ids = [event.id for event in sent]
        assert len(ids) == len(set(ids))
        (recovered,) = cluster.recoveries[CRASHED]
        victim_seqs = [e.seq for e in sent if e.source_id == CRASHED]
        assert victim_seqs  # the drill exercises both incarnations
        # Durable record kept the resume point past everything issued
        # before the crash.
        pre_crash = [s for s in victim_seqs if s < recovered.next_seq]
        assert recovered.next_seq == max(pre_crash) + 1
