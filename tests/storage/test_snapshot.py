"""Tests for the atomic snapshot store (repro.storage.snapshot)."""

from __future__ import annotations

import json

import pytest

from repro.core.errors import StorageError
from repro.storage.snapshot import SnapshotStore


class TestSaveLoad:
    def test_round_trip(self, tmp_path):
        store = SnapshotStore(tmp_path)
        saved = store.save(
            {"a": 1}, last_delivered_key=(5, 2, 1), next_seq=3, applied_count=7
        )
        loaded = SnapshotStore(tmp_path).load_latest()
        assert loaded == saved
        assert loaded.last_delivered_key == (5, 2, 1)
        assert loaded.state == {"a": 1}

    def test_empty_store_loads_none(self, tmp_path):
        assert SnapshotStore(tmp_path).load_latest() is None

    def test_none_key_round_trips(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.save([], last_delivered_key=None, next_seq=0)
        assert store.load_latest().last_delivered_key is None

    def test_indices_grow_monotonically(self, tmp_path):
        store = SnapshotStore(tmp_path, retain=10)
        for i in range(3):
            store.save(i, last_delivered_key=None, next_seq=0)
        assert store.indices() == [1, 2, 3]

    def test_non_serializable_state_rejected_and_store_unchanged(self, tmp_path):
        store = SnapshotStore(tmp_path)
        with pytest.raises(StorageError):
            store.save(object(), last_delivered_key=None, next_seq=0)
        assert store.indices() == []
        assert list(tmp_path.iterdir()) == []  # no stray temp files


class TestRetention:
    def test_save_prunes_to_retain(self, tmp_path):
        store = SnapshotStore(tmp_path, retain=2)
        for i in range(5):
            store.save(i, last_delivered_key=None, next_seq=i)
        assert store.indices() == [4, 5]
        assert store.load_latest().state == 4

    def test_retain_must_be_positive(self, tmp_path):
        with pytest.raises(StorageError):
            SnapshotStore(tmp_path, retain=0)


class TestCorruption:
    def test_corrupt_latest_falls_back_to_previous(self, tmp_path):
        store = SnapshotStore(tmp_path, retain=3)
        store.save("old", last_delivered_key=(1, 0, 0), next_seq=1)
        store.save("new", last_delivered_key=(2, 0, 0), next_seq=2)
        newest = sorted(tmp_path.glob("snap-*.json"))[-1]
        newest.write_text(newest.read_text()[:-10] + '"garbage"}')

        loaded = store.load_latest()
        assert loaded is not None
        assert loaded.state == "old"
        assert newest.name in store.rejected

    def test_crc_mismatch_detected(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.save({"k": "v"}, last_delivered_key=None, next_seq=0)
        path = sorted(tmp_path.glob("snap-*.json"))[-1]
        document = json.loads(path.read_text())
        document["body"]["state"] = {"k": "tampered"}
        path.write_text(json.dumps(document, sort_keys=True))
        assert store.load_latest() is None
        assert store.rejected == [path.name]

    def test_all_corrupt_loads_none(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.save(1, last_delivered_key=None, next_seq=0)
        for path in tmp_path.glob("snap-*.json"):
            path.write_text("not json at all")
        assert store.load_latest() is None
