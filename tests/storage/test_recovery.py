"""Tests for the recovery driver (repro.storage.recovery)."""

from __future__ import annotations

from repro.core.event import Event
from repro.smr.machine import KeyValueStore
from repro.storage.journal import DeliveryJournal
from repro.storage.log import DeliveryLog
from repro.storage.records import BroadcastMarker, DeliveryRecord
from repro.storage.recovery import LOG_SUBDIR, recover


def event(ts: int, src: int, seq: int, payload=None) -> Event:
    return Event(id=(src, seq), ts=ts, source_id=src, payload=payload)


def put(ts: int, src: int, seq: int, key: str, value) -> Event:
    # Lists, not tuples: payloads must survive the JSON round trip.
    return event(ts, src, seq, ["put", key, value])


def kv_state(machine: KeyValueStore) -> dict:
    return {key: value for key, value, _version in machine.snapshot()}


class TestBlank:
    def test_missing_directory_is_a_cold_start(self, tmp_path):
        recovered = recover(3, tmp_path / "nope", machine=KeyValueStore())
        assert recovered.blank
        assert recovered.next_seq == 0
        assert recovered.machine_state == ()

    def test_empty_directory_is_a_cold_start(self, tmp_path):
        assert recover(3, tmp_path).blank


class TestLogReplay:
    def test_log_suffix_is_applied_in_order(self, tmp_path):
        log = DeliveryLog(tmp_path / LOG_SUBDIR)
        log.append(DeliveryRecord(put(1, 2, 0, "x", 1)))
        log.append(DeliveryRecord(put(2, 5, 0, "x", 2)))
        log.append(DeliveryRecord(put(3, 2, 1, "y", 9)))
        log.close()

        machine = KeyValueStore()
        recovered = recover(2, tmp_path, machine=machine)
        assert recovered.replayed == 3
        assert recovered.deduplicated == 0
        assert kv_state(machine) == {"x": 2, "y": 9}
        assert machine.version("x") == 2  # both writes applied, in order
        assert recovered.last_delivered_key == (3, 2, 1)
        assert recovered.applied_count == 3

    def test_next_seq_from_markers_and_own_deliveries(self, tmp_path):
        log = DeliveryLog(tmp_path / LOG_SUBDIR)
        log.append(BroadcastMarker(4))  # issued but perhaps undelivered
        log.append(DeliveryRecord(put(9, 2, 2, "k", 0)))  # own source, seq 2
        log.append(DeliveryRecord(put(10, 7, 8, "k", 1)))  # other source
        log.close()

        recovered = recover(2, tmp_path)
        # max(marker 4 + 1, own delivered seq 2 + 1); node 7's seq is not ours.
        assert recovered.next_seq == 5

    def test_duplicate_log_records_deduplicated_by_order_key(self, tmp_path):
        log = DeliveryLog(tmp_path / LOG_SUBDIR)
        log.append(DeliveryRecord(put(1, 2, 0, "x", 1)))
        log.append(DeliveryRecord(put(1, 2, 0, "x", 1)))  # same key again
        log.close()
        recovered = recover(9, tmp_path, machine=KeyValueStore())
        assert recovered.replayed == 1
        assert recovered.deduplicated == 1

    def test_torn_active_tail_is_repaired_and_replay_succeeds(self, tmp_path):
        # A crash mid-write leaves a partial final frame; opening the
        # log during recovery trims it and replay proceeds cleanly on
        # everything durable before it. Never raises.
        log = DeliveryLog(tmp_path / LOG_SUBDIR)
        log.append(DeliveryRecord(put(1, 2, 0, "x", 1)))
        log.append(DeliveryRecord(put(2, 2, 1, "y", 2)))
        log.close()
        segment = log.segments()[-1]
        segment.write_bytes(segment.read_bytes()[:-5])

        machine = KeyValueStore()
        recovered = recover(2, tmp_path, machine=machine)
        assert recovered.replayed == 1
        assert kv_state(machine) == {"x": 1}
        assert recovered.last_delivered_key == (1, 2, 0)

    def test_torn_sealed_segment_stops_replay_without_raising(self, tmp_path):
        # Open-time repair only covers the active tail: damage in a
        # *sealed* segment makes the replay stop at the last valid
        # record and report everything it could not trust.
        log = DeliveryLog(tmp_path / LOG_SUBDIR, segment_max_bytes=64)
        for i in range(4):
            log.append(DeliveryRecord(put(i + 1, 2, i, f"k{i}", i)))
        log.close()
        segments = log.segments()
        assert len(segments) >= 2
        segments[0].write_bytes(segments[0].read_bytes()[:-5])

        machine = KeyValueStore()
        recovered = recover(2, tmp_path, machine=machine)
        assert recovered.replayed < 4
        assert not recovered.log_report.clean
        assert recovered.log_report.stopped_reason == "torn"
        assert recovered.log_report.segments_unread == [
            p.name for p in segments[1:]
        ]


class TestSnapshotPlusSuffix:
    def _journal_history(self, tmp_path):
        """Write a realistic history: deliveries, snapshot, more deliveries."""
        journal = DeliveryJournal(tmp_path, fsync="never")
        machine = KeyValueStore()
        first = [put(1, 0, 0, "a", 1), put(2, 1, 0, "b", 2)]
        for ev in first:
            assert journal.record_delivery(ev)
            machine.apply(ev.payload)
        journal.record_broadcast(first[0])
        journal.save_snapshot(machine.snapshot())
        suffix = [put(3, 0, 1, "a", 10), put(4, 1, 1, "c", 3)]
        for ev in suffix:
            assert journal.record_delivery(ev)
            machine.apply(ev.payload)
        journal.close()
        return machine.snapshot()

    def test_snapshot_then_suffix_replay(self, tmp_path):
        final_state = self._journal_history(tmp_path)
        machine = KeyValueStore()
        recovered = recover(0, tmp_path, machine=machine)
        assert recovered.snapshot_index == 1
        assert recovered.machine_state == final_state
        assert recovered.replayed == 2  # only the post-snapshot suffix
        assert recovered.applied_count == 4
        assert recovered.last_delivered_key == (4, 1, 1)
        assert recovered.next_seq == 2  # own delivery (0, 1) beats marker (0, 0)

    def test_recovery_without_machine_reports_counters(self, tmp_path):
        self._journal_history(tmp_path)
        recovered = recover(0, tmp_path)
        assert recovered.machine is None
        assert recovered.applied_count == 4
        assert recovered.replayed == 2
