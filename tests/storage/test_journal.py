"""Tests for the live per-node journal (repro.storage.journal)."""

from __future__ import annotations

from repro.core.event import Event
from repro.smr.machine import KeyValueStore
from repro.storage.journal import DeliveryJournal
from repro.storage.recovery import recover


def event(ts: int, src: int, seq: int, payload=None) -> Event:
    return Event(id=(src, seq), ts=ts, source_id=src, payload=payload)


class TestRecording:
    def test_fresh_journal_applies_everything(self, tmp_path):
        journal = DeliveryJournal(tmp_path, fsync="never")
        assert journal.record_delivery(event(1, 0, 0, "a"))
        assert journal.record_delivery(event(2, 1, 0, "b"))
        assert journal.stats.recorded == 2
        assert journal.stats.deduplicated == 0
        assert journal.last_delivered_key == (2, 1, 0)
        journal.close()

    def test_record_broadcast_advances_next_seq(self, tmp_path):
        journal = DeliveryJournal(tmp_path, fsync="never")
        assert journal.next_seq == 0
        journal.record_broadcast(event(5, 3, 7))
        assert journal.next_seq == 8
        assert journal.stats.markers == 1
        journal.close()

    def test_resume_watermark_filters_redeliveries(self, tmp_path):
        first = DeliveryJournal(tmp_path, fsync="never")
        for ts in range(4):
            first.record_delivery(event(ts, 0, ts, ts))
        first.close()

        recovered = recover(0, tmp_path)
        second = DeliveryJournal(tmp_path, resume=recovered, fsync="never")
        # The epidemic re-delivers pre-crash events to the blank process.
        assert not second.record_delivery(event(2, 0, 2, 2))
        assert not second.record_delivery(event(3, 0, 3, 3))
        # Genuinely new events pass.
        assert second.record_delivery(event(9, 1, 0, "new"))
        assert second.stats.deduplicated == 2
        assert second.stats.recorded == 1
        assert second.applied_count == recovered.applied_count + 1
        second.close()


class TestCheckpointing:
    def test_save_snapshot_prunes_covered_segments(self, tmp_path):
        journal = DeliveryJournal(
            tmp_path, fsync="never", segment_max_bytes=64
        )
        machine = KeyValueStore()
        for ts in range(12):
            ev = event(ts, 0, ts, ["put", str(ts), ts])
            journal.record_delivery(ev)
            machine.apply(ev.payload)
        sealed_before = len(journal.log.segments())
        assert sealed_before > 1
        snapshot = journal.save_snapshot(machine.snapshot())
        assert snapshot.applied_count == 12
        assert journal.stats.segments_pruned > 0
        assert len(journal.log.segments()) < sealed_before

        # Snapshot + remaining log still recovers the full state.
        journal.close()
        recovered = recover(0, tmp_path, machine=KeyValueStore())
        assert recovered.machine_state == machine.snapshot()
        assert recovered.applied_count == 12

    def test_two_incarnations_accumulate_exactly_once(self, tmp_path):
        machine = KeyValueStore()
        first = DeliveryJournal(tmp_path, fsync="never")
        for ts in range(3):
            ev = event(ts, 0, ts, ["put", "k", ts])
            first.record_delivery(ev)
            machine.apply(ev.payload)
        first.save_snapshot(machine.snapshot())
        first.record_delivery(event(3, 1, 0, ["put", "k2", 1]))
        first.close()  # crash point: snapshot + one-record suffix

        replacement = KeyValueStore()
        recovered = recover(0, tmp_path, machine=replacement)
        assert recovered.applied_count == 4
        assert {k: v for k, v, _ in replacement.snapshot()} == {"k": 2, "k2": 1}

        second = DeliveryJournal(tmp_path, resume=recovered, fsync="never")
        assert not second.record_delivery(event(3, 1, 0, ["put", "k2", 1]))
        assert second.record_delivery(event(4, 1, 1, ["put", "k3", 2]))
        assert second.applied_count == 5
        second.close()
