"""Deterministic sim drills: TTL-outliving outage with and without sync.

The paired acceptance scenario for the anti-entropy subsystem
(docs/SYNC.md): a node down for ~3 TTL windows can never be repaired by
live epidemic traffic, so without sync it permanently diverges, and
with sync it must converge bit-identically to the continuous survivors.
Both drills are fully deterministic, so the assertions are exact.
"""

from __future__ import annotations

import pytest

from repro.experiments.drill import run_drill
from repro.faults.schedule import FaultSchedule


@pytest.fixture(scope="module")
def synced():
    return run_drill(schedule=FaultSchedule.long_outage(), sync=True)


@pytest.fixture(scope="module")
def unsynced():
    return run_drill(schedule=FaultSchedule.long_outage(), sync=False)


class TestLongOutageWithSync:
    def test_recovered_node_converges_bit_identically(self, synced):
        assert synced.recoveries == 1
        assert synced.recovered_missing == 0
        assert synced.sequences_match is True

    def test_safety_holds_and_verdict_passes(self, synced):
        assert synced.report.safety_ok
        assert synced.exit_ok

    def test_sync_traffic_is_visible_in_metrics(self, synced):
        assert synced.sync_enabled
        assert synced.sync_rounds > 0
        assert synced.sync_sessions > 0
        assert synced.sync_chunks > 0
        assert synced.sync_repaired > 0
        assert synced.sync_bytes_fetched > 0

    def test_render_reports_the_sync_lines(self, synced):
        text = synced.render()
        assert "sync: rounds=" in text
        assert "sequences=IDENTICAL" in text
        assert "verdict: OK" in text


class TestLongOutageWithoutSync:
    def test_divergence_is_permanent_and_detected(self, unsynced):
        # The regression the subsystem exists for: every event broadcast
        # during the outage ages past the TTL while the node is down.
        assert unsynced.recoveries == 1
        assert unsynced.recovered_missing > 0
        assert unsynced.sequences_match is False

    def test_divergence_is_reported_but_not_failed(self, unsynced):
        # Without sync, post-outage divergence is the documented
        # behaviour of plain EpTO — the verdict gates survivors' safety.
        assert unsynced.report.safety_ok
        assert unsynced.exit_ok
        assert "sequences=DIVERGED" in unsynced.render()

    def test_no_sync_traffic(self, unsynced):
        assert not unsynced.sync_enabled
        assert unsynced.sync_rounds == 0
        assert unsynced.sync_repaired == 0


class TestDeterminism:
    def test_synced_drill_is_reproducible(self, synced):
        again = run_drill(schedule=FaultSchedule.long_outage(), sync=True)
        assert again.recovered_missing == synced.recovered_missing
        assert again.sequences_match == synced.sequences_match
        assert again.sync_repaired == synced.sync_repaired
        assert again.events_broadcast == synced.events_broadcast
