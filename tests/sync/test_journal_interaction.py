"""Exactly-once across sync + crash/recovery (satellite of docs/SYNC.md).

Events repaired through anti-entropy are journaled like any epidemic
delivery, so after a *subsequent* crash and recovery they must not be
re-applied — neither by a late epidemic copy nor by another sync pass.
"""

from __future__ import annotations

from repro.core.event import Event
from repro.storage.journal import DeliveryJournal
from repro.storage.recovery import recover
from repro.sync.config import SyncConfig
from repro.sync.manager import SyncManager


def event(ts: int, src: int, seq: int, payload=None) -> Event:
    return Event(id=(src, seq), ts=ts, source_id=src, payload=payload)


EVENTS = tuple(event(ts, 2, ts, {"n": ts}) for ts in range(6))

FAST = SyncConfig(interval_rounds=1.0, request_timeout_rounds=1.0)


class Sampler:
    def __init__(self, peers):
        self.peers = list(peers)

    def sample(self, k):
        return self.peers[:k]


def wire(node_id, journal, peers, registry):
    def send(dst, message):
        target = registry.get(dst)
        if target is not None:
            target.on_message(node_id, message)

    def apply(fetched):
        applied = 0
        for item in fetched:
            if journal.record_delivery(item):
                applied += 1
        return applied

    manager = SyncManager(node_id, journal, send, Sampler(peers), apply, FAST)
    registry[node_id] = manager
    return manager


class TestSyncThenRestart:
    def test_synced_events_are_not_reapplied_after_recovery(self, tmp_path):
        registry = {}
        journal_b = DeliveryJournal(tmp_path / "b", fsync="never")
        for item in EVENTS:
            journal_b.record_delivery(item)
        wire(1, journal_b, [0], registry)

        # First life of node 0: repair everything from B, then "crash"
        # without a snapshot (close flushes the log; recovery replays it).
        journal_a = DeliveryJournal(tmp_path / "a", fsync="never")
        manager_a = wire(0, journal_a, [1], registry)
        manager_a.kick()
        manager_a.on_round()
        assert manager_a.caught_up
        assert manager_a.stats.events_repaired == len(EVENTS)
        journal_a.close()

        # Second life: recover from the log, resume the journal.
        recovered = recover(0, tmp_path / "a")
        assert recovered.last_delivered_key == EVENTS[-1].order_key
        assert recovered.source_watermarks == {2: len(EVENTS) - 1}
        journal_a2 = DeliveryJournal(
            tmp_path / "a", resume=recovered, fsync="never"
        )

        # A late epidemic copy of a synced event is a duplicate.
        assert journal_a2.record_delivery(EVENTS[0]) is False
        assert journal_a2.stats.deduplicated >= 1

        # A second sync pass finds nothing to repair.
        manager_a2 = wire(0, journal_a2, [1], registry)
        manager_a2.kick()
        manager_a2.on_round()
        assert manager_a2.caught_up
        assert manager_a2.stats.events_repaired == 0
        assert manager_a2.stats.sessions_started == 0

        journal_a2.close()
        journal_b.close()

    def test_snapshot_then_sync_then_recovery_keeps_watermarks(self, tmp_path):
        registry = {}
        journal_b = DeliveryJournal(tmp_path / "b", fsync="never")
        for item in EVENTS:
            journal_b.record_delivery(item)
        wire(1, journal_b, [0], registry)

        journal_a = DeliveryJournal(tmp_path / "a", fsync="never")
        journal_a.record_delivery(event(0, 2, 0))  # partial overlap
        manager_a = wire(0, journal_a, [1], registry)
        manager_a.kick()
        manager_a.on_round()
        assert manager_a.stats.events_repaired == len(EVENTS) - 1

        # Snapshot (pruning the log), crash, recover from the snapshot.
        journal_a.save_snapshot({"app": "state"})
        journal_a.close()
        recovered = recover(0, tmp_path / "a")
        assert recovered.source_watermarks == {2: len(EVENTS) - 1}
        journal_a2 = DeliveryJournal(
            tmp_path / "a", resume=recovered, fsync="never"
        )

        # Duplicates of synced events still bounce after snapshot recovery.
        for item in EVENTS:
            assert journal_a2.record_delivery(item) is False

        manager_a2 = wire(0, journal_a2, [1], registry)
        manager_a2.kick()
        manager_a2.on_round()
        assert manager_a2.caught_up
        assert manager_a2.stats.events_repaired == 0

        journal_a2.close()
        journal_b.close()

    def test_interrupted_pull_resumes_idempotently_after_restart(self, tmp_path):
        """Crash mid-session: the partial repairs are durable and the
        next life's pull fetches only the remaining suffix."""
        registry = {}
        journal_b = DeliveryJournal(tmp_path / "b", fsync="never")
        for item in EVENTS:
            journal_b.record_delivery(item)
        wire(1, journal_b, [0], registry)

        # Apply only the first chunk by capping events per chunk and
        # dropping the follow-up request (simulates crashing mid-pull).
        import dataclasses

        config = dataclasses.replace(FAST, chunk_max_events=2)
        journal_a = DeliveryJournal(tmp_path / "a", fsync="never")
        sent = {"requests": 0}

        def send(dst, message):
            from repro.sync.protocol import SyncRequest

            if isinstance(message, SyncRequest):
                sent["requests"] += 1
                if sent["requests"] > 1:
                    return  # crash before the second request leaves
            target = registry.get(dst)
            if target is not None:
                target.on_message(0, message)

        def apply(fetched):
            return sum(1 for item in fetched if journal_a.record_delivery(item))

        manager_a = SyncManager(0, journal_a, send, Sampler([1]), apply, config)
        registry[0] = manager_a
        manager_a.kick()
        manager_a.on_round()
        assert manager_a.stats.events_repaired == 2
        journal_a.close()

        recovered = recover(0, tmp_path / "a")
        assert recovered.last_delivered_key == EVENTS[1].order_key
        journal_a2 = DeliveryJournal(
            tmp_path / "a", resume=recovered, fsync="never"
        )
        manager_a2 = wire(0, journal_a2, [1], registry)
        manager_a2.kick()
        manager_a2.on_round()

        assert manager_a2.caught_up
        # Only the remaining four events cross the wire the second time.
        assert manager_a2.stats.events_repaired == len(EVENTS) - 2
        assert journal_a2.last_delivered_key == EVENTS[-1].order_key
        journal_a2.close()
        journal_b.close()
