"""Digest correctness: watermarks, range reads, snapshot round-trip."""

from __future__ import annotations

import pytest

from repro.core.errors import StorageError
from repro.core.event import Event
from repro.storage.journal import DeliveryJournal
from repro.storage.recovery import recover
from repro.storage.snapshot import SnapshotStore
from repro.sync.protocol import (
    DeliveryDigest,
    event_wire_cost,
    events_checksum,
    freeze_watermarks,
)


def event(ts: int, src: int, seq: int, payload=None) -> Event:
    return Event(id=(src, seq), ts=ts, source_id=src, payload=payload)


class TestDeliveryDigest:
    def test_empty_is_never_behind_empty(self):
        empty = DeliveryDigest(last_key=None)
        assert not empty.behind(empty)

    def test_empty_is_behind_any_progress(self):
        empty = DeliveryDigest(last_key=None)
        ahead = DeliveryDigest(last_key=(5, 1, 0))
        assert empty.behind(ahead)
        assert not ahead.behind(empty)

    def test_strict_key_comparison(self):
        a = DeliveryDigest(last_key=(5, 1, 0))
        b = DeliveryDigest(last_key=(5, 2, 0))
        same = DeliveryDigest(last_key=(5, 1, 0))
        assert a.behind(b)
        assert not b.behind(a)
        assert not a.behind(same)

    def test_of_freezes_watermarks_sorted(self):
        digest = DeliveryDigest.of((9, 3, 1), {3: 1, 1: 7})
        assert digest.watermarks == ((1, 7), (3, 1))
        assert digest.as_mapping() == {1: 7, 3: 1}

    def test_freeze_watermarks_is_canonical(self):
        assert freeze_watermarks({2: 5, 0: 1}) == ((0, 1), (2, 5))
        assert freeze_watermarks({}) == ()


class TestChecksum:
    def test_checksum_is_deterministic_and_order_sensitive(self):
        events = [event(1, 0, 0, "a"), event(2, 1, 0, {"k": [1, 2]})]
        assert events_checksum(events) == events_checksum(list(events))
        assert events_checksum(events) != events_checksum(events[::-1])
        assert events_checksum([]) == 0

    def test_checksum_covers_payload_bytes(self):
        assert events_checksum([event(1, 0, 0, "a")]) != events_checksum(
            [event(1, 0, 0, "b")]
        )

    def test_wire_cost_counts_framing_plus_payload(self):
        small = event_wire_cost(event(1, 0, 0, None))
        larger = event_wire_cost(event(1, 0, 0, "x" * 100))
        assert larger > small > 0

    def test_unencodable_payload_rejected(self):
        with pytest.raises(StorageError):
            event_wire_cost(event(1, 0, 0, object()))


class TestJournalWatermarks:
    def test_watermarks_track_highest_seq_per_source(self, tmp_path):
        journal = DeliveryJournal(tmp_path, fsync="never")
        journal.record_delivery(event(1, 0, 0))
        journal.record_delivery(event(2, 1, 0))
        journal.record_delivery(event(3, 0, 1))
        assert journal.source_watermarks == {0: 1, 1: 0}
        journal.close()

    def test_delivered_after_yields_strict_suffix(self, tmp_path):
        journal = DeliveryJournal(tmp_path, fsync="never")
        for ts in range(5):
            journal.record_delivery(event(ts, 0, ts, ts))
        keys = [e.order_key for e in journal.delivered_after((2, 0, 2))]
        assert keys == [(3, 0, 3), (4, 0, 4)]
        all_keys = [e.order_key for e in journal.delivered_after(None)]
        assert all_keys == [(ts, 0, ts) for ts in range(5)]
        assert list(journal.delivered_after((99, 0, 0))) == []
        journal.close()

    def test_watermarks_survive_crash_recovery_via_log(self, tmp_path):
        journal = DeliveryJournal(tmp_path, fsync="never")
        journal.record_delivery(event(1, 0, 0))
        journal.record_delivery(event(2, 3, 0))
        journal.record_delivery(event(4, 3, 1))
        journal.close()

        recovered = recover(0, tmp_path)
        assert recovered.source_watermarks == {0: 0, 3: 1}
        resumed = DeliveryJournal(tmp_path, resume=recovered, fsync="never")
        assert resumed.source_watermarks == {0: 0, 3: 1}
        resumed.close()

    def test_watermarks_survive_snapshot_recovery(self, tmp_path):
        journal = DeliveryJournal(tmp_path, fsync="never", segment_max_bytes=64)
        for ts in range(6):
            journal.record_delivery(event(ts, ts % 2, ts // 2, ts))
        journal.save_snapshot({"state": "s"})
        journal.close()

        recovered = recover(0, tmp_path)
        assert recovered.source_watermarks == {0: 2, 1: 2}
        resumed = DeliveryJournal(tmp_path, resume=recovered, fsync="never")
        assert resumed.source_watermarks == {0: 2, 1: 2}
        resumed.close()


class TestSnapshotCompat:
    def test_snapshot_roundtrips_source_watermarks(self, tmp_path):
        store = SnapshotStore(tmp_path)
        saved = store.save(
            state={"x": 1},
            last_delivered_key=(3, 1, 0),
            next_seq=2,
            applied_count=4,
            source_watermarks={1: 0, 0: 2},
        )
        assert saved.source_watermarks == {0: 2, 1: 0}
        assert store.load_latest().source_watermarks == {0: 2, 1: 0}

    def test_pre_sync_snapshot_reads_as_empty_watermarks(self, tmp_path):
        import json
        import zlib

        store = SnapshotStore(tmp_path)
        store.save(
            state={}, last_delivered_key=(3, 1, 0), next_seq=2, applied_count=4
        )
        path = sorted(tmp_path.glob("snap-*.json"))[-1]
        document = json.loads(path.read_text())
        # Simulate a snapshot written before the watermark field existed.
        body = document["body"]
        body.pop("source_watermarks", None)
        encoded = json.dumps(body, sort_keys=True)
        path.write_text(
            json.dumps({"crc": zlib.crc32(encoded.encode()), "body": body})
        )

        fresh = SnapshotStore(tmp_path)
        assert fresh.load_latest().source_watermarks == {}
