"""Asyncio runtime: post-recovery catch-up under loss and corruption.

Real miniature clusters on the event loop (round_interval in ms), so
each scenario takes a second or two. The faults are injected
deterministically — the first SYNC_CHUNK to the victim is dropped
(exercising the request timeout + retry path) and the second is
corrupted (exercising the checksum + re-request path) — so the
assertions on the retry machinery are exact, not probabilistic.
"""

from __future__ import annotations

import asyncio
import dataclasses

from repro.core import EpToConfig
from repro.runtime import AsyncCluster, AsyncNetwork
from repro.sync.config import SyncConfig
from repro.sync.protocol import SyncChunk

VICTIM = 1
N = 6


def run(coro):
    return asyncio.run(coro)


def small_config(**overrides):
    defaults = dict(fanout=3, ttl=5, round_interval=25, clock="logical")
    defaults.update(overrides)
    return EpToConfig(**defaults)


def sync_config():
    return SyncConfig(
        interval_rounds=2.0,
        request_timeout_rounds=2.0,
        max_retries=8,
        catch_up_rounds=80.0,
    )


async def outage_past_the_ttl(cluster):
    """Broadcast, crash the victim, broadcast more, drain past the TTL.

    Returns once every live node delivered all five events and nothing
    is in flight any more — the victim's gap is then unrepairable by
    epidemic traffic alone.
    """
    cluster.add_nodes(N)
    cluster.start_all()
    cluster.nodes[0].broadcast("a")
    cluster.nodes[2].broadcast("b")
    assert await cluster.wait_for_deliveries(2, timeout=10.0)

    cluster.crash_node(VICTIM)
    cluster.nodes[0].broadcast("c")
    cluster.nodes[3].broadcast("d")
    cluster.nodes[4].broadcast("e")
    assert await cluster.wait_for_deliveries(5, timeout=10.0)
    # Let every relay window close: > 2 TTLs of quiet rounds.
    await asyncio.sleep(2 * 5 * 0.025 + 0.15)


class TestAsyncCatchUp:
    def test_catch_up_converges_under_chunk_loss_and_corruption(self, tmp_path):
        async def scenario():
            network = AsyncNetwork(seed=5)
            cluster = AsyncCluster(
                small_config(),
                network=network,
                seed=5,
                storage_dir=tmp_path,
                sync=sync_config(),
            )
            await outage_past_the_ttl(cluster)

            # Fault injection on the repair path itself: lose the first
            # chunk, corrupt the second, then let everything through.
            faults = {"dropped": 0, "corrupted": 0}
            clean_send = network.send

            def faulty_send(src, dst, message):
                if dst == VICTIM and isinstance(message, SyncChunk):
                    if faults["dropped"] == 0:
                        faults["dropped"] += 1
                        return
                    if faults["corrupted"] == 0:
                        faults["corrupted"] += 1
                        message = dataclasses.replace(
                            message, checksum=message.checksum ^ 0xDEAD
                        )
                clean_send(src, dst, message)

            network.send = faulty_send

            node = await cluster.respawn_node(VICTIM)
            manager = node.sync_manager
            caught_up = manager.caught_up
            stats = dataclasses.replace(manager.stats)
            network.send = clean_send

            node.start()
            converged = await cluster.wait_until(
                lambda: all(
                    len(cluster.deliveries[n]) >= 5 for n in range(N)
                ),
                timeout=5.0,
            )
            await cluster.stop_all()
            payloads = cluster.delivery_payload_sequences()
            watermarks = {
                n: dict(cluster.journals[n].source_watermarks) for n in range(N)
            }
            return faults, caught_up, stats, converged, payloads, watermarks

        faults, caught_up, stats, converged, payloads, watermarks = run(
            scenario()
        )

        # Both injected faults actually fired, and the retry machinery
        # absorbed them: a timeout for the lost chunk, a checksum
        # failure for the corrupted one, a retry for each.
        assert faults == {"dropped": 1, "corrupted": 1}
        assert stats.timeouts >= 1
        assert stats.checksum_failures == 1
        assert stats.retries >= 2
        assert stats.sessions_completed >= 1

        # The blocking catch-up repaired the full gap before the round
        # loop started, and the traffic is visible in the metrics.
        assert caught_up
        assert stats.events_repaired == 3
        assert stats.bytes_fetched > 0
        assert stats.chunks_received >= 1

        # Full convergence: every node — victim included — delivered
        # the same five payloads in the same order.
        assert converged
        assert len({tuple(seq) for seq in payloads.values()}) == 1
        assert len(payloads[VICTIM]) == 5
        assert len({tuple(sorted(w.items())) for w in watermarks.values()}) == 1

    def test_without_sync_the_gap_is_permanent(self, tmp_path):
        async def scenario():
            cluster = AsyncCluster(
                small_config(),
                seed=5,
                storage_dir=tmp_path,
            )
            await outage_past_the_ttl(cluster)

            node = await cluster.respawn_node(VICTIM)
            assert node.sync_manager is None
            node.start()
            # Give live gossip ample time to (not) fill the gap.
            await asyncio.sleep(10 * 0.025 * 5)
            await cluster.stop_all()
            return cluster.delivery_payload_sequences()

        payloads = run(scenario())
        survivors = {
            tuple(seq) for n, seq in payloads.items() if n != VICTIM
        }
        assert survivors == {("a", "b", "c", "d", "e")}
        # The regression docs/SYNC.md exists to fix: without
        # anti-entropy the recovered node never sees c, d, e.
        assert tuple(payloads[VICTIM]) == ("a", "b")
