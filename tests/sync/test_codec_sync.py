"""Wire codec coverage for the anti-entropy message kinds."""

from __future__ import annotations

import pytest

from repro.core.event import Event
from repro.runtime.codec import CodecError, decode, encode
from repro.sync.protocol import (
    DeliveryDigest,
    SyncChunk,
    SyncDigest,
    SyncRequest,
    events_checksum,
)


def event(ts: int, src: int, seq: int, payload=None) -> Event:
    return Event(id=(src, seq), ts=ts, source_id=src, payload=payload)


class TestDigestRoundtrip:
    def test_probe_with_watermarks(self):
        message = SyncDigest(
            DeliveryDigest(last_key=(9, 2, 1), watermarks=((0, 4), (2, 1))),
            reply=True,
        )
        sender, decoded = decode(encode(5, message))
        assert sender == 5
        assert decoded == message

    def test_empty_digest_answer(self):
        message = SyncDigest(DeliveryDigest(last_key=None), reply=False)
        _, decoded = decode(encode(1, message))
        assert decoded == message
        assert decoded.digest.last_key is None

    def test_negative_timestamp_key(self):
        message = SyncDigest(DeliveryDigest(last_key=(-3, 7, 0)))
        _, decoded = decode(encode(0, message))
        assert decoded.digest.last_key == (-3, 7, 0)


class TestRequestRoundtrip:
    def test_full_request(self):
        message = SyncRequest(
            req_id=42,
            after=(7, 1, 3),
            watermarks=((1, 3), (4, 0)),
            max_events=17,
            max_bytes=9_000,
        )
        sender, decoded = decode(encode(3, message))
        assert sender == 3
        assert decoded == message

    def test_from_the_beginning(self):
        message = SyncRequest(req_id=1, after=None)
        _, decoded = decode(encode(0, message))
        assert decoded.after is None
        assert decoded.watermarks == ()


class TestChunkRoundtrip:
    def test_chunk_with_events_and_checksum(self):
        events = (
            event(1, 0, 0, {"k": [1, 2]}),
            event(2, 3, 0, "héllo ✓"),
            event(2, 4, 0, None),
        )
        message = SyncChunk(
            req_id=9,
            events=events,
            checksum=events_checksum(events),
            more=True,
            peer_last=(5, 1, 0),
        )
        sender, decoded = decode(encode(4, message))
        assert sender == 4
        assert decoded == message
        assert events_checksum(decoded.events) == decoded.checksum

    def test_empty_final_chunk(self):
        message = SyncChunk(
            req_id=3, events=(), checksum=0, more=False, peer_last=None
        )
        _, decoded = decode(encode(0, message))
        assert decoded == message

    def test_checksum_survives_the_wire_bit_exactly(self):
        # The CRC is computed over the same canonical bytes the codec
        # writes, so a decode of an honest datagram always verifies.
        events = (event(10, 2, 5, {"z": "payload", "a": 1}),)
        message = SyncChunk(
            req_id=1, events=events, checksum=events_checksum(events)
        )
        _, decoded = decode(encode(2, message))
        assert events_checksum(decoded.events) == decoded.checksum


class TestMalformedDatagrams:
    def build(self, message) -> bytes:
        return encode(1, message)

    @pytest.mark.parametrize(
        "message",
        [
            SyncDigest(DeliveryDigest(last_key=(1, 2, 3), watermarks=((0, 1),))),
            SyncRequest(req_id=7, after=(1, 2, 3), watermarks=((0, 1),)),
            SyncChunk(
                req_id=7,
                events=(event(1, 0, 0, "x"),),
                checksum=events_checksum([event(1, 0, 0, "x")]),
            ),
        ],
        ids=["digest", "request", "chunk"],
    )
    def test_truncation_at_any_point_is_rejected(self, message):
        datagram = self.build(message)
        for cut in range(1, len(datagram)):
            with pytest.raises(CodecError):
                decode(datagram[:cut])

    @pytest.mark.parametrize(
        "message",
        [
            SyncDigest(DeliveryDigest(last_key=(1, 2, 3))),
            SyncRequest(req_id=7, after=None),
            SyncChunk(req_id=7, events=(), checksum=0),
        ],
        ids=["digest", "request", "chunk"],
    )
    def test_trailing_garbage_is_rejected(self, message):
        with pytest.raises(CodecError):
            decode(self.build(message) + b"\x00")
