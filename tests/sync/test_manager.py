"""SyncManager state machine: probes, pull sessions, loss, corruption.

These tests wire two (or more) real managers over a synchronous in-test
router: ``send`` delivers straight into the peer's ``on_message``, so a
single ``on_round`` call runs an entire digest/pull/confirm exchange
re-entrantly and deterministically. Loss and corruption are injected by
the router's drop/transform hooks.
"""

from __future__ import annotations

import dataclasses

from repro.core.event import Event
from repro.storage.journal import DeliveryJournal
from repro.sync.config import SyncConfig
from repro.sync.manager import SyncManager
from repro.sync.protocol import SyncChunk, SyncRequest, events_checksum


def event(ts: int, src: int, seq: int, payload=None) -> Event:
    return Event(id=(src, seq), ts=ts, source_id=src, payload=payload)


EVENTS = tuple(event(ts, 0, ts, {"n": ts}) for ts in range(5))

FAST = SyncConfig(
    interval_rounds=1.0,
    request_timeout_rounds=1.0,
    max_retries=3,
    backoff_factor=1.0,
)


class Sampler:
    """Peer-sampling stub: returns canned views, in order if several."""

    def __init__(self, *views):
        self.views = list(views)

    def sample(self, k):
        view = self.views.pop(0) if len(self.views) > 1 else self.views[0]
        return list(view)[:k]


class Router:
    """Synchronous message fabric with drop/transform fault hooks."""

    def __init__(self):
        self.managers = {}
        self.drop = lambda src, dst, message: False
        self.transform = lambda src, dst, message: message

    def sender(self, src):
        def send(dst, message):
            message = self.transform(src, dst, message)
            if message is None or self.drop(src, dst, message):
                return
            target = self.managers.get(dst)
            if target is not None:
                target.on_message(src, message)

        return send

    def node(self, tmp_path, node_id, peers, config=FAST, events=()):
        journal = DeliveryJournal(tmp_path / f"n{node_id}", fsync="never")
        for item in events:
            journal.record_delivery(item)

        def apply(fetched):
            applied = 0
            for item in fetched:
                if journal.record_delivery(item):
                    applied += 1
            return applied

        manager = SyncManager(
            node_id,
            journal,
            self.sender(node_id),
            Sampler(peers) if not isinstance(peers, Sampler) else peers,
            apply,
            config,
        )
        self.managers[node_id] = manager
        return manager


def drop_chunks_to(router, dst, count):
    """Drop the first ``count`` SYNC_CHUNKs addressed to ``dst``."""
    remaining = {"n": count}

    def drop(src, to, message):
        if to == dst and isinstance(message, SyncChunk) and remaining["n"] != 0:
            remaining["n"] -= 1
            return True
        return False

    router.drop = drop


class TestPullSession:
    def test_full_pull_converges_in_one_round(self, tmp_path):
        router = Router()
        a = router.node(tmp_path, 0, [1])
        b = router.node(tmp_path, 1, [0], events=EVENTS)

        a.kick()
        a.on_round()

        assert a.caught_up
        assert a.journal.last_delivered_key == b.journal.last_delivered_key
        assert a.stats.sessions_started == a.stats.sessions_completed == 1
        assert a.stats.events_repaired == len(EVENTS)
        assert a.stats.bytes_fetched > 0
        # Initial probe plus the post-session confirmation probe.
        assert a.stats.probes_sent == 2
        assert b.stats.requests_served == 1
        assert b.stats.events_served == len(EVENTS)

    def test_pagination_walks_the_suffix_in_chunks(self, tmp_path):
        router = Router()
        config = dataclasses.replace(FAST, chunk_max_events=2)
        a = router.node(tmp_path, 0, [1], config=config)
        b = router.node(tmp_path, 1, [0], config=config, events=EVENTS)

        a.kick()
        a.on_round()

        assert a.caught_up
        assert a.stats.events_repaired == len(EVENTS)
        # 5 events in chunks of 2 → three request/chunk pairs.
        assert a.stats.requests_sent == 3
        assert a.stats.chunks_received == 3
        assert b.stats.chunks_sent == 3

    def test_push_pull_repairs_the_probed_peers_gap(self, tmp_path):
        router = Router()
        a = router.node(tmp_path, 0, [1], events=EVENTS)
        b = router.node(tmp_path, 1, [0])

        # A (ahead) probes B (behind): B must answer *and* pull from A.
        a.kick()
        a.on_round()

        assert b.caught_up
        assert b.journal.last_delivered_key == a.journal.last_delivered_key
        assert b.stats.sessions_completed == 1
        assert b.stats.events_repaired == len(EVENTS)
        assert a.stats.requests_served == 1
        assert a.stats.sessions_started == 0

    def test_already_converged_exchange_just_marks_caught_up(self, tmp_path):
        router = Router()
        a = router.node(tmp_path, 0, [1], events=EVENTS)
        router.node(tmp_path, 1, [0], events=EVENTS)

        a.kick()
        a.on_round()

        assert a.caught_up
        assert a.stats.sessions_started == 0
        assert a.stats.events_repaired == 0


class TestLossAndRetry:
    def test_lost_chunk_times_out_and_retries(self, tmp_path):
        router = Router()
        a = router.node(tmp_path, 0, [1])
        b = router.node(tmp_path, 1, [0], events=EVENTS)
        drop_chunks_to(router, 0, 1)

        a.kick()
        a.on_round()  # probe, session start, first chunk lost
        assert a.session_active
        a.on_round()  # timeout → retry → chunk delivered → confirm

        assert a.caught_up
        assert a.stats.timeouts == 1
        assert a.stats.retries == 1
        assert a.stats.sessions_completed == 1
        assert a.stats.events_repaired == len(EVENTS)
        assert b.stats.requests_served == 2

    def test_backoff_stretches_the_retry_timeout(self, tmp_path):
        router = Router()
        config = dataclasses.replace(FAST, backoff_factor=2.0)
        a = router.node(tmp_path, 0, [1], config=config)
        router.node(tmp_path, 1, [0], config=config, events=EVENTS)
        drop_chunks_to(router, 0, 2)

        a.kick()
        a.on_round()  # chunk 1 lost
        a.on_round()  # 1 round waited → timeout 1, retry 1 (chunk 2 lost)
        a.on_round()  # backoff doubled the window: not yet a timeout
        assert a.stats.timeouts == 1
        assert a.stats.retries == 1
        a.on_round()  # 2 rounds waited → timeout 2, retry 2 → success

        assert a.caught_up
        assert a.stats.timeouts == 2
        assert a.stats.retries == 2
        assert a.stats.events_repaired == len(EVENTS)

    def test_session_aborts_after_max_retries(self, tmp_path):
        router = Router()
        config = dataclasses.replace(FAST, max_retries=1)
        a = router.node(tmp_path, 0, [1], config=config)
        router.node(tmp_path, 1, [0], config=config, events=EVENTS)
        drop_chunks_to(router, 0, -1)  # drop every chunk

        a.kick()
        a.on_round()  # chunk lost
        a.on_round()  # timeout → retry (lost again)
        a.on_round()  # timeout → retries exhausted → abort

        assert not a.session_active
        assert not a.caught_up
        assert a.stats.sessions_aborted == 1
        assert a.stats.retries == 1
        assert a.stats.timeouts == 2
        assert a.stats.events_repaired == 0

        # The next round starts over with a fresh probe and converges.
        router.drop = lambda src, dst, message: False
        a.on_round()
        assert a.caught_up
        assert a.stats.events_repaired == len(EVENTS)

    def test_probe_timeout_reprobes_a_fresh_peer(self, tmp_path):
        router = Router()
        config = dataclasses.replace(FAST, request_timeout_rounds=2.0)
        sampler = Sampler([9], [1])  # first sample: a dead peer
        a = router.node(tmp_path, 0, sampler, config=config)
        router.node(tmp_path, 1, [0], config=config, events=EVENTS)

        a.kick()
        a.on_round()  # probe node 9 → silence
        a.on_round()
        a.on_round()  # timeout → re-probe node 1 → converge

        assert a.caught_up
        assert a.stats.probe_timeouts == 1
        assert a.stats.events_repaired == len(EVENTS)

    def test_empty_peer_view_stays_idle(self, tmp_path):
        router = Router()
        a = router.node(tmp_path, 0, [])
        a.kick()
        for _ in range(3):
            a.on_round()
        assert a.stats.probes_sent == 0
        assert not a.session_active


class TestCorruptionAndStaleness:
    def test_checksum_failure_re_requests_the_cursor(self, tmp_path):
        router = Router()
        a = router.node(tmp_path, 0, [1])
        router.node(tmp_path, 1, [0], events=EVENTS)
        tampered = {"n": 0}

        def transform(src, dst, message):
            if dst == 0 and isinstance(message, SyncChunk) and tampered["n"] == 0:
                tampered["n"] += 1
                return dataclasses.replace(message, checksum=message.checksum ^ 0xFF)
            return message

        router.transform = transform

        a.kick()
        a.on_round()  # corrupt chunk → immediate re-request → clean chunk

        assert a.caught_up
        assert a.stats.checksum_failures == 1
        assert a.stats.retries == 1
        assert a.stats.events_repaired == len(EVENTS)
        assert a.journal.last_delivered_key == EVENTS[-1].order_key

    def test_unsolicited_chunk_is_stale(self, tmp_path):
        router = Router()
        a = router.node(tmp_path, 0, [1])
        bogus = SyncChunk(
            req_id=99, events=EVENTS, checksum=events_checksum(EVENTS)
        )
        assert a.on_message(1, bogus) is True
        assert a.stats.stale_chunks == 1
        assert a.journal.last_delivered_key is None

    def test_non_sync_message_falls_through(self, tmp_path):
        router = Router()
        a = router.node(tmp_path, 0, [1])
        assert a.on_message(1, object()) is False


class TestResponder:
    def test_request_watermarks_filter_served_events(self, tmp_path):
        router = Router()
        served = []
        b = router.node(
            tmp_path,
            1,
            [0],
            events=(event(0, 0, 0), event(1, 0, 1), event(2, 1, 0)),
        )
        router.managers[0] = type(
            "Sink", (), {"on_message": lambda self, src, msg: served.append(msg)}
        )()

        b.on_message(0, SyncRequest(req_id=5, after=None, watermarks=((0, 1),)))

        assert len(served) == 1
        chunk = served[0]
        assert [e.order_key for e in chunk.events] == [(2, 1, 0)]
        assert chunk.more is False
        assert chunk.peer_last == (2, 1, 0)
        assert b.stats.events_served == 1
