"""Tests for the trace-replay workload (repro.workloads.replay)."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError
from repro.metrics.collector import DeliveryCollector
from repro.metrics.trace import export_trace, load_trace
from repro.workloads import ProbabilisticWorkload, TraceReplayWorkload

from ..conftest import build_small_world


def record_source_run(n=8, seed=41):
    world = build_small_world(n=n, seed=seed)
    ProbabilisticWorkload(world.sim, world.cluster, rate=0.3, rounds=3)
    world.quiesce()
    return world


class TestReplay:
    def test_replays_every_broadcast(self):
        source = record_source_run()
        target = build_small_world(n=8, seed=99)
        workload = TraceReplayWorkload(
            target.sim, target.cluster, source.cluster.collector
        )
        target.quiesce(extra_rounds=15)
        assert workload.stats.replayed == source.cluster.collector.broadcast_count
        assert (
            target.cluster.collector.broadcast_count
            == source.cluster.collector.broadcast_count
        )

    def test_preserves_relative_timing(self):
        source = record_source_run()
        target = build_small_world(n=8, seed=99)
        TraceReplayWorkload(target.sim, target.cluster, source.cluster.collector)
        target.quiesce(extra_rounds=15)
        source_times = sorted(
            rec.time for rec in source.cluster.collector.broadcasts()
        )
        target_times = sorted(
            rec.time for rec in target.cluster.collector.broadcasts()
        )
        source_gaps = [b - a for a, b in zip(source_times, source_times[1:])]
        target_gaps = [b - a for a, b in zip(target_times, target_times[1:])]
        assert source_gaps == target_gaps

    def test_event_map_links_replayed_to_original(self):
        source = record_source_run()
        target = build_small_world(n=8, seed=99)
        workload = TraceReplayWorkload(
            target.sim, target.cluster, source.cluster.collector
        )
        target.quiesce(extra_rounds=15)
        originals = {rec.event.id for rec in source.cluster.collector.broadcasts()}
        assert set(workload.event_map.values()) == originals

    def test_missing_sources_get_stand_ins(self):
        source = record_source_run(n=8)
        target = build_small_world(n=4, seed=99)  # fewer nodes than source
        workload = TraceReplayWorkload(
            target.sim, target.cluster, source.cluster.collector
        )
        target.quiesce(extra_rounds=15)
        assert workload.stats.replayed == workload.stats.scheduled
        assert workload.stats.resourced > 0

    def test_replayed_run_still_totally_ordered(self):
        source = record_source_run()
        target = build_small_world(n=8, seed=99, loss_rate=0.05)
        TraceReplayWorkload(target.sim, target.cluster, source.cluster.collector)
        target.quiesce(extra_rounds=20)
        report = target.spec_report()
        assert report.safety_ok and report.agreement_ok

    def test_replay_from_exported_trace_file(self, tmp_path):
        source = record_source_run()
        path = tmp_path / "run.jsonl"
        export_trace(source.cluster.collector, path)
        target = build_small_world(n=8, seed=99)
        workload = TraceReplayWorkload(target.sim, target.cluster, load_trace(path))
        target.quiesce(extra_rounds=15)
        assert workload.stats.replayed == source.cluster.collector.broadcast_count

    def test_empty_source_rejected(self):
        target = build_small_world(n=4)
        with pytest.raises(ConfigurationError):
            TraceReplayWorkload(target.sim, target.cluster, DeliveryCollector())
