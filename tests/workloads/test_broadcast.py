"""Tests for workload generators (repro.workloads.broadcast)."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError
from repro.workloads.broadcast import (
    FixedCountWorkload,
    ProbabilisticWorkload,
    broadcast_burst,
)

from ..conftest import build_small_world


class TestProbabilisticWorkload:
    def test_generates_roughly_rate_times_population(self):
        world = build_small_world(n=20)
        workload = ProbabilisticWorkload(
            world.sim, world.cluster, rate=0.5, rounds=10
        )
        world.run_rounds(12)
        assert workload.finished
        # E[events] = 20 * 0.5 * 10 = 100; generous tolerance.
        assert 60 <= workload.stats.events <= 140
        assert workload.stats.events == world.cluster.collector.broadcast_count

    def test_stops_after_configured_rounds(self):
        world = build_small_world(n=5)
        workload = ProbabilisticWorkload(world.sim, world.cluster, rate=1.0, rounds=3)
        world.run_rounds(20)
        assert workload.stats.rounds == 3
        assert workload.stats.events == 15

    def test_start_offset_respected(self):
        world = build_small_world(n=5)
        start = 5 * world.config.round_interval
        ProbabilisticWorkload(
            world.sim, world.cluster, rate=1.0, rounds=1, start=start
        )
        world.run_rounds(3)
        assert world.cluster.collector.broadcast_count == 0
        world.run_rounds(4)
        assert world.cluster.collector.broadcast_count == 5

    def test_payload_factory_receives_index(self):
        world = build_small_world(n=3)
        ProbabilisticWorkload(
            world.sim,
            world.cluster,
            rate=1.0,
            rounds=1,
            payload_factory=lambda i: f"event-{i}",
        )
        world.run_rounds(2)
        payloads = {
            rec.event.payload for rec in world.cluster.collector.broadcasts()
        }
        assert payloads == {"event-0", "event-1", "event-2"}

    @pytest.mark.parametrize("rate", [0.0, 1.5, -0.2])
    def test_invalid_rate_rejected(self, rate):
        world = build_small_world(n=3)
        with pytest.raises(ConfigurationError):
            ProbabilisticWorkload(world.sim, world.cluster, rate=rate, rounds=1)

    def test_invalid_rounds_rejected(self):
        world = build_small_world(n=3)
        with pytest.raises(ConfigurationError):
            ProbabilisticWorkload(world.sim, world.cluster, rate=0.5, rounds=0)


class TestFixedCountWorkload:
    def test_exact_count(self):
        world = build_small_world(n=6)
        workload = FixedCountWorkload(world.sim, world.cluster, count=7)
        world.run_rounds(15)
        assert workload.stats.events == 7
        assert world.cluster.collector.broadcast_count == 7

    def test_one_event_per_period(self):
        world = build_small_world(n=6)
        FixedCountWorkload(world.sim, world.cluster, count=3)
        world.run_rounds(2)
        assert world.cluster.collector.broadcast_count == 2

    def test_invalid_count_rejected(self):
        world = build_small_world(n=3)
        with pytest.raises(ConfigurationError):
            FixedCountWorkload(world.sim, world.cluster, count=0)


class TestBroadcastBurst:
    def test_burst_count_and_concurrency(self):
        world = build_small_world(n=8)
        events = broadcast_burst(world.cluster, 5)
        assert len(events) == 5
        assert world.cluster.collector.broadcast_count == 5
        # All created at the same simulation instant.
        times = {rec.time for rec in world.cluster.collector.broadcasts()}
        assert len(times) == 1

    def test_burst_events_eventually_totally_ordered(self):
        world = build_small_world(n=8)
        broadcast_burst(world.cluster, 4)
        world.quiesce()
        report = world.spec_report()
        assert report.safety_ok and report.agreement_ok
        assert world.cluster.collector.delivery_count == 4 * 8


class TestPoissonWorkload:
    def test_generates_roughly_rate_times_duration(self):
        from repro.workloads import PoissonWorkload

        world = build_small_world(n=10)
        duration = 200 * world.config.round_interval
        workload = PoissonWorkload(
            world.sim, world.cluster, rate=0.01, duration=duration
        )
        world.sim.run(until=duration + 1000)
        # E[events] = 0.01 * 25000 = 250; generous tolerance.
        assert 150 <= workload.stats.events <= 350

    def test_stops_after_duration(self):
        from repro.workloads import PoissonWorkload

        world = build_small_world(n=5)
        workload = PoissonWorkload(
            world.sim, world.cluster, rate=0.05, duration=1000
        )
        world.sim.run(until=1200)
        at_deadline = workload.stats.events
        world.sim.run(until=20_000)
        assert workload.stats.events == at_deadline

    def test_invalid_parameters_rejected(self):
        from repro.workloads import PoissonWorkload

        world = build_small_world(n=3)
        with pytest.raises(ConfigurationError):
            PoissonWorkload(world.sim, world.cluster, rate=0.0, duration=10)
        with pytest.raises(ConfigurationError):
            PoissonWorkload(world.sim, world.cluster, rate=0.1, duration=0)

    def test_events_eventually_totally_ordered(self):
        from repro.workloads import PoissonWorkload

        world = build_small_world(n=8)
        PoissonWorkload(
            world.sim, world.cluster, rate=0.01,
            duration=5 * world.config.round_interval,
        )
        world.quiesce(extra_rounds=15)
        report = world.spec_report()
        assert report.safety_ok and report.agreement_ok
