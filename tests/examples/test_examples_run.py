"""Every example script must run to completion, as a subprocess.

Examples are documentation that executes; this keeps them from rotting.
Each script carries its own assertions (identical orders, convergence,
zero holes), so a zero exit status means the demonstrated property
actually held.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_found():
    assert EXAMPLES_DIR.is_dir()
    assert len(SCRIPTS) >= 7


@pytest.mark.parametrize(
    "script", SCRIPTS, ids=[script.stem for script in SCRIPTS]
)
def test_example_runs_clean(script: Path):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, (
        f"{script.name} failed\nstdout:\n{result.stdout}\n"
        f"stderr:\n{result.stderr}"
    )
    assert result.stdout.strip(), f"{script.name} printed nothing"
