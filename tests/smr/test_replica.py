"""Tests for replication over EpTO (repro.smr.replica)."""

from __future__ import annotations

import pytest

from repro.broadcast.balls_bins import BallsBinsProcess
from repro.core.errors import MembershipError
from repro.sim import ChurnDriver
from repro.smr import AppendLog, Counter, KeyValueStore, Replica, ReplicatedService

from ..conftest import build_small_world, make_event


class TestReplica:
    def test_applies_payload_as_command(self):
        replica = Replica(0, Counter())
        replica.on_deliver(make_event(payload=("add", 3)))
        replica.on_deliver(make_event(seq=1, payload=("add", 4)))
        assert replica.machine.value == 7
        assert replica.applied_count == 2
        assert replica.last_result == 7

    def test_journal_opt_in(self):
        replica = Replica(0, AppendLog(), journal_commands=True)
        replica.on_deliver(make_event(payload="x"))
        assert replica.journal == ["x"]
        bare = Replica(1, AppendLog())
        with pytest.raises(MembershipError):
            bare.journal


class TestReplicatedService:
    def test_replicas_converge_after_quiescence(self):
        world = build_small_world(n=8)
        service = ReplicatedService(world.cluster, KeyValueStore)
        service.submit(0, ("put", "a", 1))
        service.submit(3, ("put", "a", 2))
        service.submit(5, ("put", "b", 9))
        world.quiesce()
        report = service.convergence()
        assert report.converged
        assert service.replica(0).applied_count == 3
        # Versions reflect the agreed write order.
        assert service.replica(0).machine.version("a") == 2

    def test_append_log_replicas_identical(self):
        world = build_small_world(n=6)
        service = ReplicatedService(world.cluster, AppendLog, journal_commands=True)
        for node, command in [(0, "x"), (2, "y"), (4, "z")]:
            service.submit(node, command)
        world.quiesce()
        journals = {tuple(service.replica(n).journal) for n in world.cluster.alive_ids()}
        assert len(journals) == 1
        assert set(next(iter(journals))) == {"x", "y", "z"}

    def test_convergence_under_loss(self):
        world = build_small_world(n=10, loss_rate=0.1, seed=31)
        service = ReplicatedService(world.cluster, Counter)
        for node in (0, 2, 4, 6):
            service.submit(node, ("add", node + 1))
        world.quiesce()
        assert service.converged()
        assert service.replica(0).machine.value == 1 + 3 + 5 + 7

    def test_churn_joiners_get_replicas(self):
        world = build_small_world(n=10, seed=32)
        service = ReplicatedService(world.cluster, Counter)
        driver = ChurnDriver(world.sim, world.cluster, rate=0.1, stop_after=300)
        service.submit(0, ("add", 1))
        world.quiesce()
        # Nodes added by churn were attached lazily on first delivery.
        new_nodes = [n for n in world.cluster.alive_ids() if n >= 10]
        for node in new_nodes:
            if service.replicas.get(node) is not None:
                assert service.replicas[node].applied_count >= 0

    def test_divergent_nodes_reported(self):
        # Hand-corrupt one replica and verify detection.
        world = build_small_world(n=4)
        service = ReplicatedService(world.cluster, Counter)
        service.submit(0, ("add", 5))
        world.quiesce()
        assert service.converged()
        service.replica(2).machine.value = 999
        report = service.convergence()
        assert not report.converged
        assert report.divergent_nodes() == [2]

    def test_unknown_replica_rejected(self):
        world = build_small_world(n=3)
        service = ReplicatedService(world.cluster, Counter)
        with pytest.raises(MembershipError):
            service.replica(42)


class TestNegativeControl:
    def test_unordered_transport_diverges(self):
        """The same service over first-sight delivery loses convergence
        on contended state — demonstrating that the EpTO layer, not
        luck, is what makes the replicas identical."""
        from repro.core import EpToConfig
        from repro.sim import (
            ClusterConfig,
            PlanetLabLatency,
            SimCluster,
            SimNetwork,
            Simulator,
        )

        sim = Simulator(seed=33)
        network = SimNetwork(sim, latency=PlanetLabLatency())
        config = EpToConfig.for_system_size(10)

        def factory(*, node_id, pss, transport, on_deliver, time_source, rng):
            return BallsBinsProcess(
                node_id=node_id,
                config=config,
                peer_sampler=pss,
                transport=transport,
                on_deliver=on_deliver,
                time_source=time_source,
                rng=rng,
            )

        cluster = SimCluster(
            sim, network, ClusterConfig(epto=config), process_factory=factory
        )
        cluster.add_nodes(10)
        service = ReplicatedService(cluster, AppendLog)
        # Many concurrent contended writes: arrival orders differ.
        for round_idx in range(3):
            for node in list(cluster.alive_ids()):
                service.submit(node, f"w{round_idx}-{node}")
            sim.run_for(config.round_interval)
        sim.run_for((config.ttl + 10) * config.round_interval)
        assert not service.converged()
