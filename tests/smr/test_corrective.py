"""Tests for corrective delivery (repro.smr.corrective, paper §8.3)."""

from __future__ import annotations

import pytest

from repro.core import EpToConfig, EpToProcess
from repro.sim import ClusterConfig, FixedLatency, SimCluster, SimNetwork, Simulator
from repro.smr import AppendLog, CorrectableReplica, Counter

from ..conftest import make_event


class TestCorrectableReplicaUnit:
    def test_fast_path_applies_in_order(self):
        replica = CorrectableReplica(0, AppendLog)
        replica.on_deliver(make_event(src=1, ts=1, payload="a"))
        replica.on_deliver(make_event(src=2, ts=2, payload="b"))
        assert replica.machine.snapshot() == ("a", "b")
        assert replica.corrections == []

    def test_correction_splices_and_replays(self):
        corrections = []
        replica = CorrectableReplica(0, AppendLog, on_correction=corrections.append)
        replica.on_deliver(make_event(src=1, ts=1, payload="a"))
        replica.on_deliver(make_event(src=3, ts=5, payload="c"))
        # The event that should have been between them arrives late.
        replica.on_out_of_order(make_event(src=2, ts=3, payload="b"))
        assert replica.machine.snapshot() == ("a", "b", "c")
        assert len(corrections) == 1
        assert corrections[0].position == 1
        assert corrections[0].replayed == 2

    def test_correction_at_head(self):
        replica = CorrectableReplica(0, AppendLog)
        replica.on_deliver(make_event(src=2, ts=5, payload="later"))
        replica.on_out_of_order(make_event(src=1, ts=1, payload="first"))
        assert replica.machine.snapshot() == ("first", "later")
        assert replica.corrections[0].position == 0

    def test_duplicate_correction_ignored(self):
        replica = CorrectableReplica(0, AppendLog)
        replica.on_deliver(make_event(src=2, ts=5, payload="x"))
        late = make_event(src=1, ts=1, payload="late")
        replica.on_out_of_order(late)
        replica.on_out_of_order(late)
        assert len(replica.corrections) == 1
        assert replica.machine.snapshot() == ("late", "x")

    def test_multiple_corrections_keep_total_order(self):
        replica = CorrectableReplica(0, AppendLog)
        replica.on_deliver(make_event(src=5, ts=10, payload="j"))
        replica.on_out_of_order(make_event(src=3, ts=6, payload="g"))
        replica.on_out_of_order(make_event(src=1, ts=2, payload="e"))
        replica.on_out_of_order(make_event(src=2, ts=4, payload="f"))
        assert replica.machine.snapshot() == ("e", "f", "g", "j")
        keys = [event.order_key for event in replica.log]
        assert keys == sorted(keys)

    def test_applied_count_tracks_log(self):
        replica = CorrectableReplica(0, Counter)
        replica.on_deliver(make_event(src=1, ts=1, payload=("add", 1)))
        replica.on_out_of_order(make_event(src=0, ts=0, payload=("add", 10)))
        assert replica.applied_count == 2
        assert replica.machine.value == 11


class TestPerturbedReplicaConvergence:
    def test_perturbed_replica_converges_via_corrections(self):
        """The §8.3 scenario end-to-end: a process that suffered a
        logical-clock concurrency hole still reaches the healthy
        replicas' exact state through corrective deliveries."""
        sim = Simulator(seed=73)
        network = SimNetwork(sim, latency=FixedLatency(20))
        config = EpToConfig.for_system_size(8, clock="logical").with_overrides(
            tagged_delivery=True
        )
        delta = config.round_interval

        replicas: dict[int, CorrectableReplica] = {}

        def factory(*, node_id, pss, transport, on_deliver, time_source, rng):
            replica = CorrectableReplica(node_id, AppendLog)
            replicas[node_id] = replica

            def deliver(event):
                on_deliver(event)  # keep cluster metrics accurate
                replica.on_deliver(event)

            return EpToProcess(
                node_id=node_id,
                config=config,
                peer_sampler=pss,
                transport=transport,
                on_deliver=deliver,
                on_out_of_order=replica.on_out_of_order,
                time_source=time_source,
                rng=rng,
            )

        cluster = SimCluster(
            sim, network, ClusterConfig(epto=config), process_factory=factory
        )
        cluster.add_nodes(8)

        # Isolate node 0 so its Lamport clock goes stale while the rest
        # broadcast and deliver (the Figure 4 mechanism).
        network.set_partition({0: "alone", **{n: "main" for n in range(1, 8)}})
        for i in range(4):
            cluster.broadcast_from(1 + i, f"main-{i}")
            sim.run_for(delta)
        sim.run_for((config.ttl + 4) * delta)

        # Node 0 broadcasts with a stale timestamp; partition heals.
        cluster.broadcast_from(0, "stale")
        network.heal_partition()
        sim.run_for((config.ttl + 8) * delta)

        # All healthy replicas converge to the same state *including*
        # the stale event, which reached them only through corrections
        # (base EpTO would have dropped it everywhere).
        digests = {replicas[n].digest() for n in range(1, 8)}
        assert len(digests) == 1, "healthy replicas diverged?!"
        assert any(replicas[n].corrections for n in range(1, 8))
        for n in range(1, 8):
            assert "stale" in [e.payload for e in replicas[n].log]
            assert len(replicas[n].log) == 5

        # The perturbed node cannot recover the events whose relay
        # lifetime expired during its isolation — corrections repair
        # ordering, not never-received holes (§8.3: "the location of
        # potential holes is unknown"); recovering those needs state
        # transfer. But from here on it rejoins the well-behaving part:
        cluster.broadcast_from(3, "post-heal")
        sim.run_for((config.ttl + 8) * delta)
        for n in range(8):
            assert replicas[n].log[-1].payload == "post-heal"
