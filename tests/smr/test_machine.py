"""Unit tests for the deterministic state machines (repro.smr.machine)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.smr.machine import AppendLog, Counter, KeyValueStore


class TestKeyValueStore:
    def test_put_and_get(self):
        store = KeyValueStore()
        store.apply(("put", "a", 1))
        assert store.get("a") == 1
        assert store.get("missing", "default") == "default"

    def test_versions_increment_per_key(self):
        store = KeyValueStore()
        assert store.apply(("put", "a", 1)) == 1
        assert store.apply(("put", "a", 2)) == 2
        assert store.apply(("put", "b", 9)) == 1
        assert store.version("a") == 2
        assert store.version("nope") == 0

    def test_delete(self):
        store = KeyValueStore()
        store.apply(("put", "a", 1))
        assert store.apply(("del", "a")) == (1, 1)
        assert store.get("a") is None
        assert store.apply(("del", "ghost")) is None

    def test_unknown_command_rejected(self):
        with pytest.raises(ValueError):
            KeyValueStore().apply(("increment", "a"))

    def test_digest_tracks_state(self):
        a, b = KeyValueStore(), KeyValueStore()
        assert a.digest() == b.digest()
        a.apply(("put", "k", 1))
        assert a.digest() != b.digest()
        b.apply(("put", "k", 1))
        assert a.digest() == b.digest()

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["x", "y", "z"]),
                st.integers(min_value=0, max_value=9),
            ),
            max_size=30,
        )
    )
    def test_determinism_property(self, writes):
        """Two stores fed identical command sequences agree exactly."""
        a, b = KeyValueStore(), KeyValueStore()
        for key, value in writes:
            a.apply(("put", key, value))
            b.apply(("put", key, value))
        assert a.snapshot() == b.snapshot()
        assert a.digest() == b.digest()


class TestCounter:
    def test_add_and_reset(self):
        counter = Counter()
        assert counter.apply(("add", 5)) == 5
        assert counter.apply(("add", -2)) == 3
        assert counter.apply(("reset",)) == 0

    def test_unknown_command_rejected(self):
        with pytest.raises(ValueError):
            Counter().apply(("mul", 2))

    def test_snapshot_and_digest(self):
        counter = Counter()
        counter.apply(("add", 7))
        assert counter.snapshot() == 7
        other = Counter()
        other.apply(("add", 7))
        assert counter.digest() == other.digest()


class TestAppendLog:
    def test_appends_in_order(self):
        log = AppendLog()
        assert log.apply("a") == 1
        assert log.apply("b") == 2
        assert log.snapshot() == ("a", "b")

    def test_digest_order_sensitive(self):
        ab, ba = AppendLog(), AppendLog()
        ab.apply("a"); ab.apply("b")
        ba.apply("b"); ba.apply("a")
        assert ab.digest() != ba.digest()
