"""Micro-benchmarks of the hot paths (simulator-independent).

Unlike the figure benchmarks these use pytest-benchmark's statistical
machinery (many rounds) because each operation is microseconds-scale:

* dissemination: receiving and merging a large ball;
* ordering: one ``orderEvents`` round over a loaded received map;
* engine: schedule + drain throughput;
* Cyclon: one shuffle round-trip.

They exist to catch performance regressions in the code every
simulation second is made of.
"""

from __future__ import annotations

import random

from repro.core import EpToConfig
from repro.core.dissemination import DisseminationComponent
from repro.core.event import BallEntry, Event, make_ball
from repro.core.ordering import OrderingComponent
from repro.pss.cyclon import CyclonPss, CyclonRequest, CyclonResponse
from repro.sim.engine import Simulator

BALL_SIZE = 200


class ManualOracle:
    """Minimal oracle: deliverable strictly above a fixed TTL."""

    def __init__(self, ttl):
        self.ttl = ttl

    def is_deliverable(self, record):
        return record.ttl > self.ttl

    def get_clock(self):
        return 0

    def update_clock(self, ts):
        pass


class RecordingTransport:
    def __init__(self):
        self.sent = []

    def send(self, src, dst, ball):
        self.sent.append((src, dst, ball))

    def clear(self):
        self.sent.clear()


class StaticPeerSampler:
    def __init__(self, peers):
        self.peers = list(peers)

    def sample(self, k):
        return self.peers[:k]


def make_big_ball(ttl: int = 1, ts_base: int = 0):
    return make_ball(
        BallEntry(Event(id=(i, 0), ts=ts_base + i, source_id=i), ttl=ttl)
        for i in range(BALL_SIZE)
    )


def test_dissemination_receive_ball(benchmark):
    config = EpToConfig(fanout=16, ttl=20, clock="logical")
    component = DisseminationComponent(
        node_id=10**6,
        config=config,
        oracle=ManualOracle(ttl=20),
        peer_sampler=StaticPeerSampler(list(range(16))),
        transport=RecordingTransport(),
        order_events=lambda ball: None,
        rng=random.Random(0),
    )
    ball = make_big_ball()

    def receive():
        component.receive_ball(ball)

    benchmark(receive)
    assert component.next_ball_size == BALL_SIZE


def test_dissemination_round_tick(benchmark):
    config = EpToConfig(fanout=16, ttl=20, clock="logical")
    transport = RecordingTransport()
    component = DisseminationComponent(
        node_id=10**6,
        config=config,
        oracle=ManualOracle(ttl=20),
        peer_sampler=StaticPeerSampler(list(range(16))),
        transport=transport,
        order_events=lambda ball: None,
        rng=random.Random(0),
    )
    ball = make_big_ball()

    def round_trip():
        component.receive_ball(ball)
        component.round_tick()
        transport.clear()

    benchmark(round_trip)


def test_ordering_round(benchmark):
    oracle = ManualOracle(ttl=10**9)  # nothing ever delivers: pure aging
    component = OrderingComponent(oracle, deliver=lambda e: None)
    component.order_events(make_big_ball())

    empty = ()

    def one_round():
        component.order_events(empty)

    benchmark(one_round)
    assert component.received_count == BALL_SIZE


def test_ordering_delivery_burst(benchmark):
    def deliver_burst():
        component = OrderingComponent(ManualOracle(ttl=1), deliver=lambda e: None)
        component.order_events(make_big_ball(ttl=5))
        return component

    component = benchmark(deliver_burst)
    assert component.stats.delivered == BALL_SIZE


def test_engine_schedule_drain(benchmark):
    def schedule_and_drain():
        sim = Simulator()
        noop = lambda: None
        for i in range(1000):
            sim.schedule(i % 97, noop)
        sim.run()
        return sim

    sim = benchmark(schedule_and_drain)
    assert sim.executed == 1000


def test_cyclon_shuffle_roundtrip(benchmark):
    outbox = []
    a = CyclonPss(0, view_size=16, shuffle_size=8,
                  send=lambda dst, msg: outbox.append((dst, msg)),
                  rng=random.Random(1))
    b = CyclonPss(1, view_size=16, shuffle_size=8,
                  send=lambda dst, msg: outbox.append((dst, msg)),
                  rng=random.Random(2))
    a.bootstrap(range(1, 17))
    b.bootstrap([0] + list(range(2, 17)))

    def roundtrip():
        # Two-node universe: b answers every request a emits (whatever
        # view entry a picked), so the full request/response/merge path
        # runs every iteration and a's view never drains.
        outbox.clear()
        a.shuffle()
        target = next(iter(a._pending), 1)
        for _dst, msg in list(outbox):
            if isinstance(msg, CyclonRequest):
                b.handle_request(0, msg)
        for dst, msg in list(outbox):
            if isinstance(msg, CyclonResponse) and dst == 0:
                a.handle_response(target, msg)

    benchmark(roundtrip)
    assert a.view_fill > 0
