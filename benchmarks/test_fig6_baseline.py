"""Figure 6 benchmark: ordering cost over reliable (unordered) delivery.

Regenerates the four delivery-delay CDFs (baseline, EpTO global clock
at the theoretical TTL, EpTO logical clock, EpTO at the reduced TTL=5)
and checks the paper's headline shapes:

* total order at the theoretical TTL costs ~3-5x reliable delivery;
* TTL=5 still delivers everything, in order, with zero holes —
  "the theoretical analysis is conservative";
* the logical clock costs about twice the global clock (doubled TTL).
"""

from __future__ import annotations

from repro.experiments.fig6_baseline import run_fig6

from conftest import emit


def test_fig6_ordering_cost(run_once, scale):
    result = run_once(lambda: run_fig6(scale))
    emit(
        f"Figure 6: delivery delay, baseline vs EpTO "
        f"(n={scale.fig6_n}, 5% broadcast)",
        result.render(),
    )

    baseline = result.results["baseline (no order)"]
    global_clock = result.results["global clock"]
    logical_clock = result.results["logical clock"]
    reduced = result.results["global clock TTL=5"]

    # Paper: ordering costs ~3-5x reliable delivery (allow 2-8x slack
    # across scales and seeds).
    factor = result.ordering_cost_factor()
    assert 2.0 < factor < 8.0, f"ordering cost factor {factor}"

    # Paper: TTL=5 is a substantial improvement yet still safe.
    assert reduced.summary.p50 < 0.6 * global_clock.summary.p50
    assert reduced.report.safety_ok
    assert reduced.holes == 0

    # Logical clock ~2x global clock (Lemma 4 doubling).
    ratio = logical_clock.summary.p50 / global_clock.summary.p50
    assert 1.4 < ratio < 2.6, f"logical/global ratio {ratio}"

    # Every EpTO configuration: deterministic safety, zero holes.
    for label in ("global clock", "logical clock", "global clock TTL=5"):
        res = result.results[label]
        assert res.report.safety_ok, label
        assert res.holes == 0, label

    # The baseline delivered everything too (reliability), just unordered.
    assert baseline.deliveries == baseline.events_broadcast * scale.fig6_n
