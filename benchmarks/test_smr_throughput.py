"""Throughput benchmark: state-machine replication over EpTO.

Measures end-to-end command throughput of the full stack — workload →
EpTO dissemination + ordering → replicated state machine — on the
discrete-event simulator, and reports commands applied per wall-clock
second along with the convergence verdict. A capacity regression in
any layer (engine, network, dissemination merge, ordering, SMR apply)
shows up here.
"""

from __future__ import annotations

import time

from repro.core import EpToConfig
from repro.metrics.report import format_table
from repro.sim import ClusterConfig, FixedLatency, SimCluster, SimNetwork, Simulator
from repro.smr import KeyValueStore, ReplicatedService
from repro.workloads import ProbabilisticWorkload

from conftest import emit

N = 32
ROUNDS = 6


def run_replicated_workload():
    sim = Simulator(seed=90)
    network = SimNetwork(sim, latency=FixedLatency(20))
    config = EpToConfig.for_system_size(N)
    cluster = SimCluster(sim, network, ClusterConfig(epto=config))
    cluster.add_nodes(N)
    service = ReplicatedService(cluster, KeyValueStore)

    keys = ("a", "b", "c", "d")
    counter = {"i": 0}

    def payload(index: int):
        counter["i"] += 1
        return ("put", keys[index % len(keys)], index)

    ProbabilisticWorkload(
        sim, cluster, rate=0.5, rounds=ROUNDS, payload_factory=payload
    )
    sim.run(until=(ROUNDS + config.ttl + 12) * config.round_interval)
    return sim, cluster, service


def test_smr_throughput(run_once):
    started = time.perf_counter()
    sim, cluster, service = run_once(run_replicated_workload)
    elapsed = time.perf_counter() - started

    commands = cluster.collector.broadcast_count
    applications = sum(r.applied_count for r in service.replicas.values())
    report = service.convergence()

    emit(
        f"SMR throughput over EpTO (n={N}, {ROUNDS} workload rounds)",
        format_table(
            ["metric", "value"],
            [
                ("commands submitted", commands),
                ("replica applications", applications),
                ("applications/sec (wall)", f"{applications / elapsed:,.0f}"),
                ("sim events executed", sim.executed),
                ("converged", report.converged),
            ],
        ),
    )

    assert commands > 0
    assert applications == commands * N  # every replica applied everything
    assert report.converged
    assert service.replica(0).machine.version("a") > 0
