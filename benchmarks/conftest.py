"""Shared benchmark infrastructure.

Every figure benchmark:

* runs the corresponding :mod:`repro.experiments` driver once (wrapped
  in ``benchmark.pedantic`` so pytest-benchmark reports the wall time
  without re-running a multi-second simulation dozens of times);
* prints the same rows/series the paper plots (visible with ``-s`` or
  in the captured section of the report);
* asserts the paper's qualitative *shape* — who wins, by roughly what
  factor — not absolute tick values.

Scale: benchmarks default to the CI-friendly ``small`` preset; set
``REPRO_SCALE=paper`` for the paper's full sizes (minutes to hours).
"""

from __future__ import annotations

import pytest

from repro.experiments.scale import get_scale


@pytest.fixture(scope="session")
def scale():
    """The active scale preset (REPRO_SCALE env var, default small)."""
    return get_scale()


@pytest.fixture
def run_once(benchmark):
    """Run a zero-argument callable exactly once under the benchmark.

    Simulation experiments are seconds-long and deterministic; there is
    no point re-running them for statistical confidence, so a single
    timed round is used.
    """

    def runner(fn):
        return benchmark.pedantic(fn, rounds=1, iterations=1)

    return runner


def emit(title: str, body: str) -> None:
    """Print a figure reproduction block (shown with pytest -s)."""
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}\n{body}")
