"""Figure 9 benchmark: churn with Cyclon as the peer sampling service.

Same sweep as Figure 8, but views are maintained by a real Cyclon
overlay running over the same (lossy to churned-out nodes) network.
Paper shape: "there is a performance degradation due to the above
factors" — stale view entries mean lost balls and joiners take time to
become visible — yet deliveries still complete, in total order.
"""

from __future__ import annotations

from repro.experiments.fig8_churn import run_fig8
from repro.experiments.fig9_cyclon import run_fig9

from conftest import emit


def test_fig9_cyclon_churn_sweep(run_once, scale):
    result = run_once(lambda: run_fig9(scale))
    emit(
        f"Figure 9: delivery delay under churn with Cyclon PSS "
        f"(n={scale.sweep_n}, global clock, 5% broadcast)",
        result.render(),
    )

    assert result.pss == "cyclon"
    for rate, res in sorted(result.results.items()):
        assert res.report.safety_ok, rate
        assert res.holes == 0, rate
        # Everyone stable still delivered everything.
        assert res.deliveries > 0

    # Degradation vs the idealized PSS at the highest churn level:
    # stale Cyclon views lose balls to departed nodes, which the
    # idealized view never does.
    uniform = run_fig8(scale)
    high = max(scale.sweep_rates)
    cyclon_dead = result.results[high].messages_dropped
    uniform_dead = uniform.results[high].messages_dropped
    assert cyclon_dead > uniform_dead, (
        f"expected more drops via stale views: cyclon={cyclon_dead} "
        f"uniform={uniform_dead}"
    )
