"""Ablation A4: EpTO's ordering guards vs stability-only delivery.

The paper's §7 argues that prior probabilistic total order (Pbcast
[16]) requires "a static and fully synchronous network". This ablation
makes that concrete: under identical adversarial conditions
(heavy-tailed PlanetLab latency far exceeding the round duration, 1%
drift, a deliberately tight stability delay), it compares full EpTO
against the stability-only delivery rule (every stable event delivered
in timestamp order, no late-discard or min-queued guard).

Expected shape: EpTO sustains zero order violations (its safety is
deterministic, independent of timing); the guard-less rule racks up
violations as late events stabilize after later-ordered ones were
delivered. Delay is similar — the guards cost essentially nothing.
"""

from __future__ import annotations

from repro.experiments.ablations import run_ablation_guards

from conftest import emit


def test_ablation_ordering_guards(run_once, scale):
    result = run_once(lambda: run_ablation_guards(scale))
    emit("Ablation A4: ordering guards", result.render())

    # EpTO: deterministic total order regardless of timing.
    assert result.violations("epto") == 0
    # Stability-only: order breaks under the asynchrony EpTO targets.
    assert result.violations("pbcast") > 0
