"""Figure 7a benchmark: scalability in the number of concurrent events.

Sweeps the per-process broadcast probability (1% -> 10%) for both clock
types and checks the paper's observation: "the broadcast rate has
little impact on delivery delay when using either global or logical
clocks".
"""

from __future__ import annotations

from repro.experiments.fig7_scalability import run_fig7a

from conftest import emit


def test_fig7a_broadcast_rate_sweep(run_once, scale):
    result = run_once(lambda: run_fig7a(scale))
    emit(
        f"Figure 7a: delivery delay vs broadcast rate (n={scale.fig7a_n})",
        result.render(),
    )

    for clock in ("global", "logical"):
        medians = [
            res.summary.p50
            for (rate, c), res in sorted(result.results.items())
            if c == clock and res.summary is not None
        ]
        assert medians, clock
        # Little impact: a 10x rate increase moves the median < 40%.
        assert max(medians) < 1.4 * min(medians), (clock, medians)

    # Logical clock curves sit above global clock curves (doubled TTL).
    for rate in scale.fig7a_rates:
        g = result.results[(rate, "global")]
        l = result.results[(rate, "logical")]
        if g.summary and l.summary:
            assert l.summary.p50 > g.summary.p50

    # Paper: zero holes in every run.
    for key, res in result.results.items():
        assert res.report.safety_ok, key
        assert res.holes == 0, key
