"""Ablation A2: fanout below and at the Theorem 2 bound.

Theorem 2 sizes the fanout so that, within the TTL's relay rounds, the
epidemic saturates the whole system. This ablation fixes a *starved*
TTL (4 rounds — far below the bound) and sweeps the fanout, showing
the trade Lemma 7 exploits: a larger K compensates for fewer rounds
(and vice versa). With K = 1 and 4 rounds at most ~2^4 processes can
be reached, so agreement visibly fails; at the theoretical K the same
4 rounds already reach everyone.

Deterministic safety (order, integrity) must hold at every fanout.
"""

from __future__ import annotations

from repro.experiments.ablations import run_ablation_fanout

from conftest import emit


def test_ablation_fanout_sweep(run_once, scale):
    result = run_once(lambda: run_ablation_fanout(scale))
    emit("Ablation A2: fanout sweep at starved TTL", result.render())

    # Deterministic safety at EVERY fanout.
    for k, res in result.results.items():
        assert not res.report.order_violations, k
        assert not res.report.integrity_violations, k

    # K=1 cannot saturate n processes in 4 rounds: agreement fails.
    assert result.coverage(1) < 0.5
    # The theoretical K saturates even with the starved TTL.
    assert result.coverage(result.theory_fanout) > 0.99
    # Coverage grows monotonically with K.
    ordered = [result.coverage(k) for k in sorted(result.results)]
    assert all(a <= b + 0.02 for a, b in zip(ordered, ordered[1:]))
