"""Ablation A1: TTL sensitivity (paper §6's TTL=15 vs TTL=5 observation).

The paper notes the theoretical TTL is conservative: at n = 100 the
analysis requires TTL = 15, yet TTL = 5 still delivered every event in
total order, substantially reducing the delay. This ablation sweeps the
TTL from starved to theoretical and reports, per value: median delay,
holes, undelivered (event, process) pairs, and the order verdict.

Expected shapes: delay grows linearly with the TTL (delivery happens
after ~TTL+1 rounds); order violations never occur at any TTL
(deterministic safety); holes only appear — if at all — at severely
starved TTLs where the epidemic cannot complete.
"""

from __future__ import annotations

from repro.experiments.ablations import run_ablation_ttl

from conftest import emit


def test_ablation_ttl_sweep(run_once, scale):
    result = run_once(lambda: run_ablation_ttl(scale))
    emit("Ablation A1: TTL sweep", result.render())

    # Deterministic safety at EVERY TTL, however starved.
    for ttl, res in result.results.items():
        assert not res.report.order_violations, ttl
        assert not res.report.integrity_violations, ttl

    # Delay grows with TTL (roughly linearly).
    medians = [
        res.summary.p50 for _, res in sorted(result.results.items()) if res.summary
    ]
    assert medians == sorted(medians)
    assert medians[-1] > 2.0 * medians[0]

    # The paper's observation: TTL=5 already hole-free at this scale.
    assert result.results[5].holes == 0
    assert result.results[result.theory_ttl].holes == 0
