"""§8.4 benchmark: the latency-vs-ordering-probability tradeoff curve.

Regenerates, for the paper's headline size (n = 100, theoretical K and
TTL), the operating curve an application would choose from when using
the §8.4 extension: per relay round, the estimated probability that an
event is stable and the expected coverage — i.e. how much of the
deterministic TTL wait can be traded against how much confidence.
"""

from __future__ import annotations

from repro.analysis.tradeoffs import (
    latency_saving,
    rounds_for_coverage,
    rounds_for_stability,
    tradeoff_curve,
)
from repro.core.params import min_fanout, min_ttl
from repro.metrics.report import format_table

from conftest import emit

N = 100


def test_tradeoff_curve(run_once):
    fanout = min_fanout(N)
    ttl = min_ttl(N)

    def measure():
        curve = tradeoff_curve(N, fanout)
        return {
            "curve": curve,
            "majority": rounds_for_coverage(N, fanout, 0.5),
            "p99": rounds_for_stability(N, fanout, 0.99),
            "p999": rounds_for_stability(N, fanout, 0.999),
            "saving": latency_saving(N, fanout, ttl, 0.999),
        }

    data = run_once(measure)
    curve = data["curve"]

    rows = [
        (
            point.rounds,
            f"{point.expected_coverage:.1%}",
            f"{point.probability_stable:.4f}",
        )
        for point in curve[: ttl + 1]
    ]
    emit(
        f"§8.4: latency/confidence tradeoff (n={N}, K={fanout}, TTL={ttl})\n"
        f"majority coverage after {data['majority']} rounds; "
        f"P[stable]>=99% after {data['p99']} rounds; "
        f">=99.9% after {data['p999']} rounds; "
        f"latency saving at 99.9%: {data['saving']:.0%}",
        format_table(["rounds", "expected coverage", "P[stable]"], rows),
    )

    # Majority is reached within a handful of rounds (K ~ 17).
    assert data["majority"] <= 3
    # High confidence arrives well before the deterministic TTL.
    assert data["p999"] < ttl
    assert data["saving"] > 0.3
    # The curve is monotone and saturates.
    probs = [p.probability_stable for p in curve]
    assert probs == sorted(probs)
    assert probs[-1] > 0.9999
