"""Ablation A3: synchronized vs staggered round phases.

The paper's simulator starts every process's round timer together
(``now() + delta ± Delta``), so an event's TTL ages about once per
round interval and the delivery delay is ~``(TTL+1) * delta``. EpTO
itself never requires phase alignment, and this reproduction also
supports deliberately *staggered* phases (each node starts at a random
offset). Staggering lets relay chains hop between phase-offset nodes
within one interval whenever the network latency is below the phase
spread, aging TTLs faster than once per ``delta`` — same relay
generations, earlier stability detection, lower delay. Safety is
unaffected either way; this ablation quantifies the difference.
"""

from __future__ import annotations

from repro.experiments.ablations import run_ablation_phase

from conftest import emit


def test_ablation_round_phase(run_once, scale):
    result = run_once(lambda: run_ablation_phase(scale))
    emit("Ablation A3: round phase (fixed 5-tick latency)", result.render())

    # Both are safe and hole-free — phase alignment is not a
    # correctness requirement (paper: "does not require ...
    # synchronized processes").
    for res in result.results.values():
        assert res.report.safety_ok
        assert res.holes == 0

    # Staggered phases deliver strictly faster under low latency.
    assert result.speedup() < 0.8
