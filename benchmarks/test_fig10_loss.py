"""Figure 10 benchmark: delivery delay under message loss.

Drops every message independently with probability 0 -> 10% and
regenerates the per-loss-level delay CDFs. Paper shape: "the impact on
the delivery delay is limited even at a high loss rate of 10%", with
zero holes — EpTO's fanout redundancy absorbs the loss without any
acknowledgment or retransmission machinery.
"""

from __future__ import annotations

from repro.experiments.fig10_loss import run_fig10

from conftest import emit


def test_fig10_message_loss_sweep(run_once, scale):
    result = run_once(lambda: run_fig10(scale))
    emit(
        f"Figure 10: delivery delay under message loss "
        f"(n={scale.sweep_n}, global clock, 5% broadcast)",
        result.render(),
    )

    baseline = result.results[0.0]
    assert baseline.messages_dropped == 0

    for rate, res in sorted(result.results.items()):
        assert res.report.safety_ok, rate
        assert res.holes == 0, rate
        if rate > 0 and res.summary and baseline.summary:
            # Limited impact: median within 25% of the lossless run.
            assert res.summary.p50 < 1.25 * baseline.summary.p50, rate
            # Loss is actually being injected.
            expected = rate * res.messages_sent
            assert 0.7 * expected < res.messages_dropped < 1.3 * expected

    # Everyone delivered everything in every run.
    for rate, res in result.results.items():
        assert res.deliveries == res.events_broadcast * res.stable_nodes, rate
