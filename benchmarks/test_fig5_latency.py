"""Figure 5 benchmark: the PlanetLab latency distribution.

Regenerates the latency CDF from the synthetic model fitted to the
paper's published trace statistics and checks every quoted number.
"""

from __future__ import annotations

from repro.experiments.fig5_latency import (
    PAPER_MEAN,
    PAPER_P5,
    PAPER_P50,
    PAPER_P95,
    PAPER_STD,
    run_fig5,
)
from repro.metrics.report import format_cdf_series

from conftest import emit


def test_fig5_latency_distribution(benchmark):
    result = benchmark.pedantic(run_fig5, rounds=1, iterations=1)
    emit(
        "Figure 5: end-to-end latency distribution (synthetic PlanetLab)",
        result.table()
        + "\n\n"
        + format_cdf_series({"latency": result.cdf}, percentiles=(5, 25, 50, 75, 95)),
    )

    summary = result.summary
    assert summary.mean == PAPER_MEAN * 1.0 or abs(summary.mean - PAPER_MEAN) < 0.12 * PAPER_MEAN
    assert abs(summary.std - PAPER_STD) < 0.15 * PAPER_STD
    assert abs(summary.p50 - PAPER_P50) < 0.10 * PAPER_P50
    assert abs(summary.p95 - PAPER_P95) < 0.10 * PAPER_P95
    assert PAPER_P5 * 0.5 < summary.p5 < PAPER_P5 * 2.0

    # Shape: heavy tail up to several times the round duration of 125.
    assert summary.maximum > 600
