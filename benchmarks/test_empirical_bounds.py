"""Ablation A5 (§8.1): how loose are the Theorem 2 bounds in practice?

The paper's future-work §8.1 notes its Figure 3 bounds are "very
loose", leaving "way too many balls in the system", and §6 observes the
TTL can be relaxed from 15 to 5 at n = 100 with no holes. This
benchmark quantifies the slack empirically: Monte-Carlo the gossip
protocol across a TTL sweep at the theoretical fanout and report the
measured miss rate (with a Wilson upper confidence limit) next to the
analytic bound, plus the smallest TTL with zero observed misses.
"""

from __future__ import annotations

from repro.experiments.ablations import run_empirical_bounds

from conftest import emit


def test_empirical_ttl_slack(run_once):
    result = run_once(lambda: run_empirical_bounds(n=100, trials=300))
    emit("Ablation A5 (§8.1): empirical miss probability vs TTL", result.render())

    by_ttl = {e.rounds: e for e in result.sweep}
    # Paper: TTL=5 already delivered everything at n=100.
    assert by_ttl[5].misses == 0
    assert by_ttl[result.theory_ttl].misses == 0
    # The slack is at least a factor ~3 (15 -> 5 in the paper).
    assert result.smallest_reliable <= result.theory_ttl // 2
    # Misses genuinely appear once the TTL is starved enough.
    assert by_ttl[2].miss_rate > 0.0
    # Monotone improvement with more rounds.
    rates = [e.miss_rate for e in result.sweep]
    assert all(a >= b for a, b in zip(rates, rates[1:]))
