"""Figure 3 benchmark: probabilistic agreement upper bounds.

Regenerates both panels — P[fixed process misses an event] (3a) and
P[any process misses an event] (3b) for c in {2, 3, 4} and n up to
1000 — and checks the curves sit at the figure's magnitudes.
"""

from __future__ import annotations

from repro.experiments.fig3_bounds import run_fig3

from conftest import emit


def test_fig3_bounds(benchmark):
    result = benchmark(run_fig3)
    emit("Figure 3: hole probability upper bounds (log10 P)", result.table())

    fixed = {c: dict(points) for c, points in result.fixed_process.items()}
    any_ = {c: dict(points) for c, points in result.any_process.items()}

    # Shape: magnitudes at n = 1000 match the figure's y axis.
    assert -9.5 < fixed[2.0][1000] < -8.0  # ~1e-9
    assert -14.0 < fixed[3.0][1000] < -12.0  # ~1e-13
    assert -18.5 < fixed[4.0][1000] < -16.0  # ~1e-17/1e-18

    # Shape: panel (b) is the union bound over n processes.
    for c in (2.0, 3.0, 4.0):
        for n in (100, 500, 1000):
            assert any_[c][n] >= fixed[c][n]

    # Shape: larger c -> uniformly smaller probability.
    for n in (100, 500, 1000):
        assert fixed[4.0][n] < fixed[3.0][n] < fixed[2.0][n]

    # Shape: curves decrease with n (more balls per event).
    for c in (2.0, 3.0, 4.0):
        assert fixed[c][1000] < fixed[c][100] < fixed[c][10]
