#!/usr/bin/env python
"""Gate on the committed benchmark results: every recorded ``speedup``
in ``BENCH_core.json`` must be at least the floor (default 1.0).

The perf harness records machine-dependent timings, so CI never asserts
wall-clock numbers from a shared runner. What it CAN assert is the
committed record: each optimization documented in ``BENCH_core.json``
claims a ``speedup`` over an in-harness baseline (encode-once fan-out,
flat engine vs object engine, batched vs unbatched wire path,
multiplexed vs separate service clusters). A committed value below 1.0
means a regeneration recorded
an optimization that no longer optimizes — fail loudly and make the
regression a review conversation, not a silent drift.

Usage::

    python benchmarks/perf/check_regression.py              # BENCH_core.json
    python benchmarks/perf/check_regression.py BENCH_x.json --min 1.0
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Iterator, Tuple

REPO_ROOT = Path(__file__).resolve().parents[2]


def find_speedups(node, path: str = "") -> Iterator[Tuple[str, float]]:
    """Yield ``(json.path, value)`` for every key named ``speedup``."""
    if isinstance(node, dict):
        for key, value in node.items():
            here = f"{path}.{key}" if path else key
            if key == "speedup" and isinstance(value, (int, float)):
                yield here, float(value)
            else:
                yield from find_speedups(value, here)
    elif isinstance(node, list):
        for index, value in enumerate(node):
            yield from find_speedups(value, f"{path}[{index}]")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "path",
        nargs="?",
        default=str(REPO_ROOT / "BENCH_core.json"),
        help="benchmark results JSON (default: committed BENCH_core.json)",
    )
    parser.add_argument(
        "--min",
        type=float,
        default=1.0,
        help="minimum acceptable speedup (default: 1.0)",
    )
    parser.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="PREFIX",
        help=(
            "fail unless at least one speedup entry lives under this "
            "JSON path prefix (repeatable; e.g. scenarios.service_bench)"
        ),
    )
    args = parser.parse_args(argv)

    path = Path(args.path)
    if not path.exists():
        print(f"check_regression: {path} not found", file=sys.stderr)
        return 2
    data = json.loads(path.read_text())
    speedups = sorted(find_speedups(data))
    if not speedups:
        print(
            f"check_regression: no speedup entries in {path} — "
            "wrong file or schema drift",
            file=sys.stderr,
        )
        return 2

    missing = [
        prefix
        for prefix in args.require
        if not any(where.startswith(prefix) for where, _ in speedups)
    ]
    if missing:
        print(
            f"check_regression: no speedup entries under required "
            f"prefix(es) {missing} in {path.name} — scenario dropped "
            "from the committed benchmark?",
            file=sys.stderr,
        )
        return 2

    failures = []
    for where, value in speedups:
        verdict = "ok" if value >= args.min else "REGRESSED"
        print(f"  {value:6.2f}x  {verdict:9s}  {where}")
        if value < args.min:
            failures.append((where, value))
    if failures:
        print(
            f"check_regression: {len(failures)}/{len(speedups)} recorded "
            f"speedups below {args.min:.2f}x in {path.name}",
            file=sys.stderr,
        )
        return 1
    print(
        f"check_regression: {len(speedups)} recorded speedups >= "
        f"{args.min:.2f}x in {path.name}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
