"""Deterministic workloads for the ordering-hot-path perf harness.

Everything here is seeded: the same ``(n, seed)`` pair always produces
the same schedule of balls, so timing runs are comparable across
machines and the metrics embedded in ``BENCH_core.json`` are
bit-reproducible (asserted by the determinism test in
``tests/sim/test_bench_determinism.py``).

The ordering workload models what a process actually sees at steady
state: every round a ball arrives carrying mostly-fresh events from
many sources, a few duplicates of recently seen events (relayed copies
with further-aged TTLs, exercising the merge path), and the occasional
stale event whose delivery window has passed (exercising the late
path). Arrivals are spread over ``n / BALL_SIZE`` rounds so the
``received`` map stays populated with O(BALL_SIZE * TTL) events — the
regime where the seed implementation's per-round full scans hurt and
the frontier/heap structures in :mod:`repro.core.ordering` win.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.core.clock import GlobalClockOracle
from repro.core.event import Ball, BallEntry, Event, make_ball
from repro.core.ordering import OrderingComponent

#: Stability threshold used by every ordering workload.
TTL = 30
#: Fresh events per round; arrivals span ``n / BALL_SIZE`` rounds.
BALL_SIZE = 16
#: Distinct broadcasting sources (tie-breaker diversity).
SOURCES = 32
#: Safety cap on drain rounds after arrivals stop.
DRAIN_CAP = 3 * TTL + 10


def build_ordering_schedule(n: int, seed: int) -> List[Ball]:
    """Build the per-round ball schedule carrying *n* fresh events."""
    rng = random.Random(f"perf-ordering:{n}:{seed}")
    seqs = [0] * SOURCES
    rounds = max(1, n // BALL_SIZE)
    recent: List[Event] = []
    schedule: List[Ball] = []
    made = 0
    for r in range(rounds):
        entries: List[BallEntry] = []
        while made < n and len(entries) < BALL_SIZE:
            src = rng.randrange(SOURCES)
            seq = seqs[src]
            seqs[src] += 1
            if rng.random() < 0.02:
                # Stale timestamp: by the time this arrives the order
                # mark has advanced past it (late-discard path).
                ts = max(0, 2 * (r - TTL - 5))
            else:
                ts = 2 * r + rng.randrange(3)
            event = Event(id=(src, seq), ts=ts, source_id=src, payload=None)
            entries.append(BallEntry(event, ttl=rng.randrange(3)))
            recent.append(event)
            made += 1
        # Relayed copies of recent events, aged further elsewhere.
        for _ in range(2):
            if recent and rng.random() < 0.5:
                back = rng.randrange(1, min(len(recent), 5 * BALL_SIZE) + 1)
                dup = recent[-back]
                entries.append(BallEntry(dup, ttl=rng.randrange(TTL // 2)))
        schedule.append(make_ball(entries))
    return schedule


def new_ordering() -> Tuple[OrderingComponent, List[Event]]:
    """A fresh live ordering component plus its delivery sink."""
    delivered: List[Event] = []
    oracle = GlobalClockOracle(ttl=TTL, time_source=lambda: 0)
    component = OrderingComponent(oracle, delivered.append)
    return component, delivered


def run_round_loop(component, schedule: List[Ball]) -> None:
    """Drive *component* through *schedule*, then drain to empty.

    The drain phase feeds empty balls — the quiet-round case the lazy
    structures optimize — until everything pending has been delivered
    (bounded by :data:`DRAIN_CAP` as a safety net).
    """
    order_events = component.order_events
    for ball in schedule:
        order_events(ball)
    empty: Ball = ()
    for _ in range(DRAIN_CAP):
        if not component.received_count:
            break
        order_events(empty)


def ordering_metrics(component, delivered: List[Event]) -> dict:
    """Deterministic counters describing one round-loop run."""
    stats = component.stats
    return {
        "delivered": len(delivered),
        "discarded_duplicates": stats.discarded_duplicates,
        "discarded_late": stats.discarded_late,
        "rounds": stats.rounds,
    }


def build_codec_ball(entries: int, seed: int) -> Ball:
    """A ball of *entries* events with small JSON payloads."""
    rng = random.Random(f"perf-codec:{entries}:{seed}")
    ball = []
    for i in range(entries):
        src = rng.randrange(SOURCES)
        event = Event(
            id=(src, i),
            ts=i,
            source_id=src,
            payload={"k": i, "v": rng.randrange(1_000_000)},
        )
        ball.append(BallEntry(event, ttl=rng.randrange(TTL)))
    return make_ball(ball)
