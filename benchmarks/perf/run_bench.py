#!/usr/bin/env python
"""Perf-regression harness for the ordering/dissemination hot path.

Times three scenarios and writes the results to ``BENCH_core.json`` at
the repository root:

* ``ordering_round_loop`` — drives the live
  :class:`repro.core.ordering.OrderingComponent` through a
  deterministic schedule at n ∈ {256, 1024, 4096} events and records
  absolute round-loop throughput plus the seeded delivery metrics.
  (The seed implementation this path was originally benchmarked
  against has been retired; its semantics live on as Hypothesis
  properties in ``tests/core/test_ordering_properties.py``.)
* ``encode_fanout`` — micro-benchmark of the encode-once ball fan-out:
  serializing one ball per round versus once per peer at fanout K,
  plus the pooled-buffer variant (``codec.encode_into`` into a shared
  ``bytearray``, the allocation-free path ``UdpNetwork`` ships on)
  versus a fresh ``bytes`` per round.
* ``sim_macro`` — an end-to-end seeded :class:`repro.sim.cluster.SimCluster`
  run; its counters double as the determinism fixture (same seed ⇒
  identical metrics, asserted by ``tests/sim/test_bench_determinism.py``).
* ``sim_journaled`` — the same macro run with a durable
  :mod:`repro.storage` journal under every node, asserted bit-identical
  in round-loop metrics to the journal-free run (journaling must never
  perturb the protocol), with the journal overhead timed alongside.
* ``auth`` — HMAC sign/verify per event (:mod:`repro.auth`,
  docs/SECURITY.md) and the wire cost of authentication: the same ball
  encoded/decoded plain (codec kind 1) versus signed (kind 7).
* ``udp_e2e`` — the real loopback wire path
  (:mod:`repro.experiments.net_bench`): paired batched-vs-unbatched
  fan-out blast, full EpTO clusters clean and under
  ``scenarios/standard_drill.json`` with delivery-delay CDFs, plus a
  tracemalloc allocation audit of the batched round loop.
* ``service_bench`` — the multi-topic broadcast service
  (:mod:`repro.experiments.service_bench`): T topics multiplexed over
  one socket/timer per host vs T independent single-topic clusters at
  equal payload volume; the ``speedup`` is datagrams saved by
  cross-topic envelope batching.
* ``lazy_bench`` — eager vs lazy-push dissemination
  (:mod:`repro.experiments.lazy_bench`): the identical seeded workload
  with full-payload balls versus id-only balls plus on-demand payload
  pull; the ``speedup`` is payload bytes-on-wire saved, gated with the
  delivery/agreement checks on both sides.

Usage::

    PYTHONPATH=src python benchmarks/perf/run_bench.py              # full run
    PYTHONPATH=src python benchmarks/perf/run_bench.py --check --sizes 256

``--check`` is the CI smoke mode: one small size, one repeat, exit
non-zero only on crash or a metrics mismatch — never on timing, so a
slow shared runner cannot flake the build. Timing numbers in the JSON
are machine-dependent; the ``metrics`` blocks are not.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.analysis.profiling import Timing, speedup, time_callable  # noqa: E402
from workloads import (  # noqa: E402
    BALL_SIZE,
    TTL,
    build_codec_ball,
    build_ordering_schedule,
    new_ordering,
    ordering_metrics,
    run_round_loop,
)

DEFAULT_SIZES = (256, 1024, 4096)
FANOUT = 16
CODEC_ENTRIES = 120

# -- sim_flat scenario (paper-scale flat engine) -----------------------
FLAT_SIZES = (1024, 4096, 16384, 65536)
FLAT_CHECK_SIZES = (256,)
FLAT_EVENTS = 8
FLAT_ROUNDS = 30
FLAT_FANOUT = 8
FLAT_TTL = 12
FLAT_INTERVAL = 20
#: Largest n where the object engine is also run for the speedup and
#: sequence-equality cross-check (beyond this it is simply too slow).
FLAT_OBJECT_COMPARE_MAX = 4096
#: From this n upward the flat run records stats (delays/counts/hashes)
#: instead of full sequences — the configuration paper-scale runs use.
FLAT_STATS_THRESHOLD = 16384


def bench_ordering(n: int, seed: int, repeats: int) -> dict:
    """Round-loop timing of the live ordering component at *n* events.

    The retired seed implementation recorded 3-4x slowdowns over this
    path (see git history / docs/PERFORMANCE.md); with the baseline
    gone, the scenario tracks absolute throughput plus the seeded
    delivery ``metrics`` block that the determinism test pins.
    """
    schedule = build_ordering_schedule(n, seed)

    def run():
        component, delivered = new_ordering()
        run_round_loop(component, schedule)
        return ordering_metrics(component, delivered)

    timing = time_callable(run, label=f"ordering n={n}", repeats=repeats)
    metrics = timing.result
    if metrics["delivered"] <= 0:
        raise AssertionError(f"ordering delivered nothing at n={n}")
    return {
        "optimized": timing.as_dict(),
        "events_per_s": round(n / timing.best) if timing.best else None,
        "metrics": metrics,
    }


def bench_encode_fanout(seed: int, repeats: int) -> dict:
    """Serializing a ball once per round vs once per peer."""
    from repro.runtime import codec

    ball = build_codec_ball(CODEC_ENTRIES, seed)

    def per_peer():
        for _ in range(FANOUT):
            datagram = codec.encode(7, ball)
        return len(datagram)

    def encode_once():
        datagram = codec.encode(7, ball)
        for _ in range(FANOUT):
            pass  # same bytes handed to every peer
        return len(datagram)

    pool = bytearray()

    def encode_pooled():
        view = codec.encode_into(7, ball, pool)
        for _ in range(FANOUT):
            pass  # same pooled view handed to every peer
        return len(view)

    per_peer_t = time_callable(per_peer, label="encode per peer", repeats=repeats)
    once_t = time_callable(encode_once, label="encode once", repeats=repeats)
    pooled_t = time_callable(encode_pooled, label="encode pooled", repeats=repeats)
    if pooled_t.result != once_t.result:
        raise AssertionError(
            f"pooled encode produced {pooled_t.result} bytes, "
            f"fresh encode {once_t.result}"
        )
    return {
        "per_peer": per_peer_t.as_dict(),
        "encode_once": once_t.as_dict(),
        "encode_pooled": pooled_t.as_dict(),
        "speedup": round(speedup(per_peer_t, once_t), 2),
        "pooled_speedup": round(speedup(once_t, pooled_t), 2),
        "metrics": {
            "fanout": FANOUT,
            "entries": CODEC_ENTRIES,
            "datagram_bytes": once_t.result,
        },
    }


def _sim_macro_run(seed: int, storage_dir=None, storage_fsync: str = "never"):
    """One seeded macro cluster run; journaled when *storage_dir* is set."""
    from repro.core.config import EpToConfig
    from repro.sim.cluster import ClusterConfig, SimCluster
    from repro.sim.engine import Simulator
    from repro.sim.network import SimNetwork

    nodes, broadcasts = 24, 40
    sim = Simulator(seed=seed)
    network = SimNetwork(sim)
    config = ClusterConfig(
        epto=EpToConfig(fanout=4, ttl=12, round_interval=10),
        expected_size=nodes,
    )
    cluster = SimCluster(
        sim,
        network,
        config,
        storage_dir=storage_dir,
        storage_fsync=storage_fsync,
    )
    cluster.add_nodes(nodes)
    rng = sim.fork_rng("bench.broadcast")
    for i in range(broadcasts):
        sim.schedule_at(
            5 + i * 7,
            lambda: cluster.broadcast_from(cluster.random_alive(rng)),
        )
    sim.run(until=5 + broadcasts * 7 + 4 * 12 * 10)
    journal_records = sum(
        journal.stats.recorded + journal.stats.markers
        for journal in cluster.journals.values()
    )
    for journal in cluster.journals.values():
        journal.close()
    return {
        "broadcasts": cluster.collector.broadcast_count,
        "deliveries": cluster.collector.delivery_count,
        "messages_sent": network.stats.sent,
        "messages_delivered": network.stats.delivered,
    }, journal_records


def bench_sim_macro(seed: int, repeats: int) -> dict:
    """End-to-end simulated cluster run (seeded, fully deterministic)."""

    def run():
        metrics, _ = _sim_macro_run(seed)
        return metrics

    timing = time_callable(run, label="sim_macro", repeats=repeats)
    return {"timing": timing.as_dict(), "metrics": timing.result}


def bench_sim_journaled(seed: int, repeats: int, plain_metrics: dict) -> dict:
    """The macro run with a :mod:`repro.storage` journal under each node.

    Asserts the journaled run's protocol metrics are bit-identical to
    *plain_metrics* (the journal-free run): durable logging must
    observe the run, never steer it. The timing delta against
    ``sim_macro`` is the measured journal overhead.
    """
    import shutil
    import tempfile

    def run():
        root = tempfile.mkdtemp(prefix="epto-bench-journal-")
        try:
            return _sim_macro_run(seed, storage_dir=root)
        finally:
            shutil.rmtree(root, ignore_errors=True)

    timing = time_callable(run, label="sim_journaled", repeats=repeats)
    metrics, journal_records = timing.result
    if metrics != plain_metrics:
        raise AssertionError(
            f"journaling perturbed the run: journaled={metrics} "
            f"plain={plain_metrics}"
        )
    return {
        "timing": timing.as_dict(),
        "metrics": dict(metrics, journal_records=journal_records),
    }


def bench_auth(seed: int, repeats: int) -> dict:
    """Event authentication cost: sign/verify plus the signed-ball codec.

    Times HMAC signing and verification per event
    (:class:`repro.auth.authenticator.HmacAuthenticator` over the
    canonical event bytes), then the wire cost of authentication:
    encode/decode of the same :data:`CODEC_ENTRIES`-entry ball plain
    (codec kind 1) versus signed (kind 7, one 16-byte MAC per entry).
    The verify pass must accept every genuine signature and the signed
    round-trip must preserve ball and signatures bit-exactly — the
    harness aborts otherwise. ``overhead_factor`` entries are the
    slowdowns of the signed path over the plain one; ``metrics`` has
    the datagram growth.
    """
    from repro.auth import BallGuard, HmacAuthenticator, KeyRing, SignedBall
    from repro.runtime import codec

    authenticator = HmacAuthenticator(KeyRing(f"bench:{seed}"))
    ball = build_codec_ball(CODEC_ENTRIES, seed)
    signatures = [authenticator.sign(entry.event) for entry in ball]

    def sign_all():
        verdicts = 0
        for entry in ball:
            authenticator.sign(entry.event)
            verdicts += 1
        return verdicts

    def verify_all():
        accepted = 0
        for entry, signature in zip(ball, signatures):
            if authenticator.verify(entry.event, signature) == "ok":
                accepted += 1
        return accepted

    sign_t = time_callable(sign_all, label="auth sign", repeats=repeats)
    verify_t = time_callable(verify_all, label="auth verify", repeats=repeats)
    if verify_t.result != CODEC_ENTRIES:
        raise AssertionError(
            f"verify rejected genuine signatures: accepted "
            f"{verify_t.result}/{CODEC_ENTRIES}"
        )

    guard = BallGuard(authenticator)
    for entry in ball:
        guard.seal(entry.event.source_id, (entry,))
    signed = guard.attach(ball)
    if any(signature is None for signature in signed.signatures):
        raise AssertionError("guard failed to sign every bench entry")

    def encode_plain():
        return len(codec.encode(7, ball))

    def encode_signed():
        return len(codec.encode(7, signed))

    plain_wire = codec.encode(7, ball)
    signed_wire = codec.encode(7, signed)

    def decode_plain():
        _, message = codec.decode(plain_wire)
        return len(message)

    def decode_signed():
        _, message = codec.decode(signed_wire)
        return len(message.entries)

    _, round_trip = codec.decode(signed_wire)
    if not isinstance(round_trip, SignedBall) or round_trip != signed:
        raise AssertionError("signed ball did not round-trip bit-exactly")

    encode_plain_t = time_callable(
        encode_plain, label="encode plain ball", repeats=repeats
    )
    encode_signed_t = time_callable(
        encode_signed, label="encode signed ball", repeats=repeats
    )
    decode_plain_t = time_callable(
        decode_plain, label="decode plain ball", repeats=repeats
    )
    decode_signed_t = time_callable(
        decode_signed, label="decode signed ball", repeats=repeats
    )
    return {
        "sign": sign_t.as_dict(),
        "verify": verify_t.as_dict(),
        "encode_plain": encode_plain_t.as_dict(),
        "encode_signed": encode_signed_t.as_dict(),
        "decode_plain": decode_plain_t.as_dict(),
        "decode_signed": decode_signed_t.as_dict(),
        "overhead_factor": {
            "encode": round(speedup(encode_signed_t, encode_plain_t), 2),
            "decode": round(speedup(decode_signed_t, decode_plain_t), 2),
        },
        "metrics": {
            "entries": CODEC_ENTRIES,
            "plain_bytes": len(plain_wire),
            "signed_bytes": len(signed_wire),
            "bytes_per_entry_overhead": round(
                (len(signed_wire) - len(plain_wire)) / CODEC_ENTRIES, 2
            ),
        },
    }


def _flat_cluster_config():
    from repro.core.config import EpToConfig
    from repro.sim import ClusterConfig, NoDrift

    return ClusterConfig(
        epto=EpToConfig(
            fanout=FLAT_FANOUT, ttl=FLAT_TTL, round_interval=FLAT_INTERVAL
        ),
        drift=NoDrift(),
    )


def _flat_schedule_broadcasts(sim, cluster, n: int) -> None:
    """The fixed sim_flat workload: FLAT_EVENTS broadcasts, rounds 1-4."""
    for i in range(FLAT_EVENTS):
        sim.schedule_at(
            (1 + i % 4) * FLAT_INTERVAL,
            lambda nd=(i * 37) % n: cluster.broadcast_from(nd),
        )


def _run_flat_once(n: int, seed: int, record: str):
    """One flat-engine run; returns (elapsed_s, metrics, sequences|None)."""
    import time as _time

    from repro.sim import FixedLatency
    from repro.sim.flat import FlatCluster, FlatEngine, FlatNetwork

    sim = FlatEngine(seed=seed)
    network = FlatNetwork(sim, latency=FixedLatency(1))
    cluster = FlatCluster(sim, network, _flat_cluster_config(), record=record)
    _flat_schedule_broadcasts(sim, cluster, n)
    cluster.add_nodes(n)
    start = _time.perf_counter()
    sim.run(until=FLAT_ROUNDS * FLAT_INTERVAL)
    elapsed = _time.perf_counter() - start
    expected = FLAT_EVENTS * n
    if cluster.delivered_total != expected:
        raise AssertionError(
            f"sim_flat n={n}: delivered {cluster.delivered_total}, "
            f"expected {expected} (every node must deliver every event)"
        )
    hashes = cluster.sequence_hashes()
    counts = cluster.delivery_counts()
    if len(set(hashes.values())) != 1 or len(set(counts.values())) != 1:
        raise AssertionError(
            f"sim_flat n={n}: nodes disagree on the delivered sequence"
        )
    metrics = {
        "delivered": cluster.delivered_total,
        "broadcasts": cluster.broadcast_count(),
        "messages_sent": network.stats.sent,
        "messages_delivered": network.stats.delivered,
        "record": record,
    }
    sequences = cluster.sequences() if record == "sequences" else None
    return elapsed, metrics, sequences


def _flat_child(conn, n: int, seed: int, record: str, send_sequences: bool):
    """Subprocess entry: isolated run so ru_maxrss is per-size, not
    the parent's accumulated high-water mark."""
    import resource
    import sys as _sys

    try:
        elapsed, metrics, sequences = _run_flat_once(n, seed, record)
        rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        if _sys.platform == "darwin":  # bytes there, KiB on Linux
            rss //= 1024
        metrics["peak_rss_kb"] = rss
        conn.send(("ok", elapsed, metrics, sequences if send_sequences else None))
    except Exception as exc:  # pragma: no cover - crash reporting path
        conn.send(("err", f"{type(exc).__name__}: {exc}"))
    finally:
        conn.close()


def _run_flat_isolated(n: int, seed: int, record: str, send_sequences: bool):
    """Run one flat size in a child process; returns (elapsed, metrics,
    sequences)."""
    import multiprocessing

    parent, child = multiprocessing.Pipe()
    process = multiprocessing.Process(
        target=_flat_child, args=(child, n, seed, record, send_sequences)
    )
    process.start()
    child.close()
    try:
        reply = parent.recv()
    finally:
        process.join()
        parent.close()
    if reply[0] != "ok":
        raise AssertionError(f"sim_flat child n={n} failed: {reply[1]}")
    return reply[1], reply[2], reply[3]


def _run_object_once(n: int, seed: int):
    """The identical workload on the object engine, for the cross-check."""
    import time as _time

    from repro.sim import FixedLatency, SimCluster, SimNetwork, Simulator

    sim = Simulator(seed=seed)
    network = SimNetwork(sim, latency=FixedLatency(1))
    cluster = SimCluster(sim, network, _flat_cluster_config())
    _flat_schedule_broadcasts(sim, cluster, n)
    cluster.add_nodes(n)
    start = _time.perf_counter()
    sim.run(until=FLAT_ROUNDS * FLAT_INTERVAL)
    elapsed = _time.perf_counter() - start
    return elapsed, cluster.collector.sequences()


def bench_sim_flat(flat_sizes, seed: int, repeats: int) -> dict:
    """Paper-scale flat engine: rounds/sec + peak RSS per size, plus an
    object-engine cross-check (bit-identical sequences, speedup) at the
    sizes where the object engine is still tractable.

    Timing note: rounds/sec counts whole-cluster rounds, so it shrinks
    with n by design — compare per-size entries across commits, not
    across sizes. ``peak_rss_kb`` is the child process high-water mark
    (ru_maxrss), measured in an isolated subprocess per size.
    """
    sizes_out = {}
    comparison = {}
    for n in flat_sizes:
        record = "stats" if n >= FLAT_STATS_THRESHOLD else "sequences"
        compare = n <= FLAT_OBJECT_COMPARE_MAX
        runs = 1 if n >= FLAT_STATS_THRESHOLD else min(repeats, 2)
        best = None
        for _ in range(runs):
            elapsed, metrics, sequences = _run_flat_isolated(
                n, seed, record, send_sequences=compare
            )
            if best is None or elapsed < best[0]:
                best = (elapsed, metrics, sequences)
        elapsed, metrics, flat_sequences = best
        rss = metrics.pop("peak_rss_kb")
        sizes_out[f"n{n}"] = {
            "elapsed_s": round(elapsed, 4),
            "rounds_per_sec": round(FLAT_ROUNDS / elapsed, 3),
            "node_rounds_per_sec": round(FLAT_ROUNDS * n / elapsed, 1),
            "peak_rss_kb": rss,
            "metrics": metrics,
        }
        print(
            f"  n={n}: {elapsed:7.2f}s  "
            f"{FLAT_ROUNDS / elapsed:8.2f} rounds/s  rss {rss // 1024} MB",
            flush=True,
        )
        if compare:
            object_best = None
            object_sequences = None
            for _ in range(min(repeats, 2)):
                object_elapsed, object_sequences = _run_object_once(n, seed)
                if object_best is None or object_elapsed < object_best:
                    object_best = object_elapsed
            if object_sequences != flat_sequences:
                raise AssertionError(
                    f"sim_flat n={n}: flat and object engines diverged "
                    "(differential harness invariant broken)"
                )
            comparison[f"n{n}"] = {
                "object_s": round(object_best, 4),
                "flat_s": round(elapsed, 4),
                "speedup": round(object_best / elapsed, 2),
                "sequences_match": True,
            }
            print(
                f"         object {object_best:7.2f}s  "
                f"speedup {object_best / elapsed:.2f}x  sequences match",
                flush=True,
            )
    return {
        "config": {
            "fanout": FLAT_FANOUT,
            "ttl": FLAT_TTL,
            "round_interval": FLAT_INTERVAL,
            "events": FLAT_EVENTS,
            "rounds": FLAT_ROUNDS,
            "latency_ticks": 1,
            "stats_record_from_n": FLAT_STATS_THRESHOLD,
        },
        "sizes": sizes_out,
        "object_comparison": comparison,
        "rss_note": (
            "ru_maxrss of an isolated child process per size "
            "(KiB; process high-water mark)"
        ),
    }


# -- udp_e2e scenario (real loopback wire path) ------------------------
NET_SIZES = (8, 16)
NET_CHECK_SIZES = (6,)
NET_EVENTS = 6
NET_CHECK_EVENTS = 4
NET_BLAST_ROUNDS = 400
NET_CHECK_BLAST_ROUNDS = 100
#: Fan-out rounds driven under tracemalloc for the allocation audit.
ALLOC_AUDIT_ROUNDS = 300


def _alloc_audit(seed: int, rounds: int) -> dict:
    """tracemalloc audit of the batched fan-out round loop.

    Drives *rounds* encode-once ``send_many`` fan-outs on a batched
    :class:`~repro.runtime.udp.UdpNetwork` with tracemalloc on and
    reports Python-heap churn per round plus the top allocation sites.
    The wire path is engineered to allocate almost nothing at steady
    state (pooled encode buffer, pinned iovec/mmsghdr arrays, pooled
    deferred-send buffers, zero-copy receive views); this audit is the
    regression instrument for that property.
    """
    import asyncio
    import tracemalloc

    from repro.core.event import BallEntry, Event, make_ball
    from repro.runtime.udp import UdpNetwork

    async def audit() -> dict:
        network = UdpNetwork(seed=seed, batch="auto")
        peers = list(range(1, 17))
        for nid in [0] + peers:
            network.register(nid, lambda src, msg: None)
        await network.open_all()
        ball = make_ball(
            [BallEntry(Event(id=(0, 0), ts=1, source_id=0, payload="audit"), 4)]
        )
        for _ in range(10):  # steady state before measuring
            network.send_many(0, peers, ball)
        tracemalloc.start(5)
        before = tracemalloc.take_snapshot()
        for _ in range(rounds):
            network.send_many(0, peers, ball)
        after = tracemalloc.take_snapshot()
        tracemalloc.stop()
        await network.close()

        diffs = after.compare_to(before, "lineno")
        grown = [
            d
            for d in diffs
            if d.size_diff > 0
            # The tracer's own bookkeeping is not wire-path churn.
            and not d.traceback[0].filename.endswith("tracemalloc.py")
        ]
        grown.sort(key=lambda d: d.size_diff, reverse=True)
        top = []
        for diff in grown[:8]:
            frame = diff.traceback[0]
            filename = frame.filename
            marker = f"{Path('src') / 'repro'}"
            if marker in filename:
                filename = "src/repro" + filename.split(marker, 1)[1]
            top.append(
                {
                    "site": f"{filename}:{frame.lineno}",
                    "kb": round(diff.size_diff / 1024, 2),
                    "blocks": diff.count_diff,
                }
            )
        total = sum(d.size_diff for d in grown)
        return {
            "rounds": rounds,
            "fanout": len(peers),
            "heap_growth_bytes": total,
            "bytes_per_round": round(total / rounds, 2),
            "top_sites": top,
        }

    return asyncio.run(audit())


def bench_udp_e2e(seed: int, check: bool) -> dict:
    """udp_e2e — the real loopback wire path, end to end.

    Wraps :func:`repro.experiments.net_bench.run_net_bench`: the paired
    batched-vs-unbatched fan-out blast, full EpTO clusters clean and
    under ``scenarios/standard_drill.json``, and the tracemalloc
    allocation audit of the batched round loop. Aborts if any cluster
    run misses delivery or total order — those are correctness gates;
    timing numbers are recorded, never asserted here (the committed
    ``speedup`` value is what ``check_regression.py`` pins).
    """
    from repro.experiments.net_bench import run_net_bench
    from repro.faults.schedule import FaultSchedule

    drill = FaultSchedule.from_json(
        (REPO_ROOT / "scenarios" / "standard_drill.json").read_text()
    )
    result = run_net_bench(
        seed=seed,
        schedule=drill,
        sizes=NET_CHECK_SIZES if check else NET_SIZES,
        events=NET_CHECK_EVENTS if check else NET_EVENTS,
        blast_rounds=NET_CHECK_BLAST_ROUNDS if check else NET_BLAST_ROUNDS,
    )
    if not result.exit_ok:
        failed = [
            f"n={run.n}[{run.scenario}]"
            for run in result.runs
            if not (run.delivered and run.ordered)
        ]
        raise AssertionError(f"udp_e2e delivery/order failed: {failed}")

    fanout = result.fanout
    runs_out = {}
    for run in result.runs:
        summary = run.delay_summary
        entry = {
            "events": run.events,
            "delivered": run.delivered,
            "ordered": run.ordered,
            "elapsed_s": round(run.seconds, 4),
            "events_per_sec": round(run.events_per_second, 2),
            "datagrams_sent": run.datagrams_sent,
            "syscalls_send": run.syscalls_send,
            "syscalls_recv": run.syscalls_recv,
            "send_syscalls_per_node_round": round(run.syscalls_per_round, 3),
            "bytes_sent": run.bytes_sent,
            "bytes_received": run.bytes_received,
        }
        if summary is not None:
            entry["delay_ms"] = {
                "p50": round(summary.p50, 2),
                "p95": round(summary.p95, 2),
                "p99": round(summary.p99, 2),
                "max": round(summary.maximum, 2),
                "samples": summary.count,
            }
            entry["delay_cdf"] = [
                [round(ms, 2), round(pct, 2)] for ms, pct in run.delay_cdf()
            ]
        runs_out[f"n{run.n}_{run.scenario}"] = entry

    return {
        "fanout_blast": {
            "datagrams": fanout.datagrams,
            "bytes_per_datagram": fanout.bytes_per_datagram,
            "batched_tier": fanout.batched_tier,
            "batched_rate_dgram_s": round(fanout.batched_rate),
            "batched_syscalls": fanout.batched_syscalls,
            "unbatched_rate_dgram_s": round(fanout.unbatched_rate),
            "unbatched_syscalls": fanout.unbatched_syscalls,
            "speedup": round(fanout.speedup, 2),
        },
        "runs": runs_out,
        "allocation": _alloc_audit(
            seed, rounds=100 if check else ALLOC_AUDIT_ROUNDS
        ),
        "uvloop": result.uvloop_active,
        "fault_scenario": "scenarios/standard_drill.json",
    }


def bench_service(seed: int, check: bool) -> dict:
    """service_bench — cross-topic batching on the real wire.

    Wraps :func:`repro.experiments.service_bench.run_service_bench`:
    T topics multiplexed over one socket and one round timer per host
    versus T independent single-topic clusters at equal payload volume.
    Aborts if either side misses delivery or per-topic total order; the
    committed ``speedup`` (datagrams separate / multiplexed) is what
    ``check_regression.py --require scenarios.service_bench`` pins.
    """
    from repro.experiments.service_bench import run_service_bench

    if check:
        result = run_service_bench(seed=seed, n=4, topics=2, events=3)
    else:
        result = run_service_bench(seed=seed)
    if not result.exit_ok:
        raise AssertionError(
            "service_bench delivery/order failed: "
            f"multiplexed={result.multiplexed.delivered}/"
            f"{result.multiplexed.ordered} "
            f"separate={result.separate.delivered}/{result.separate.ordered}"
        )
    return result.as_dict()


def bench_lazy(seed: int, check: bool) -> dict:
    """lazy_bench — eager vs lazy-push dissemination, identical workload.

    Wraps :func:`repro.experiments.lazy_bench.run_lazy_bench`: the same
    seeded broadcast workload once with full-payload balls and once
    with id-only balls plus on-demand payload pull (docs/OVERLAY.md).
    Aborts if either side misses delivery or total-order agreement; the
    committed ``speedup`` (payload bytes-on-wire, eager / lazy) is what
    ``check_regression.py --require scenarios.lazy_bench`` pins.
    """
    from repro.experiments.lazy_bench import run_lazy_bench

    if check:
        result = run_lazy_bench(
            seed=seed, n=16, fanout=4, rounds=3, payload_size=128
        )
    else:
        result = run_lazy_bench(seed=seed)
    if not result.exit_ok:
        raise AssertionError(
            "lazy_bench delivery/agreement/speedup failed: "
            f"eager delivered={result.eager.delivered} "
            f"holes={result.eager.holes} "
            f"lazy delivered={result.lazy.delivered} "
            f"holes={result.lazy.holes} "
            f"speedup={result.speedup:.2f}"
        )
    return result.as_dict()


FSYNC_EVENTS = 400
FSYNC_SEGMENT_BYTES = 16_384


def bench_fsync_policies(seed: int, repeats: int) -> dict:
    """Durability cost curve: journal appends under each fsync policy.

    Appends the same :data:`FSYNC_EVENTS` delivery records through a
    :class:`repro.storage.journal.DeliveryJournal` once per policy in
    :data:`repro.storage.log.FSYNC_POLICIES` — ``never`` (leave it to
    the OS), ``rotate`` (fsync at segment rotation; the small
    :data:`FSYNC_SEGMENT_BYTES` threshold makes rotation actually
    happen), ``always`` (fsync every append). Every policy must land
    the identical record count; only the timings differ. The spread is
    the price of the crash-recovery guarantees docs/STORAGE.md
    tabulates (and what anti-entropy sync reads back, docs/SYNC.md).
    """
    import shutil
    import tempfile

    from repro.core.event import Event
    from repro.storage.journal import DeliveryJournal
    from repro.storage.log import FSYNC_POLICIES

    def run(policy: str):
        root = tempfile.mkdtemp(prefix=f"epto-bench-fsync-{policy}-")
        try:
            journal = DeliveryJournal(
                root, fsync=policy, segment_max_bytes=FSYNC_SEGMENT_BYTES
            )
            recorded = 0
            for i in range(FSYNC_EVENTS):
                event = Event(
                    id=(i % 8, i // 8),
                    ts=seed + i,
                    source_id=i % 8,
                    payload={"n": i},
                )
                if journal.record_delivery(event):
                    recorded += 1
            segments = journal.log.stats.segments_created
            journal.close()
            return {"recorded": recorded, "segments": segments}
        finally:
            shutil.rmtree(root, ignore_errors=True)

    timings = {}
    metrics = None
    for policy in FSYNC_POLICIES:
        timing = time_callable(
            lambda policy=policy: run(policy),
            label=f"fsync[{policy}]",
            repeats=repeats,
        )
        timings[policy] = timing
        if metrics is None:
            metrics = timing.result
        elif timing.result != metrics:
            raise AssertionError(
                f"fsync policy {policy!r} changed the journal contents: "
                f"{timing.result} != {metrics}"
            )
    baseline = timings["never"]
    return {
        **{policy: timing.as_dict() for policy, timing in timings.items()},
        "cost_vs_never": {
            policy: round(speedup(timings[policy], baseline), 2)
            for policy in FSYNC_POLICIES
            if policy != "never"
        },
        "metrics": dict(metrics, events=FSYNC_EVENTS),
    }


def run_all(sizes, seed: int, repeats: int, flat_sizes, check: bool = False) -> dict:
    results = {
        "schema": 1,
        "seed": seed,
        "repeats": repeats,
        "config": {"ttl": TTL, "ball_size": BALL_SIZE},
        "scenarios": {
            "ordering_round_loop": {},
            "encode_fanout": None,
            "sim_macro": None,
            "sim_journaled": None,
            "sim_flat": None,
            "fsync_policies": None,
            "auth": None,
            "udp_e2e": None,
            "service_bench": None,
            "lazy_bench": None,
        },
    }
    for n in sizes:
        print(f"ordering_round_loop n={n} ...", flush=True)
        entry = bench_ordering(n, seed, repeats)
        results["scenarios"]["ordering_round_loop"][f"n{n}"] = entry
        print(
            f"  round loop {entry['optimized']['best_s'] * 1e3:8.2f} ms   "
            f"{entry['events_per_s']:,} events/s"
        )
    print("encode_fanout ...", flush=True)
    results["scenarios"]["encode_fanout"] = bench_encode_fanout(seed, repeats)
    print(
        f"  speedup {results['scenarios']['encode_fanout']['speedup']:.2f}x   "
        f"pooled {results['scenarios']['encode_fanout']['pooled_speedup']:.2f}x"
    )
    print("sim_macro ...", flush=True)
    results["scenarios"]["sim_macro"] = bench_sim_macro(seed, repeats)
    print(f"  {results['scenarios']['sim_macro']['metrics']}")
    print("sim_journaled ...", flush=True)
    results["scenarios"]["sim_journaled"] = bench_sim_journaled(
        seed, repeats, results["scenarios"]["sim_macro"]["metrics"]
    )
    print(f"  {results['scenarios']['sim_journaled']['metrics']}")
    print("sim_flat ...", flush=True)
    results["scenarios"]["sim_flat"] = bench_sim_flat(flat_sizes, seed, repeats)
    print("fsync_policies ...", flush=True)
    results["scenarios"]["fsync_policies"] = bench_fsync_policies(seed, repeats)
    print(f"  cost_vs_never {results['scenarios']['fsync_policies']['cost_vs_never']}")
    print("auth ...", flush=True)
    results["scenarios"]["auth"] = bench_auth(seed, repeats)
    print(
        f"  overhead {results['scenarios']['auth']['overhead_factor']}   "
        f"{results['scenarios']['auth']['metrics']}"
    )
    print("udp_e2e ...", flush=True)
    udp = bench_udp_e2e(seed, check)
    results["scenarios"]["udp_e2e"] = udp
    blast = udp["fanout_blast"]
    print(
        f"  blast {blast['batched_tier']} "
        f"{blast['batched_rate_dgram_s']:,} dgram/s vs "
        f"{blast['unbatched_rate_dgram_s']:,} unbatched "
        f"(speedup {blast['speedup']:.2f}x)   "
        f"alloc {udp['allocation']['bytes_per_round']} B/round"
    )
    print("service_bench ...", flush=True)
    svc = bench_service(seed, check)
    results["scenarios"]["service_bench"] = svc
    print(
        f"  {svc['topics']} topics x {svc['n']} hosts: "
        f"{svc['multiplexed']['datagrams']} datagrams multiplexed vs "
        f"{svc['separate']['datagrams']} separate "
        f"(speedup {svc['speedup']:.2f}x, "
        f"{svc['multiplexed']['frames_per_datagram']:.2f} frames/dgram)"
    )
    print("lazy_bench ...", flush=True)
    lazy = bench_lazy(seed, check)
    results["scenarios"]["lazy_bench"] = lazy
    print(
        f"  n={lazy['n']} K={lazy['fanout']}: "
        f"{lazy['eager']['payload_bytes']:,} payload B eager vs "
        f"{lazy['lazy']['payload_bytes']:,} lazy "
        f"(speedup {lazy['speedup']:.2f}x, "
        f"p95 delay penalty {lazy['delay_penalty']:.2f}x)"
    )
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sizes",
        default=None,
        help="comma-separated event counts (default: 256,1024,4096; --check: 256)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--repeats", type=int, default=None, help="timing repeats (default 3; --check: 1)"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="CI smoke mode: small, single repeat, fail on crash not timing",
    )
    parser.add_argument(
        "--flat-sizes",
        default=None,
        help=(
            "comma-separated node counts for sim_flat "
            "(default: 1024,4096,16384,65536; --check: 256)"
        ),
    )
    parser.add_argument(
        "--output",
        default=str(REPO_ROOT / "BENCH_core.json"),
        help="where to write the results JSON",
    )
    args = parser.parse_args(argv)

    if args.sizes:
        sizes = tuple(int(s) for s in args.sizes.split(","))
    else:
        sizes = (256,) if args.check else DEFAULT_SIZES
    repeats = args.repeats if args.repeats is not None else (1 if args.check else 3)
    if args.flat_sizes:
        flat_sizes = tuple(int(s) for s in args.flat_sizes.split(","))
    else:
        flat_sizes = FLAT_CHECK_SIZES if args.check else FLAT_SIZES

    results = run_all(sizes, args.seed, repeats, flat_sizes, check=args.check)
    output = Path(args.output)
    output.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
