"""Figure 7b benchmark: scalability in the number of processes.

Sweeps the system size (paper: 100 -> 10,000; small preset: 32 -> 256)
at a 5% broadcast rate and checks the paper's shape: "the delivery
delay increases logarithmically with the number of processes" —
growing the system by two orders of magnitude less than doubles the
delay, because TTL ~ log2 n.
"""

from __future__ import annotations

import math

from repro.experiments.fig7_scalability import run_fig7b

from conftest import emit


def test_fig7b_system_size_sweep(run_once, scale):
    result = run_once(lambda: run_fig7b(scale))
    emit(
        f"Figure 7b: delivery delay vs system size (sizes={list(scale.fig7b_sizes)})",
        result.render(),
    )

    sizes = list(scale.fig7b_sizes)
    size_ratio = sizes[-1] / sizes[0]

    for clock in ("global", "logical"):
        medians = [
            result.results[(n, clock)].summary.p50
            for n in sizes
            if result.results[(n, clock)].summary is not None
        ]
        growth = medians[-1] / medians[0]
        # Logarithmic growth: the delay factor tracks the TTL factor,
        # i.e. ~log(n_max)/log(n_min), far below the size factor.
        ttl_factor = math.log2(sizes[-1]) / math.log2(sizes[0])
        assert growth < min(size_ratio, 2.0 * ttl_factor), (clock, growth)
        # Paper: two orders of magnitude "less than doubles" the delay;
        # at the small preset's 8x sweep the factor is even lower.
        assert growth < 2.0, (clock, growth)

    # Paper: zero holes at every size.
    for key, res in result.results.items():
        assert res.report.safety_ok, key
        assert res.holes == 0, key
