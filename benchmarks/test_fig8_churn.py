"""Figure 8 benchmark: delivery delay under churn (idealized PSS).

Removes and adds churnRate percent of the nodes every round during the
broadcast window and regenerates the per-churn-level delay CDFs.
Paper shapes: churn has a small impact on the delay for most processes
(a modestly heavier tail), and even at churn "significantly larger
than what is observed in real systems" there are no holes among the
processes that stayed.
"""

from __future__ import annotations

from repro.experiments.fig8_churn import run_fig8

from conftest import emit


def test_fig8_churn_sweep(run_once, scale):
    result = run_once(lambda: run_fig8(scale))
    emit(
        f"Figure 8: delivery delay under churn "
        f"(n={scale.sweep_n}, global clock, 5% broadcast, uniform PSS)",
        result.render(),
    )

    baseline = result.results[0.0]
    for rate, res in sorted(result.results.items()):
        # Zero holes and full safety for the stable population.
        assert res.report.safety_ok, rate
        assert res.holes == 0, rate
        if rate > 0:
            # Stable population shrinks with churn.
            assert res.stable_nodes < scale.sweep_n
            # Small impact on the median delay (within 35% of no-churn).
            if res.summary and baseline.summary:
                assert res.summary.p50 < 1.35 * baseline.summary.p50, rate

    # Higher churn removes more nodes from the stable set.
    stables = [res.stable_nodes for rate, res in sorted(result.results.items())]
    assert stables[0] >= stables[-1]
